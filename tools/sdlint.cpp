// sdlint — static contract checker for SDchecker's state machines and
// the emitter/extractor log protocol.  Runs at build/CI time with no
// cluster simulation: everything it needs is the `constexpr` tables the
// simulator and miner already compile against.
//
//   sdlint                run all checks, human diagnostics on stderr
//   sdlint --json         machine-readable report on stdout
//   sdlint --selftest     prove every check fires on the seeded-violation
//                         corpus, then require the real tables to be clean
//   sdlint --metric-table print the generated docs/OBSERVABILITY.md
//                         metric table (paste between the BEGIN/END
//                         markers to fix metrics.* doc findings)
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <string_view>
#include <vector>

#include "obs/metric_catalog.hpp"
#include "sdlint/findings.hpp"
#include "sdlint/fixtures.hpp"
#include "sdlint/runner.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sdlint [--json] [--selftest] [--metric-table]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool selftest = false;
  bool metric_table = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--metric-table") {
      metric_table = true;
    } else {
      return usage();
    }
  }
  if (metric_table) {
    if (json || selftest) return usage();
    std::fputs(sdc::obs::render_metric_table().c_str(), stdout);
    return 0;
  }

  const std::vector<sdc::lint::Finding> findings =
      selftest ? sdc::lint::run_selftest()
               : sdc::lint::run_all_checks().findings;

  if (json) {
    std::fputs(sdc::lint::findings_to_json(findings).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (!findings.empty()) {
    std::fputs(sdc::lint::findings_to_text(findings).c_str(), stderr);
  }
  if (findings.empty()) {
    if (!json) {
      std::fprintf(stderr, "sdlint: %s clean\n",
                   selftest ? "selftest" : "all checks");
    }
    return 0;
  }
  std::fprintf(stderr, "sdlint: %zu finding(s)\n", findings.size());
  return 1;
}
