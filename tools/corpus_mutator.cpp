// corpus_mutator — seeded corpus damage + self-check harness.
//
// Reads a directory of log files, applies each requested mutation class
// (see sdchecker/corpus_mutator.hpp) and runs the analyzer over every
// mutant.  The built-in self-check fails (exit 1) if the analyzer
// crashes on any mutant, if the identity mutation is not event-for-event
// identical to the baseline, or if a destructive class does not surface
// its expected diagnostic kind.  With --out, each mutated corpus is also
// written to <out>/<class-name>/ for replay.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "logging/log_bundle.hpp"
#include "sdchecker/corpus_mutator.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: corpus_mutator <log_dir> (--all-classes | --class NAME)\n"
         "                      [--seed S] [--out DIR]\n"
         "\n"
         "classes:";
  for (const auto cls : sdc::checker::all_mutation_classes()) {
    out << ' ' << sdc::checker::mutation_class_name(cls);
  }
  out << "\n"
         "\n"
         "exit status: 0 all self-checks passed, 1 a mutant crashed the\n"
         "analyzer or missed its expected diagnostic, 2 usage error\n";
  return code;
}

int usage_error(const std::string& what) {
  std::cerr << "corpus_mutator: " << what << "\n\n";
  return usage(std::cerr, 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::optional<std::string> log_dir;
  std::optional<std::string> out_dir;
  std::uint64_t seed = 42;
  std::vector<sdc::checker::MutationClass> classes;
  bool all_classes = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        usage_error(std::string(flag) + " requires a value");
        return std::nullopt;
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--all-classes") {
      all_classes = true;
    } else if (arg == "--class") {
      const auto name = value("--class");
      if (!name) return 2;
      const auto cls = sdc::checker::mutation_class_from_name(*name);
      if (!cls) return usage_error("unknown mutation class '" + *name + "'");
      classes.push_back(*cls);
    } else if (arg == "--seed") {
      const auto text = value("--seed");
      if (!text) return 2;
      try {
        seed = std::stoull(*text);
      } catch (...) {
        return usage_error("--seed wants an integer, got '" + *text + "'");
      }
    } else if (arg == "--out") {
      const auto dir = value("--out");
      if (!dir) return 2;
      out_dir = *dir;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage_error("unknown flag '" + arg + "'");
    } else if (!log_dir) {
      log_dir = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }

  if (!log_dir) return usage_error("missing <log_dir>");
  if (all_classes && !classes.empty()) {
    return usage_error("--all-classes and --class are mutually exclusive");
  }
  if (!all_classes && classes.empty()) {
    return usage_error("pick --all-classes or at least one --class NAME");
  }
  if (all_classes) classes = sdc::checker::all_mutation_classes();

  sdc::logging::LogBundle base;
  std::vector<sdc::logging::Diagnostic> io_diagnostics;
  try {
    base = sdc::logging::LogBundle::read_from_directory(*log_dir,
                                                        &io_diagnostics);
  } catch (const std::exception& e) {
    std::cerr << "corpus_mutator: cannot read '" << *log_dir
              << "': " << e.what() << '\n';
    return 1;
  }
  for (const auto& diagnostic : io_diagnostics) {
    std::cerr << "corpus_mutator: note: "
              << sdc::logging::render_diagnostic(diagnostic) << '\n';
  }

  if (out_dir) {
    try {
      for (const auto cls : classes) {
        const auto mutated = sdc::checker::apply_mutation(base, cls, seed);
        mutated.write_to_directory(
            std::filesystem::path(*out_dir) /
            std::string(sdc::checker::mutation_class_name(cls)));
      }
    } catch (const std::exception& e) {
      std::cerr << "corpus_mutator: cannot write mutants: " << e.what()
                << '\n';
      return 1;
    }
  }

  const auto results = sdc::checker::fuzz_corpus(base, seed, classes);
  std::cout << "seed " << seed << ", " << base.stream_count()
            << " stream(s), " << base.total_lines() << " line(s)\n"
            << sdc::checker::render_fuzz_report(results);
  for (const auto& result : results) {
    if (!result.ok) {
      std::cout << "self-check FAILED\n";
      return 1;
    }
  }
  std::cout << "self-check passed: " << results.size() << " class(es)\n";
  return 0;
}
