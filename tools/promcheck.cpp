// promcheck — validate a Prometheus text-exposition document.
//
//   promcheck [FILE]
//
// Reads FILE (or stdin when no FILE is given), runs the writer-
// independent validator (obs::check_prom_text) over it, and reports:
// format violations (bad names, bad labels, duplicate samples, missing
// TYPE lines, trailing-newline rule) and histogram-contract violations
// (non-cumulative buckets, missing +Inf, _count != +Inf, missing _sum).
//
// CI's serve smoke pipes `curl /metrics` through this so the embedded
// observability server's exposition is gated by the same checker the
// unit tests use.
//
// Exit status: 0 valid, 1 invalid (one finding per line on stderr),
// 2 usage error / unreadable input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/prom_export.hpp"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: promcheck [FILE]\n");
    return 2;
  }
  std::string text;
  if (argc == 2) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "promcheck: cannot read %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  const sdc::obs::PromCheckResult result = sdc::obs::check_prom_text(text);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "promcheck: %s\n", error.c_str());
  }
  std::fprintf(stderr, "promcheck: %zu sample(s), %zu family(ies): %s\n",
               result.samples, result.families,
               result.ok ? "OK" : "INVALID");
  return result.ok ? 0 : 1;
}
