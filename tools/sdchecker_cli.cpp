// sdchecker — command-line front end for the SDchecker library.
//
//   sdchecker analyze <log_dir> [--threads N] [--csv FILE] [--per-app]
//       Mine a directory of YARN/Spark log files and print the
//       scheduling-delay decomposition, aggregate statistics and any
//       anomalies (never-used containers, broken chains, clock skew).
//
//   sdchecker follow <log_dir> [--watch] [--exit-quiescent N]
//       Tail a live log directory: poll for appended bytes, new files
//       and rotation handoffs, analyze continuously with bounded
//       memory, and (--watch) emit ndjson snapshots.  SIGINT drains
//       and prints the final report.
//
//   sdchecker graph <log_dir> <application_id> [--out FILE.dot]
//       Export the Fig.-3-style scheduling graph of one application.
//
//   sdchecker simulate <out_dir> [--jobs N] [--seed S] [--executors E]
//             [--input-mb MB] [--scheduler capacity|opportunistic]
//       Generate a synthetic Spark-on-YARN log corpus (useful for demos
//       and for testing the analyzer without a cluster).
//
//   sdchecker fuzz <log_dir> [--seed S] [--class NAME]
//       Smoke-test the analyzer against seeded corpus damage (see
//       tools/corpus_mutator for the full harness).
//
// Exit status: 0 success on a clean corpus, 1 runtime error, 2 usage
// error, 3 analysis completed but the corpus needed diagnostics
// (garbage, truncation, rotation gaps, clock steps, ...).
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/http_server.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace_check.hpp"
#include "obs/trace_writer.hpp"
#include "obs/tracer.hpp"
#include "sdchecker/trace_export.hpp"
#include "sdchecker/compare.hpp"
#include "sdchecker/corpus_mutator.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/fleet.hpp"
#include "sdchecker/follow.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdchecker/serve.hpp"
#include "sdchecker/timeline.hpp"
#include "trace/submission_trace.hpp"
#include "workloads/tpch.hpp"

namespace {

using namespace sdc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sdchecker analyze <log_dir> [--threads N] "
               "[--analyze-shards N] [--csv FILE] [--per-app] [--progress]\n"
               "            [--delays-csv FILE] [--containers-csv FILE] "
               "[--events-csv FILE] [--json FILE]\n"
               "  sdchecker follow <log_dir> [--watch] [--interval S] "
               "[--poll-ms MS]\n"
               "            [--exit-quiescent N] [--max-polls N] "
               "[--json FILE] [--parked-cap N]\n"
               "            [--retire-quiet N] [--no-retire] "
               "[--analyze-shards N]\n"
               "            [--serve [ADDR:PORT]] [--serve-stall-ms MS] "
               "[--stall-polls-after N]\n"
               "  sdchecker followcheck <watch_ndjson>\n"
               "  sdchecker trace <log_dir> [--out FILE] [--check] "
               "[--threads N] [--analyze-shards N]\n"
               "  sdchecker timeline <log_dir> <application_id>\n"
               "  sdchecker diff <log_dir_a> <log_dir_b> [--threshold PCT]\n"
               "  sdchecker fleet <root_dir> [--threads N] [--shards N] "
               "[--json FILE]\n"
               "            [--out-dir DIR] [--baseline FILE]\n"
               "  sdchecker graph <log_dir> <application_id> [--out FILE]\n"
               "  sdchecker simulate <out_dir> [--jobs N] [--seed S] "
               "[--executors E]\n"
               "            [--input-mb MB] [--scheduler "
               "capacity|opportunistic]\n"
               "  sdchecker fuzz <log_dir> [--seed S] [--class NAME] "
               "[--analyze-shards N]\n"
               "\n"
               "analysis flags:\n"
               "  --analyze-shards N  shard the post-mining analysis stage\n"
               "                      across N threads (0 = one per hardware\n"
               "                      thread; output is identical to serial)\n"
               "\n"
               "fleet flags:\n"
               "  --shards N          grouping shards per corpus (0 = auto)\n"
               "  --out-dir DIR       write each corpus's analysis JSON to\n"
               "                      DIR/<name>.json (byte-identical to\n"
               "                      'analyze --json' of that corpus)\n"
               "  --baseline FILE     compare delay distributions against a\n"
               "                      previous fleet summary JSON; exits 4\n"
               "                      on significant drift (KS distance)\n"
               "\n"
               "follow serving flags:\n"
               "  --serve [ADDR:PORT]  embedded observability server\n"
               "                       (/metrics /analysis /healthz /varz);\n"
               "                       default 127.0.0.1:0, bound address\n"
               "                       printed to stderr\n"
               "  --serve-stall-ms MS  /healthz answers 503 when no poll\n"
               "                       finished within MS (default 10000)\n"
               "\n"
               "global flags (any command):\n"
               "  --metrics [FILE]     dump the metrics registry as JSON on\n"
               "                       exit: to FILE, or to stderr when no\n"
               "                       FILE is given (stdout stays clean for\n"
               "                       --watch pipelines)\n"
               "  --metrics-out FILE   same as --metrics FILE\n"
               "  --trace FILE     record self-profiling spans; write a\n"
               "                   Perfetto-compatible trace on exit\n"
               "\n"
               "exit status: 0 clean, 1 error, 2 usage error,\n"
               "             3 analysis completed with corpus diagnostics\n");
  return 2;
}

/// Returns the value following `flag`, if present.
std::optional<std::string> flag_value(std::vector<std::string>& args,
                                      const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

/// Like `flag_value`, but the value is optional: consumed only when the
/// token after `flag` satisfies `looks_like_value`.  Returns nullopt
/// when the flag is absent; an engaged optional holding "" when the
/// flag appears bare.
std::optional<std::string> flag_optional_value(
    std::vector<std::string>& args, const std::string& flag,
    bool (*looks_like_value)(const std::string&)) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    std::string value;
    std::size_t span = 1;
    if (i + 1 < args.size() && looks_like_value(args[i + 1])) {
      value = args[i + 1];
      span = 2;
    }
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i + span));
    return value;
  }
  return std::nullopt;
}

/// Parses a strictly-numeric non-negative flag value; nullopt on any
/// trailing garbage ("4x", "", "-1" are all rejected, not truncated).
std::optional<std::size_t> parse_count(const std::string& value) {
  if (value.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() ||
      value.front() == '-') {
    return std::nullopt;
  }
  return static_cast<std::size_t>(n);
}

/// Consumes `--analyze-shards N` (0 = auto); exits with a usage error via
/// nullopt on a malformed count.  Returns the AnalyzeOptions value.
std::optional<std::size_t> take_analyze_shards(
    std::vector<std::string>& args) {
  std::size_t shards = 1;
  if (const auto s = flag_value(args, "--analyze-shards")) {
    const auto parsed = parse_count(*s);
    if (!parsed) {
      std::fprintf(stderr,
                   "sdchecker: --analyze-shards expects a non-negative "
                   "integer, got '%s'\n",
                   s->c_str());
      return std::nullopt;
    }
    shards = *parsed;
  }
  return shards;
}

bool flag_present(std::vector<std::string>& args, const std::string& flag) {
  bool found = false;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      found = true;
    } else {
      ++i;
    }
  }
  return found;
}

/// Strict tail of argument parsing: once a command has consumed its
/// flags, what remains must be exactly the expected positionals.  Any
/// other token — an unknown flag, a known flag whose value is missing,
/// or a stray positional — is a usage error naming the token
/// (historically such arguments were silently ignored).  Returns the
/// positionals, or nullopt after printing the specific error.
std::optional<std::vector<std::string>> finish_args(
    std::vector<std::string> args,
    std::initializer_list<const char*> positional_names,
    std::initializer_list<const char*> value_flags) {
  std::vector<std::string> positionals;
  for (std::string& arg : args) {
    if (!arg.empty() && arg.front() == '-') {
      bool wants_value = false;
      for (const char* flag : value_flags) {
        if (arg == flag) {
          wants_value = true;
          break;
        }
      }
      std::fprintf(stderr,
                   wants_value ? "sdchecker: flag '%s' requires a value\n"
                               : "sdchecker: unknown flag '%s'\n",
                   arg.c_str());
      return std::nullopt;
    }
    positionals.push_back(std::move(arg));
  }
  if (positionals.size() < positional_names.size()) {
    std::fprintf(stderr, "sdchecker: missing <%s>\n",
                 positional_names.begin()[positionals.size()]);
    return std::nullopt;
  }
  if (positionals.size() > positional_names.size()) {
    std::fprintf(stderr, "sdchecker: unexpected argument '%s'\n",
                 positionals[positional_names.size()].c_str());
    return std::nullopt;
  }
  return positionals;
}

/// Live mining progress on stderr (`--progress`), driven by the
/// `mine.lines` / `mine.lines_expected` instruments: a poller thread
/// redraws a `\r` line at ~4 Hz.  Auto-off when stderr is not a TTY, so
/// redirected runs stay clean.  The registry counters are cumulative, so
/// the reporter measures against a baseline captured at start.
class ProgressReporter {
 public:
  ProgressReporter() {
    if (isatty(fileno(stderr)) == 0) return;
    base_lines_ = lines().value();
    base_expected_ = expected().value();
    thread_ = std::thread([this] { run(); });
  }
  ~ProgressReporter() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (drew_) std::fprintf(stderr, "\r\033[K");
  }
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

 private:
  static sdc::obs::Counter& lines() {
    return sdc::obs::MetricsRegistry::global().counter("mine.lines");
  }
  static sdc::obs::Gauge& expected() {
    return sdc::obs::MetricsRegistry::global().gauge("mine.lines_expected");
  }

  void run() {
    const auto start = std::chrono::steady_clock::now();
    sdc::obs::ProgressMeter meter;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      const std::int64_t total = expected().value() - base_expected_;
      meter.set_expected(total > 0 ? static_cast<std::uint64_t>(total) : 0);
      meter.sample(lines().value() - base_lines_,
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
      std::fprintf(stderr, "\r\033[K%s", meter.render().c_str());
      drew_ = true;
    }
  }

  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::uint64_t base_lines_ = 0;
  std::int64_t base_expected_ = 0;
  bool drew_ = false;
};

void print_opt(const char* name, const std::optional<std::int64_t>& v) {
  if (v) {
    std::printf("    %-13s %9.3fs\n", name, static_cast<double>(*v) / 1000.0);
  } else {
    std::printf("    %-13s         -\n", name);
  }
}

int cmd_analyze(std::vector<std::string> args) {
  std::size_t threads = 1;
  if (const auto t = flag_value(args, "--threads")) {
    threads = static_cast<std::size_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  const auto analyze_shards = take_analyze_shards(args);
  if (!analyze_shards) return usage();
  const auto csv = flag_value(args, "--csv");
  const auto delays_csv_path = flag_value(args, "--delays-csv");
  const auto containers_csv_path = flag_value(args, "--containers-csv");
  const auto events_csv_path = flag_value(args, "--events-csv");
  const auto json_path = flag_value(args, "--json");
  const bool per_app = flag_present(args, "--per-app");
  const bool progress = flag_present(args, "--progress");
  const auto positionals =
      finish_args(std::move(args), {"log_dir"},
                  {"--threads", "--analyze-shards", "--csv", "--delays-csv",
                   "--containers-csv", "--events-csv", "--json"});
  if (!positionals) return usage();
  const std::string& dir = (*positionals)[0];

  checker::SdChecker sdchecker({.threads = std::max<std::size_t>(1, threads),
                                .analyze_shards = *analyze_shards});
  checker::AnalysisResult analysis;
  try {
    std::optional<ProgressReporter> reporter;
    if (progress) reporter.emplace();
    analysis = sdchecker.analyze_directory(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }

  std::printf("mined %zu lines (%zu unparsable), %zu events, %zu apps\n\n",
              analysis.lines_total, analysis.lines_unparsed,
              analysis.events_total, analysis.timelines.size());
  std::printf("%s\n", analysis.aggregate.render_text().c_str());

  if (per_app) {
    for (const auto& [app, delays] : analysis.delays) {
      std::printf("  %s\n", app.str().c_str());
      print_opt("total", delays.total);
      print_opt("am", delays.am);
      print_opt("driver", delays.driver);
      print_opt("executor", delays.executor);
      print_opt("in-app", delays.in_app);
      print_opt("out-app", delays.out_app);
      print_opt("alloc", delays.alloc);
    }
    std::printf("\n");
  }

  const std::string completeness = analysis.render_completeness();
  if (!completeness.empty()) {
    std::printf("log coverage / corpus health:\n%s\n", completeness.c_str());
  }
  if (!analysis.anomalies.empty()) {
    std::printf("%zu anomalies:\n", analysis.anomalies.size());
    for (const auto& anomaly : analysis.anomalies) {
      std::printf("  [%s] %s %s: %s\n",
                  std::string(checker::anomaly_type_name(anomaly.type)).c_str(),
                  anomaly.app.str().c_str(), anomaly.entity.c_str(),
                  anomaly.detail.c_str());
    }
  } else {
    std::printf("no anomalies detected\n");
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", path.c_str());
      return false;
    }
    out << content;
    std::printf("written %s\n", path.c_str());
    return true;
  };
  if (csv && !write_file(*csv, analysis.aggregate.render_csv())) return 1;
  if (delays_csv_path &&
      !write_file(*delays_csv_path, checker::delays_csv(analysis))) {
    return 1;
  }
  if (containers_csv_path &&
      !write_file(*containers_csv_path, checker::containers_csv(analysis))) {
    return 1;
  }
  if (events_csv_path &&
      !write_file(*events_csv_path, checker::events_csv(analysis))) {
    return 1;
  }
  if (json_path && !write_file(*json_path, checker::analysis_json(analysis))) {
    return 1;
  }
  if (const std::size_t diagnostics = analysis.diag_counts.total();
      diagnostics > 0) {
    std::printf("analysis completed with %zu corpus diagnostic(s)\n",
                diagnostics);
    return 3;
  }
  return 0;
}

/// Set by the SIGINT handler: the follow loop drains, emits its final
/// report and exits cleanly instead of dying mid-poll.
volatile std::sig_atomic_t g_follow_interrupted = 0;

void follow_sigint(int) { g_follow_interrupted = 1; }

/// Does a token after `--serve` look like an address rather than the
/// next flag or the log-dir positional?  "host:port", ":port" or a bare
/// all-digit port; anything else (including paths) stays in `args`.
bool looks_like_serve_address(const std::string& token) {
  if (token.empty() || token.front() == '-') return false;
  if (token.find(':') != std::string::npos) return true;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// "host:port" / ":port" / "port" / "" onto serve options; false (with
/// a stderr message) on an unparsable port.
bool parse_serve_address(const std::string& address,
                         checker::FollowServeOptions& options) {
  if (address.empty()) return true;
  std::string port = address;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) options.host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }
  const auto parsed = port.empty() ? std::optional<std::size_t>(0)
                                   : parse_count(port);
  if (!parsed || *parsed > 65535) {
    std::fprintf(stderr, "sdchecker: --serve: bad port in '%s'\n",
                 address.c_str());
    return false;
  }
  options.port = static_cast<std::uint16_t>(*parsed);
  return true;
}

int cmd_follow(std::vector<std::string> args) {
  const auto analyze_shards = take_analyze_shards(args);
  if (!analyze_shards) return usage();
  const bool watch = flag_present(args, "--watch");
  const bool no_retire = flag_present(args, "--no-retire");
  double interval_s = 2.0;
  if (const auto v = flag_value(args, "--interval")) {
    interval_s = std::atof(v->c_str());
  }
  std::size_t poll_ms = 500;
  std::size_t exit_quiescent = 0;
  std::size_t max_polls = 0;
  std::size_t parked_cap = checker::MinerOptions{}.parked_events_cap;
  std::size_t retire_quiet = 2;
  const auto take_count = [&args](const char* flag, std::size_t& out) {
    if (const auto v = flag_value(args, flag)) {
      const auto parsed = parse_count(*v);
      if (!parsed) {
        std::fprintf(stderr,
                     "sdchecker: %s expects a non-negative integer, got "
                     "'%s'\n",
                     flag, v->c_str());
        return false;
      }
      out = *parsed;
    }
    return true;
  };
  std::size_t serve_stall_ms = 10000;
  std::size_t stall_polls_after = 0;
  if (!take_count("--poll-ms", poll_ms) ||
      !take_count("--exit-quiescent", exit_quiescent) ||
      !take_count("--max-polls", max_polls) ||
      !take_count("--parked-cap", parked_cap) ||
      !take_count("--retire-quiet", retire_quiet) ||
      !take_count("--serve-stall-ms", serve_stall_ms) ||
      !take_count("--stall-polls-after", stall_polls_after)) {
    return usage();
  }
  const auto serve_address =
      flag_optional_value(args, "--serve", looks_like_serve_address);
  checker::FollowServeOptions serve_options;
  serve_options.stall_threshold_ms =
      static_cast<std::int64_t>(serve_stall_ms);
  if (serve_address && !parse_serve_address(*serve_address, serve_options)) {
    return usage();
  }
  const auto json_path = flag_value(args, "--json");
  const auto positionals = finish_args(
      std::move(args), {"log_dir"},
      {"--interval", "--poll-ms", "--exit-quiescent", "--max-polls",
       "--json", "--parked-cap", "--retire-quiet", "--analyze-shards",
       "--serve", "--serve-stall-ms", "--stall-polls-after"});
  if (!positionals) return usage();
  const std::string& dir = (*positionals)[0];
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "sdchecker: not a directory: %s\n", dir.c_str());
    return 1;
  }

  checker::FollowOptions options;
  options.analyze_shards = *analyze_shards;
  options.miner.parked_events_cap = parked_cap;
  options.retire_quiet_polls = retire_quiet;
  options.retire = !no_retire;
  checker::FollowService service(dir, options);

  // --serve: publish-on-poll snapshots for the embedded server.  The
  // publisher must outlive the server's worker threads, so both live
  // until after the drain below.
  std::unique_ptr<checker::FollowPublisher> publisher;
  std::unique_ptr<obs::HttpServer> server;
  if (serve_address) {
    publisher = std::make_unique<checker::FollowPublisher>();
    server = checker::make_follow_server(*publisher, serve_options);
    std::string error;
    if (!server->start(&error)) {
      std::fprintf(stderr, "sdchecker: --serve: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving http://%s:%u/\n",
                 serve_options.host.c_str(),
                 static_cast<unsigned>(server->port()));
    std::fflush(stderr);
  }

  g_follow_interrupted = 0;
  std::signal(SIGINT, follow_sigint);
  std::size_t quiescent_streak = 0;
  auto last_watch = std::chrono::steady_clock::now() -
                    std::chrono::duration_cast<std::chrono::steady_clock::
                                                   duration>(
                        std::chrono::duration<double>(interval_s));
  while (g_follow_interrupted == 0) {
    if (stall_polls_after > 0 && service.polls() >= stall_polls_after) {
      // Fault injection for the serve smoke: the poll loop wedges (no
      // polls, no publishes) while the server keeps answering, so
      // /healthz must flip to 503 once the poll age passes the
      // threshold.  Only SIGINT ends the stall.
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      continue;
    }
    service.poll_once();
    quiescent_streak = service.quiescent() ? quiescent_streak + 1 : 0;
    if (publisher) {
      if (!service.quiescent()) {
        // Something changed: render once and publish.  Quiescent polls
        // only stamp the clock — retirement cannot change the analysis
        // document (the PR 7 parity contract), so the published bytes
        // stay current without re-rendering every poll.
        const checker::AnalysisResult analysis = service.snapshot();
        checker::FollowPublication publication;
        publication.analysis_json = checker::analysis_json(analysis);
        publication.polls = service.polls();
        publication.quiescent = false;
        publication.diag_counts = analysis.diag_counts;
        publisher->publish(std::move(publication));
      } else {
        publisher->touch(service.polls(), /*quiescent=*/true);
      }
    }
    if (watch) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_watch).count() >=
          interval_s) {
        std::printf("%s\n", service.watch_record().c_str());
        std::fflush(stdout);
        last_watch = now;
      }
    }
    if (exit_quiescent > 0 && quiescent_streak >= exit_quiescent) break;
    if (max_polls > 0 && service.polls() >= max_polls) break;
    if (g_follow_interrupted != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  std::signal(SIGINT, SIG_DFL);

  // Drain: buffered final partial lines become lines, exactly as the
  // batch reader would see the files now.
  service.finish();
  const checker::AnalysisResult analysis = service.snapshot();
  if (publisher) {
    // The server keeps answering until process exit; what it serves from
    // here on is the drained document — byte-identical to a batch
    // `analyze` of the directory as it stands now.
    checker::FollowPublication publication;
    publication.analysis_json = checker::analysis_json(analysis);
    publication.polls = service.polls();
    publication.quiescent = true;
    publication.diag_counts = analysis.diag_counts;
    publisher->publish(std::move(publication));
  }
  if (watch) {
    std::printf("%s\n", service.watch_record().c_str());
    std::fflush(stdout);
  }

  std::fprintf(stderr,
               "followed %llu poll(s): %llu bytes, %zu stream(s), "
               "%llu rotation(s)\n",
               static_cast<unsigned long long>(service.polls()),
               static_cast<unsigned long long>(service.bytes_read()),
               service.streams_seen(),
               static_cast<unsigned long long>(service.rotations()));
  std::fprintf(stderr,
               "mined %zu lines (%zu unparsable), %zu events, %zu apps "
               "(%zu retired, %zu resident)\n",
               analysis.lines_total, analysis.lines_unparsed,
               analysis.events_total, analysis.delays.size(),
               service.analyzer().apps_retired(),
               service.analyzer().apps_resident());
  // Under --watch, stdout is a pure ndjson stream (one record per line,
  // machine-checkable with `followcheck`); the human report goes to
  // stderr instead.
  std::FILE* report = watch ? stderr : stdout;
  std::fprintf(report, "%s\n", analysis.aggregate.render_text().c_str());
  if (json_path) {
    std::ofstream out(*json_path);
    if (out) out << checker::analysis_json(analysis);
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(report, "written %s\n", json_path->c_str());
  }
  if (const std::size_t diagnostics = analysis.diag_counts.total();
      diagnostics > 0) {
    std::fprintf(report, "analysis completed with %zu corpus diagnostic(s)\n",
                 diagnostics);
    return 3;
  }
  return 0;
}

int cmd_followcheck(std::vector<std::string> args) {
  const auto positionals =
      finish_args(std::move(args), {"watch_ndjson"}, {});
  if (!positionals) return usage();
  std::ifstream in((*positionals)[0]);
  if (!in) {
    std::fprintf(stderr, "sdchecker: cannot read %s\n",
                 (*positionals)[0].c_str());
    return 1;
  }
  std::size_t records = 0;
  std::size_t failures = 0;
  std::string line;
  for (std::size_t line_no = 1; std::getline(in, line); ++line_no) {
    if (line.empty()) continue;
    ++records;
    const checker::WatchCheckResult result = checker::check_watch_json(line);
    if (!result.ok) {
      ++failures;
      for (const std::string& error : result.errors) {
        std::fprintf(stderr, "sdchecker: watch check: line %zu: %s\n",
                     line_no, error.c_str());
      }
    }
  }
  if (records == 0) {
    std::fprintf(stderr, "sdchecker: watch check: no records\n");
    return 1;
  }
  if (failures > 0) return 1;
  std::printf("watch check ok: %zu record(s)\n", records);
  return 0;
}

int cmd_trace(std::vector<std::string> args) {
  std::size_t threads = 1;
  if (const auto t = flag_value(args, "--threads")) {
    threads = static_cast<std::size_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  const auto analyze_shards = take_analyze_shards(args);
  if (!analyze_shards) return usage();
  const auto out_flag = flag_value(args, "--out");
  const bool check = flag_present(args, "--check");
  const auto positionals = finish_args(
      std::move(args), {"log_dir"}, {"--threads", "--analyze-shards", "--out"});
  if (!positionals) return usage();
  const std::string out_path = out_flag.value_or("app.trace.json");

  checker::SdChecker sdchecker({.threads = std::max<std::size_t>(1, threads),
                                .analyze_shards = *analyze_shards});
  checker::AnalysisResult analysis;
  try {
    analysis = sdchecker.analyze_directory((*positionals)[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }

  const std::string json = checker::scheduling_trace_json(analysis);
  {
    std::ofstream out(out_path);
    if (out) out << json;
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("written %s: %zu application(s) -- load it at "
              "ui.perfetto.dev\n",
              out_path.c_str(), analysis.timelines.size());

  if (check) {
    obs::TraceCheckOptions options;
    options.required_process_prefix = "application_";
    for (const std::string_view slice : checker::required_app_slices()) {
      options.required_slices.emplace_back(slice);
    }
    const obs::TraceCheckResult result = obs::check_trace_json(json, options);
    if (!result.ok) {
      for (const std::string& error : result.errors) {
        std::fprintf(stderr, "sdchecker: trace check: %s\n", error.c_str());
      }
      return 1;
    }
    std::printf("trace check ok: %zu events across %zu process(es)\n",
                result.events, result.processes);
  }
  if (analysis.diag_counts.total() > 0) {
    std::printf("analysis completed with %zu corpus diagnostic(s)\n",
                analysis.diag_counts.total());
    return 3;
  }
  return 0;
}

int cmd_timeline(std::vector<std::string> args) {
  const auto positionals =
      finish_args(std::move(args), {"log_dir", "application_id"}, {});
  if (!positionals) return usage();
  const auto app = ApplicationId::parse((*positionals)[1]);
  if (!app) {
    std::fprintf(stderr, "sdchecker: '%s' is not an application id\n",
                 (*positionals)[1].c_str());
    return 2;
  }
  try {
    const auto analysis =
        checker::SdChecker().analyze_directory((*positionals)[0]);
    const auto it = analysis.timelines.find(*app);
    if (it == analysis.timelines.end()) {
      std::fprintf(stderr, "sdchecker: no events for %s\n",
                   (*positionals)[1].c_str());
      return 1;
    }
    std::printf("%s", checker::render_timeline(it->second).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_diff(std::vector<std::string> args) {
  double threshold = 0.10;
  if (const auto t = flag_value(args, "--threshold")) {
    threshold = std::atof(t->c_str()) / 100.0;
  }
  const auto positionals =
      finish_args(std::move(args), {"log_dir_a", "log_dir_b"},
                  {"--threshold"});
  if (!positionals) return usage();
  try {
    const checker::SdChecker sdchecker({.threads = 2});
    const auto a = sdchecker.analyze_directory((*positionals)[0]);
    const auto b = sdchecker.analyze_directory((*positionals)[1]);
    const auto comparison = checker::compare(a, b);
    std::printf("A = %s (%zu apps)   B = %s (%zu apps)\n\n",
                (*positionals)[0].c_str(), comparison.apps_a,
                (*positionals)[1].c_str(), comparison.apps_b);
    std::printf("%s\n", comparison.render_text().c_str());
    const auto moved = comparison.significant(threshold);
    if (moved.empty()) {
      std::printf("no metric median moved by more than %.0f%%\n",
                  threshold * 100);
    } else {
      std::printf("moved more than %.0f%%:\n", threshold * 100);
      for (const checker::MetricDelta* delta : moved) {
        std::printf("  %-14s %.2fx\n", delta->metric.c_str(),
                    *delta->median_ratio);
      }
    }
    // Distribution-level verdicts from the same KS engine the fleet
    // regression gate uses (compare.hpp): median movement above misses
    // shape changes (tail growth at a stable median); this does not.
    const auto drift = checker::histogram_drift(checker::component_histograms(a),
                                                checker::component_histograms(b));
    std::printf("\n%s", drift.render_text("A", "B").c_str());
    const auto regressions = drift.regressions();
    if (regressions.empty()) {
      std::printf("no significant distribution drift\n");
    } else {
      std::printf("distribution drift (worst first):\n");
      for (const checker::ComponentDrift* regression : regressions) {
        std::printf("  %-14s KS %.3f (threshold %.3f)\n",
                    regression->metric.c_str(), regression->distance,
                    regression->threshold);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_fleet(std::vector<std::string> args) {
  checker::FleetOptions options;
  if (const auto t = flag_value(args, "--threads")) {
    const auto parsed = parse_count(*t);
    if (!parsed) {
      std::fprintf(stderr,
                   "sdchecker: --threads expects a non-negative integer, "
                   "got '%s'\n",
                   t->c_str());
      return usage();
    }
    options.threads = *parsed;
  }
  if (const auto s = flag_value(args, "--shards")) {
    const auto parsed = parse_count(*s);
    if (!parsed) {
      std::fprintf(stderr,
                   "sdchecker: --shards expects a non-negative integer, "
                   "got '%s'\n",
                   s->c_str());
      return usage();
    }
    options.shards_per_corpus = *parsed;
  }
  const auto json_path = flag_value(args, "--json");
  const auto out_dir = flag_value(args, "--out-dir");
  const auto baseline_path = flag_value(args, "--baseline");
  const auto positionals = finish_args(
      std::move(args), {"root_dir"},
      {"--threads", "--shards", "--json", "--out-dir", "--baseline"});
  if (!positionals) return usage();

  checker::FleetResult fleet;
  try {
    fleet = checker::analyze_fleet(
        std::filesystem::path((*positionals)[0]), options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }

  std::printf("fleet: %zu corpora on %zu threads, %zu shards/corpus\n\n",
              fleet.corpora.size(), fleet.threads, fleet.shards_per_corpus);
  std::size_t diagnostics_total = 0;
  for (const checker::CorpusResult& corpus : fleet.corpora) {
    if (!corpus.error.empty()) {
      std::printf("  %-24s ERROR: %s\n", corpus.name.c_str(),
                  corpus.error.c_str());
      continue;
    }
    diagnostics_total += corpus.diagnostics;
    std::printf("  %-24s %6zu apps %8zu events %10zu lines %4zu diagnostics\n",
                corpus.name.c_str(), corpus.apps, corpus.events, corpus.lines,
                corpus.diagnostics);
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", path.c_str());
      return false;
    }
    out << content;
    std::printf("written %s\n", path.c_str());
    return true;
  };
  if (out_dir) {
    std::error_code ec;
    std::filesystem::create_directories(*out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "sdchecker: cannot create %s: %s\n",
                   out_dir->c_str(), ec.message().c_str());
      return 1;
    }
    for (const checker::CorpusResult& corpus : fleet.corpora) {
      if (!corpus.error.empty()) continue;
      const auto path = std::filesystem::path(*out_dir) /
                        (corpus.name + ".json");
      if (!write_file(path.string(), corpus.analysis_json)) return 1;
    }
  }
  if (json_path && !write_file(*json_path, fleet.summary_json())) return 1;

  // Exit contract: 0 clean, 1 corpus/file error, 3 corpus diagnostics,
  // 4 baseline drift — the strongest signal wins (4 > 1 > 3).
  int rc = 0;
  if (diagnostics_total > 0) {
    std::printf("fleet completed with %zu corpus diagnostic(s)\n",
                diagnostics_total);
    rc = 3;
  }
  if (fleet.failed() > 0) {
    std::fprintf(stderr, "sdchecker: %zu corpora failed\n", fleet.failed());
    rc = 1;
  }
  if (baseline_path) {
    std::string error;
    const auto baseline =
        checker::load_fleet_baseline(*baseline_path, &error);
    if (!baseline) {
      std::fprintf(stderr, "sdchecker: %s\n", error.c_str());
      return 1;
    }
    static obs::Counter& regressions_counter =
        obs::catalog_counter(obs::metric::kFleetRegressions);
    const auto drift = checker::histogram_drift(*baseline, fleet.components);
    std::printf("\n%s", drift.render_text("baseline", "fleet").c_str());
    const auto regressions = drift.regressions();
    regressions_counter.add(regressions.size());
    if (regressions.empty()) {
      std::printf("no significant drift vs %s\n", baseline_path->c_str());
    } else {
      std::printf("drift vs %s (worst first):\n", baseline_path->c_str());
      for (const checker::ComponentDrift* regression : regressions) {
        std::printf("  %-14s KS %.3f (threshold %.3f, n %llu -> %llu)\n",
                    regression->metric.c_str(), regression->distance,
                    regression->threshold,
                    static_cast<unsigned long long>(regression->n_a),
                    static_cast<unsigned long long>(regression->n_b));
      }
      rc = 4;
    }
  }
  return rc;
}

int cmd_graph(std::vector<std::string> args) {
  const auto out_flag = flag_value(args, "--out");
  const auto positionals =
      finish_args(std::move(args), {"log_dir", "application_id"}, {"--out"});
  if (!positionals) return usage();
  const std::string& dir = (*positionals)[0];
  const std::string& app_text = (*positionals)[1];
  const std::string out_path = out_flag.value_or(app_text + ".dot");

  const auto app = ApplicationId::parse(app_text);
  if (!app) {
    std::fprintf(stderr, "sdchecker: '%s' is not an application id\n",
                 app_text.c_str());
    return 2;
  }
  try {
    const auto analysis = checker::SdChecker().analyze_directory(dir);
    const auto graph = analysis.graph_for(*app);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << graph.to_dot();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "sdchecker: error writing %s\n", out_path.c_str());
      return 1;
    }
    std::printf("%zu nodes, %zu edges -> %s\n", graph.nodes().size(),
                graph.edges().size(), out_path.c_str());
    const auto violations = graph.validate();
    for (const auto& violation : violations) {
      std::printf("  warning: %s\n", violation.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_simulate(std::vector<std::string> args) {
  const auto jobs_flag = flag_value(args, "--jobs");
  const auto seed_flag = flag_value(args, "--seed");
  const auto executors_flag = flag_value(args, "--executors");
  const auto input_mb_flag = flag_value(args, "--input-mb");
  const auto scheduler_flag = flag_value(args, "--scheduler");
  const auto positionals =
      finish_args(std::move(args), {"out_dir"},
                  {"--jobs", "--seed", "--executors", "--input-mb",
                   "--scheduler"});
  if (!positionals) return usage();
  const std::string& out_dir = (*positionals)[0];
  const int jobs = std::atoi(jobs_flag.value_or("20").c_str());
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(seed_flag.value_or("42").c_str(), nullptr, 10));
  const int executors = std::atoi(executors_flag.value_or("4").c_str());
  const double input_mb = std::atof(input_mb_flag.value_or("2048").c_str());
  const std::string scheduler = scheduler_flag.value_or("capacity");

  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  scenario.yarn.scheduler = scheduler == "opportunistic"
                                ? yarn::SchedulerKind::kOpportunistic
                                : yarn::SchedulerKind::kCapacity;
  trace::TraceConfig trace_config;
  trace_config.count = jobs;
  trace_config.seed = seed + 1;
  for (const auto& submission : trace::generate_trace(trace_config)) {
    harness::SparkSubmissionPlan plan;
    plan.at = submission.at;
    plan.app = workloads::make_tpch_query(
        1 + submission.workload_index % workloads::kTpchQueryCount, input_mb,
        executors);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  result.logs.write_to_directory(out_dir);
  std::printf("simulated %zu jobs (%llu events), wrote %zu log files "
              "(%zu lines) to %s\n",
              result.jobs.size(),
              static_cast<unsigned long long>(result.events_executed),
              result.logs.stream_count(), result.logs.total_lines(),
              out_dir.c_str());
  return 0;
}

int cmd_fuzz(std::vector<std::string> args) {
  std::uint64_t seed = 42;
  if (const auto s = flag_value(args, "--seed")) {
    seed = std::strtoull(s->c_str(), nullptr, 10);
  }
  std::vector<checker::MutationClass> classes;
  while (const auto name = flag_value(args, "--class")) {
    const auto cls = checker::mutation_class_from_name(*name);
    if (!cls) {
      std::fprintf(stderr, "sdchecker: unknown mutation class '%s'\n",
                   name->c_str());
      return usage();
    }
    classes.push_back(*cls);
  }
  if (classes.empty()) classes = checker::all_mutation_classes();
  const auto analyze_shards = take_analyze_shards(args);
  if (!analyze_shards) return usage();
  const auto positionals = finish_args(std::move(args), {"log_dir"},
                                       {"--seed", "--class",
                                        "--analyze-shards"});
  if (!positionals) return usage();

  logging::LogBundle base;
  try {
    base = logging::LogBundle::read_from_directory((*positionals)[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
  checker::AnalyzeOptions options;
  options.analyze_shards = *analyze_shards;
  const auto results = checker::fuzz_corpus(base, seed, classes, options);
  std::printf("%s", checker::render_fuzz_report(results).c_str());
  for (const auto& result : results) {
    if (!result.ok) {
      std::printf("fuzz smoke test FAILED\n");
      return 1;
    }
  }
  std::printf("fuzz smoke test passed: %zu class(es)\n", results.size());
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& command, std::vector<std::string> args) {
  if (command == "analyze") return cmd_analyze(std::move(args));
  if (command == "follow") return cmd_follow(std::move(args));
  if (command == "followcheck") return cmd_followcheck(std::move(args));
  if (command == "trace") return cmd_trace(std::move(args));
  if (command == "timeline") return cmd_timeline(std::move(args));
  if (command == "diff") return cmd_diff(std::move(args));
  if (command == "fleet") return cmd_fleet(std::move(args));
  if (command == "graph") return cmd_graph(std::move(args));
  if (command == "simulate") return cmd_simulate(std::move(args));
  if (command == "fuzz") return cmd_fuzz(std::move(args));
  std::fprintf(stderr, "sdchecker: unknown command '%s'\n", command.c_str());
  return usage();
}

/// Writes an observability dump; never overrides a failing exit status,
/// but a dump that cannot be written turns success into failure.
int write_dump(int rc, const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (out) out << content;
  if (!out) {
    std::fprintf(stderr, "sdchecker: cannot write %s\n", path.c_str());
    return rc == 0 ? 1 : rc;
  }
  std::fprintf(stderr, "written %s\n", path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  // Global observability flags, accepted by every command.  `--metrics`
  // takes an optional FILE: bare, the dump goes to stderr, so a
  // `follow --watch | followcheck` pipeline keeps a pure-ndjson stdout.
  auto metrics_path = flag_optional_value(
      args, "--metrics",
      [](const std::string& token) {
        return !token.empty() && token.front() != '-';
      });
  if (const auto out = flag_value(args, "--metrics-out")) {
    metrics_path = *out;
  }
  const auto trace_path = flag_value(args, "--trace");
  if (trace_path) obs::Tracer::global().set_enabled(true);

  int rc = dispatch(command, std::move(args));

  if (metrics_path && !metrics_path->empty()) {
    rc = write_dump(rc, *metrics_path,
                    obs::MetricsRegistry::global().snapshot().to_json());
  } else if (metrics_path) {
    std::fprintf(stderr, "%s\n",
                 obs::MetricsRegistry::global().snapshot().to_json().c_str());
  }
  if (trace_path) {
    rc = write_dump(
        rc, *trace_path,
        obs::spans_trace_json(obs::Tracer::global().snapshot()));
  }
  return rc;
}
