// sdchecker — command-line front end for the SDchecker library.
//
//   sdchecker analyze <log_dir> [--threads N] [--csv FILE] [--per-app]
//       Mine a directory of YARN/Spark log files and print the
//       scheduling-delay decomposition, aggregate statistics and any
//       anomalies (never-used containers, broken chains, clock skew).
//
//   sdchecker graph <log_dir> <application_id> [--out FILE.dot]
//       Export the Fig.-3-style scheduling graph of one application.
//
//   sdchecker simulate <out_dir> [--jobs N] [--seed S] [--executors E]
//             [--input-mb MB] [--scheduler capacity|opportunistic]
//       Generate a synthetic Spark-on-YARN log corpus (useful for demos
//       and for testing the analyzer without a cluster).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sdchecker/compare.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdchecker/timeline.hpp"
#include "trace/submission_trace.hpp"
#include "workloads/tpch.hpp"

namespace {

using namespace sdc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sdchecker analyze <log_dir> [--threads N] [--csv FILE] "
               "[--per-app]\n"
               "            [--delays-csv FILE] [--containers-csv FILE] "
               "[--events-csv FILE] [--json FILE]\n"
               "  sdchecker timeline <log_dir> <application_id>\n"
               "  sdchecker diff <log_dir_a> <log_dir_b> [--threshold PCT]\n"
               "  sdchecker graph <log_dir> <application_id> [--out FILE]\n"
               "  sdchecker simulate <out_dir> [--jobs N] [--seed S] "
               "[--executors E]\n"
               "            [--input-mb MB] [--scheduler "
               "capacity|opportunistic]\n");
  return 2;
}

/// Returns the value following `flag`, if present.
std::optional<std::string> flag_value(std::vector<std::string>& args,
                                      const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

bool flag_present(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void print_opt(const char* name, const std::optional<std::int64_t>& v) {
  if (v) {
    std::printf("    %-13s %9.3fs\n", name, static_cast<double>(*v) / 1000.0);
  } else {
    std::printf("    %-13s         -\n", name);
  }
}

int cmd_analyze(std::vector<std::string> args) {
  if (args.empty()) return usage();
  const std::string dir = args[0];
  args.erase(args.begin());
  std::size_t threads = 1;
  if (const auto t = flag_value(args, "--threads")) {
    threads = static_cast<std::size_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  const auto csv = flag_value(args, "--csv");
  const bool per_app = flag_present(args, "--per-app");

  checker::SdChecker sdchecker({.threads = std::max<std::size_t>(1, threads)});
  checker::AnalysisResult analysis;
  try {
    analysis = sdchecker.analyze_directory(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }

  std::printf("mined %zu lines (%zu unparsable), %zu events, %zu apps\n\n",
              analysis.lines_total, analysis.lines_unparsed,
              analysis.events_total, analysis.timelines.size());
  std::printf("%s\n", analysis.aggregate.render_text().c_str());

  if (per_app) {
    for (const auto& [app, delays] : analysis.delays) {
      std::printf("  %s\n", app.str().c_str());
      print_opt("total", delays.total);
      print_opt("am", delays.am);
      print_opt("driver", delays.driver);
      print_opt("executor", delays.executor);
      print_opt("in-app", delays.in_app);
      print_opt("out-app", delays.out_app);
      print_opt("alloc", delays.alloc);
    }
    std::printf("\n");
  }

  const std::string completeness = analysis.render_completeness();
  if (!completeness.empty()) {
    std::printf("incomplete log coverage (a daemon's logs may be missing):\n"
                "%s\n",
                completeness.c_str());
  }
  if (!analysis.anomalies.empty()) {
    std::printf("%zu anomalies:\n", analysis.anomalies.size());
    for (const auto& anomaly : analysis.anomalies) {
      std::printf("  [%s] %s %s: %s\n",
                  std::string(checker::anomaly_type_name(anomaly.type)).c_str(),
                  anomaly.app.str().c_str(), anomaly.entity.c_str(),
                  anomaly.detail.c_str());
    }
  } else {
    std::printf("no anomalies detected\n");
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "sdchecker: cannot write %s\n", path.c_str());
      return false;
    }
    out << content;
    std::printf("written %s\n", path.c_str());
    return true;
  };
  if (csv && !write_file(*csv, analysis.aggregate.render_csv())) return 1;
  if (const auto path = flag_value(args, "--delays-csv")) {
    if (!write_file(*path, checker::delays_csv(analysis))) return 1;
  }
  if (const auto path = flag_value(args, "--containers-csv")) {
    if (!write_file(*path, checker::containers_csv(analysis))) return 1;
  }
  if (const auto path = flag_value(args, "--events-csv")) {
    if (!write_file(*path, checker::events_csv(analysis))) return 1;
  }
  if (const auto path = flag_value(args, "--json")) {
    if (!write_file(*path, checker::analysis_json(analysis))) return 1;
  }
  return 0;
}

int cmd_timeline(std::vector<std::string> args) {
  if (args.size() < 2) return usage();
  const auto app = ApplicationId::parse(args[1]);
  if (!app) {
    std::fprintf(stderr, "sdchecker: '%s' is not an application id\n",
                 args[1].c_str());
    return 2;
  }
  try {
    const auto analysis = checker::SdChecker().analyze_directory(args[0]);
    const auto it = analysis.timelines.find(*app);
    if (it == analysis.timelines.end()) {
      std::fprintf(stderr, "sdchecker: no events for %s\n",
                   args[1].c_str());
      return 1;
    }
    std::printf("%s", checker::render_timeline(it->second).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_diff(std::vector<std::string> args) {
  if (args.size() < 2) return usage();
  double threshold = 0.10;
  if (const auto t = flag_value(args, "--threshold")) {
    threshold = std::atof(t->c_str()) / 100.0;
  }
  try {
    const checker::SdChecker sdchecker({.threads = 2});
    const auto a = sdchecker.analyze_directory(args[0]);
    const auto b = sdchecker.analyze_directory(args[1]);
    const auto comparison = checker::compare(a, b);
    std::printf("A = %s (%zu apps)   B = %s (%zu apps)\n\n", args[0].c_str(),
                comparison.apps_a, args[1].c_str(), comparison.apps_b);
    std::printf("%s\n", comparison.render_text().c_str());
    const auto moved = comparison.significant(threshold);
    if (moved.empty()) {
      std::printf("no metric median moved by more than %.0f%%\n",
                  threshold * 100);
    } else {
      std::printf("moved more than %.0f%%:\n", threshold * 100);
      for (const checker::MetricDelta* delta : moved) {
        std::printf("  %-14s %.2fx\n", delta->metric.c_str(),
                    *delta->median_ratio);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_graph(std::vector<std::string> args) {
  if (args.size() < 2) return usage();
  const std::string dir = args[0];
  const std::string app_text = args[1];
  args.erase(args.begin(), args.begin() + 2);
  const std::string out_path =
      flag_value(args, "--out").value_or(app_text + ".dot");

  const auto app = ApplicationId::parse(app_text);
  if (!app) {
    std::fprintf(stderr, "sdchecker: '%s' is not an application id\n",
                 app_text.c_str());
    return 2;
  }
  try {
    const auto analysis = checker::SdChecker().analyze_directory(dir);
    const auto graph = analysis.graph_for(*app);
    std::ofstream out(out_path);
    out << graph.to_dot();
    std::printf("%zu nodes, %zu edges -> %s\n", graph.nodes().size(),
                graph.edges().size(), out_path.c_str());
    const auto violations = graph.validate();
    for (const auto& violation : violations) {
      std::printf("  warning: %s\n", violation.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdchecker: %s\n", e.what());
    return 1;
  }
}

int cmd_simulate(std::vector<std::string> args) {
  if (args.empty()) return usage();
  const std::string out_dir = args[0];
  args.erase(args.begin());
  const int jobs = std::atoi(flag_value(args, "--jobs").value_or("20").c_str());
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(flag_value(args, "--seed").value_or("42").c_str(), nullptr,
                    10));
  const int executors =
      std::atoi(flag_value(args, "--executors").value_or("4").c_str());
  const double input_mb =
      std::atof(flag_value(args, "--input-mb").value_or("2048").c_str());
  const std::string scheduler =
      flag_value(args, "--scheduler").value_or("capacity");

  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  scenario.yarn.scheduler = scheduler == "opportunistic"
                                ? yarn::SchedulerKind::kOpportunistic
                                : yarn::SchedulerKind::kCapacity;
  trace::TraceConfig trace_config;
  trace_config.count = jobs;
  trace_config.seed = seed + 1;
  for (const auto& submission : trace::generate_trace(trace_config)) {
    harness::SparkSubmissionPlan plan;
    plan.at = submission.at;
    plan.app = workloads::make_tpch_query(
        1 + submission.workload_index % workloads::kTpchQueryCount, input_mb,
        executors);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto result = harness::run_scenario(scenario);
  result.logs.write_to_directory(out_dir);
  std::printf("simulated %zu jobs (%llu events), wrote %zu log files "
              "(%zu lines) to %s\n",
              result.jobs.size(),
              static_cast<unsigned long long>(result.events_executed),
              result.logs.stream_count(), result.logs.total_lines(),
              out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "analyze") return cmd_analyze(std::move(args));
  if (command == "timeline") return cmd_timeline(std::move(args));
  if (command == "diff") return cmd_diff(std::move(args));
  if (command == "graph") return cmd_graph(std::move(args));
  if (command == "simulate") return cmd_simulate(std::move(args));
  return usage();
}
