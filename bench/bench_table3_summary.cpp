// E14 — Table III: summary of the scheduling delays and proposed
// optimizations.
//
// Paper contributions to the total scheduling delay (from §IV-B's trace):
//   alloc-delays 23% | acqui-delays <1% | local-delays <1% |
//   laun-delays <1% | driver-delay 35% | executor-delay 41%
// plus the per-row cause and proposed optimization.  We recompute each
// component's mean contribution from the same long-trace run.
#include "bench_common.hpp"

namespace {

using namespace sdc;

void experiment() {
  benchutil::print_header("Table III: delay summary and optimizations",
                          "paper Table III, §V-B");
  harness::ScenarioConfig scenario;
  scenario.seed = 42;
  benchutil::add_tpch_trace(scenario, 400, 2048, 4);
  const auto out = benchutil::run_and_analyze(scenario);
  const auto& agg = out.analysis.aggregate;
  const double total = agg.total.mean();

  struct TableRow {
    const char* source;
    const char* cause;
    double mean_s;
    const char* paper_pct;
    const char* optimization;
  };
  const TableRow table[] = {
      {"1.alloc-delays", "resource allocation decisions at the RM",
       agg.alloc.mean(), "23%", "trade-off: distributed scheduler"},
      {"2.acqui-delays", "waiting for the AM heartbeat to pick up grants",
       agg.acquisition.mean(), "<1%", "trade-off: faster heartbeats"},
      {"3.local-delays", "downloading localization files from HDFS",
       agg.localization.mean(), "<1%",
       "user&design: dedicated storage + caching service"},
      {"4.laun-delays", "launching AM/executor (JVM start)",
       agg.launching.mean(), "<1%", "user: avoid OS containers"},
      {"5.driver-delay", "Spark driver initialization", agg.driver.mean(),
       "35%", "trade-off: JVM reuse"},
      {"6.executor-delay", "executor init + Spark task scheduling",
       agg.executor.mean(), "41%",
       "trade-off&user: JVM reuse + app-code optimization"},
  };
  std::printf("  %-18s %8s %8s %8s   %s\n", "source", "mean", "ours", "paper",
              "optimization");
  std::printf("  %s\n", std::string(92, '-').c_str());
  for (const TableRow& row : table) {
    std::printf("  %-18s %7.2fs %7.1f%% %8s   %s\n", row.source, row.mean_s,
                row.mean_s / total * 100.0, row.paper_pct, row.optimization);
  }
  std::printf("\n  mean total scheduling delay: %.2fs over %zu apps\n", total,
              agg.app_count());
  benchutil::print_note(
      "per-container means (acquisition/localization/launching) are "
      "per-container averages relative to the per-app total, matching the "
      "paper's presentation; components overlap in time so rows need not "
      "sum to 100%");
}

void BM_AggregateReport(benchmark::State& state) {
  harness::ScenarioConfig scenario;
  scenario.seed = 43;
  benchutil::add_tpch_trace(scenario, 30, 2048, 4);
  const auto sim = harness::run_scenario(scenario);
  const auto analysis = checker::SdChecker().analyze(sim.logs);
  for (auto _ : state) {
    checker::AggregateReport report;
    for (const auto& [app, delays] : analysis.delays) report.add(delays);
    benchmark::DoNotOptimize(report.render_text());
  }
}
BENCHMARK(BM_AggregateReport)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
