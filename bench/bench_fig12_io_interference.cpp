// E12 — Figure 12: impact of I/O interference (dfsIO writers).
//
// Paper, at 100 interfering maps (each writing 20 GB to HDFS):
//   (a) total delay p95 degraded ~3.9x; both in and out suffer
//   (b) localization delay: ~9.4x median / ~7x tail slowdown
//   (c) executor delay: 2.5-3.5x, with a much more scattered distribution
//   (d) AM delay: up to ~8x (the driver localizes too, so the total
//       pipeline pays the interference twice)
#include "bench_common.hpp"

namespace {

using namespace sdc;

struct Row {
  int maps;
  SampleSet total, in_app, out_app, localization, executor, am;
};

Row run_with_interference(int maps) {
  harness::ScenarioConfig scenario;
  scenario.seed = 120;
  if (maps > 0) {
    harness::MrSubmissionPlan dfsio;
    dfsio.at = 0;
    dfsio.app = workloads::make_dfsio(maps, seconds(700));
    scenario.mr_jobs.push_back(std::move(dfsio));
  }
  benchutil::add_tpch_trace(scenario, 60, 2048, 4, seconds(40), seconds(8));
  scenario.extra_horizon = seconds(8 * 3600);
  const auto out = benchutil::run_and_analyze(scenario);
  Row row;
  row.maps = maps;
  // Restrict to the SQL victims (exclude the dfsIO app itself).
  for (const auto& job : out.sim.jobs) {
    if (job.kind != spark::AppKind::kSparkSql) continue;
    const auto it = out.analysis.delays.find(job.app);
    if (it == out.analysis.delays.end()) continue;
    const checker::Delays& d = it->second;
    const auto push = [](SampleSet& set, const std::optional<std::int64_t>& v) {
      if (v) set.add(static_cast<double>(*v) / 1000.0);
    };
    push(row.total, d.total);
    push(row.in_app, d.in_app);
    push(row.out_app, d.out_app);
    push(row.executor, d.executor);
    push(row.am, d.am);
    for (const std::int64_t loc : d.worker_localizations()) {
      row.localization.add(static_cast<double>(loc) / 1000.0);
    }
  }
  return row;
}

void experiment() {
  benchutil::print_header("Figure 12: I/O interference (dfsIO maps)",
                          "paper Fig. 12 (a)-(d), §IV-E");
  std::vector<Row> rows;
  for (const int maps : {0, 20, 50, 100}) rows.push_back(run_with_interference(maps));
  const Row& base = rows.front();
  const Row& worst = rows.back();

  std::printf("  (a) default vs 100-interference [paper: total p95 ~3.9x; "
              "in and out both degrade]\n");
  benchutil::print_cdf("total default", base.total);
  benchutil::print_cdf("total 100-intf", worst.total);
  std::printf("      p95 slowdown: total %.1fx, in %.1fx, out %.1fx\n",
              worst.total.p95() / base.total.p95(),
              worst.in_app.p95() / base.in_app.p95(),
              worst.out_app.p95() / base.out_app.p95());

  std::printf("\n  (b) localization delay vs degree [paper @100: ~9.4x "
              "median, ~7x tail]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d maps", row.maps);
    benchutil::print_dist_row(label, row.localization);
  }
  std::printf("      @100 maps: median %.1fx, p95 %.1fx vs default\n",
              worst.localization.median() / base.localization.median(),
              worst.localization.p95() / base.localization.p95());

  std::printf("\n  (c) executor delay vs degree [paper @100: 2.5-3.5x, "
              "more scattered]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d maps", row.maps);
    benchutil::print_dist_row(label, row.executor);
  }
  std::printf("      @100 maps: median %.1fx, stddev %.1fx vs default\n",
              worst.executor.median() / base.executor.median(),
              worst.executor.stddev() / base.executor.stddev());

  std::printf("\n  (d) AM delay vs degree [paper @100: up to ~8x — the "
              "driver localization pays the interference too]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d maps", row.maps);
    benchutil::print_dist_row(label, row.am);
  }
}

void BM_InterferedScenario(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 121;
    harness::MrSubmissionPlan dfsio;
    dfsio.at = 0;
    dfsio.app = workloads::make_dfsio(static_cast<std::int32_t>(state.range(0)),
                                      seconds(60));
    scenario.mr_jobs.push_back(std::move(dfsio));
    benchutil::add_tpch_trace(scenario, 4, 2048, 4, seconds(10));
    scenario.extra_horizon = seconds(3600);
    benchmark::DoNotOptimize(harness::run_scenario(scenario).jobs.size());
  }
}
BENCHMARK(BM_InterferedScenario)->Arg(0)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
