// E15 — §V-A: identification of the SPARK-21562 bug.
//
// Paper: under the distributed scheduler with opportunistic containers,
// SDchecker surfaced containers that were allocated but never used —
// their RM-side states exist, but the NodeManager/executor-side states
// (Table I messages 13/14) are missing.  Spark had requested more
// containers than it launched; the finding was reported and confirmed.
#include "bench_common.hpp"

namespace {

using namespace sdc;

void experiment() {
  benchutil::print_header("Bug detection: allocated-but-never-used containers",
                          "paper §V-A (SPARK-21562)");
  harness::ScenarioConfig scenario;
  scenario.seed = 150;
  scenario.yarn.scheduler = yarn::SchedulerKind::kOpportunistic;
  int expected_surplus = 0;
  for (int i = 0; i < 20; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    plan.app.over_request_factor = 1.5;  // asks ceil(4*1.5)=6, launches 4
    expected_surplus += 2;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto out = benchutil::run_and_analyze(scenario);
  const auto findings =
      out.analysis.anomalies_of(checker::AnomalyType::kNeverUsedContainer);
  std::printf("  jobs: %zu (each requesting 6 containers, launching 4)\n",
              out.sim.jobs.size());
  std::printf("  expected never-used containers: %d\n", expected_surplus);
  std::printf("  SDchecker findings:             %zu\n", findings.size());
  std::printf("  detection %s\n",
              static_cast<int>(findings.size()) == expected_surplus
                  ? "EXACT"
                  : "MISMATCH");
  if (!findings.empty()) {
    std::printf("\n  sample finding:\n    [%s] %s: %s\n",
                std::string(checker::anomaly_type_name(findings[0]->type)).c_str(),
                findings[0]->entity.c_str(), findings[0]->detail.c_str());
  }
  // Cross-check against RM-side RELEASED transitions.
  std::size_t released = 0;
  for (const auto& line : out.sim.logs.lines("rm.log")) {
    if (line.find("to RELEASED") != std::string::npos) ++released;
  }
  std::printf("\n  RM log shows %zu ACQUIRED/ALLOCATED->RELEASED reclaims "
              "(consistent with the findings)\n",
              released);
}

void BM_AnomalyDetection(benchmark::State& state) {
  harness::ScenarioConfig scenario;
  scenario.seed = 151;
  scenario.yarn.scheduler = yarn::SchedulerKind::kOpportunistic;
  for (int i = 0; i < 10; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 9 * i);
    plan.app = workloads::make_tpch_query(1 + i, 2048, 4);
    plan.app.over_request_factor = 2.0;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  const auto sim = harness::run_scenario(scenario);
  for (auto _ : state) {
    const auto analysis = checker::SdChecker().analyze(sim.logs);
    benchmark::DoNotOptimize(analysis.anomalies.size());
  }
}
BENCHMARK(BM_AnomalyDetection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
