// End-to-end throughput bench for the post-mining analysis stage.
//
// Synthesizes an already-mined event vector (default 4000 applications,
// override with SDC_ANALYZE_BENCH_APPS) shaped like a busy cluster day:
// per-app RM/driver milestones, an AM container plus worker containers
// with their full NM/executor lifecycle, duplicate events that exercise
// the first-occurrence rule, and a sprinkle of unattributable lines.
// Two configurations run the same stage end to end (group + decompose +
// anomalies + aggregate):
//
//   serial    group_events into one ordered map, finalize inline
//   sharded   app-partitioned grouping on a pool, parallel per-app
//             decompose/anomaly, deterministic ordered merge
//
// The sharded stage must be an invisible optimization: before timing,
// both paths run once and their `analysis_json` exports are compared
// byte for byte — any difference (including a diverging event count)
// fails the bench, which is how CI gates the equivalence.  Prints apps/s
// and events/s per configuration and writes BENCH_analyze.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sdchecker/export.hpp"

namespace {

using namespace sdc;

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::size_t corpus_apps() {
  if (const char* env = std::getenv("SDC_ANALYZE_BENCH_APPS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 4000;
}

std::size_t bench_threads() {
  if (const char* env = std::getenv("SDC_ANALYZE_BENCH_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 8 : std::min<std::size_t>(8, hw);
}

void push(std::vector<checker::SchedEvent>& events, checker::EventKind kind,
          std::int64_t ts, const ApplicationId& app,
          std::optional<ContainerId> container = std::nullopt) {
  checker::SchedEvent event;
  event.kind = kind;
  event.ts_ms = ts;
  event.app = app;
  event.container = std::move(container);
  events.push_back(std::move(event));
}

/// The full milestone set of one application: Table-I app events, an AM
/// container, `workers` executor containers, plus repeats (an executor
/// logs "Got assigned task" for every task) so the min/count machinery
/// does real work.
void append_app(std::vector<checker::SchedEvent>& events, std::int32_t id,
                int workers) {
  using checker::EventKind;
  const ApplicationId app{kEpoch, id};
  const std::int64_t t0 = kEpoch + 200ll * id;
  push(events, EventKind::kAppSubmitted, t0, app);
  push(events, EventKind::kAppAccepted, t0 + 50, app);
  push(events, EventKind::kAttemptRegistered, t0 + 120, app);

  const ContainerId am{app, 1, 1};
  push(events, EventKind::kContainerAllocated, t0 + 60, app, am);
  push(events, EventKind::kContainerAcquired, t0 + 70, app, am);
  push(events, EventKind::kNmLocalizing, t0 + 80, app, am);
  push(events, EventKind::kNmScheduled, t0 + 95, app, am);
  push(events, EventKind::kNmRunning, t0 + 110, app, am);

  push(events, EventKind::kDriverFirstLog, t0 + 130, app);
  push(events, EventKind::kDriverRegister, t0 + 150, app);
  push(events, EventKind::kStartAllo, t0 + 160, app);
  push(events, EventKind::kEndAllo, t0 + 230, app);

  for (int w = 0; w < workers; ++w) {
    const ContainerId worker{app, 1, 2 + w};
    const std::int64_t tw = t0 + 170 + 7ll * w;
    push(events, EventKind::kContainerAllocated, tw, app, worker);
    push(events, EventKind::kContainerAcquired, tw + 5, app, worker);
    push(events, EventKind::kNmLocalizing, tw + 12, app, worker);
    push(events, EventKind::kNmScheduled, tw + 25, app, worker);
    push(events, EventKind::kNmRunning, tw + 40, app, worker);
    push(events, EventKind::kExecutorFirstLog, tw + 45, app, worker);
    push(events, EventKind::kExecutorFirstTask, tw + 70, app, worker);
    // Later tasks on the same executor: first occurrence must win.
    push(events, EventKind::kExecutorFirstTask, tw + 300, app, worker);
    push(events, EventKind::kExecutorFirstTask, tw + 900, app, worker);
    push(events, EventKind::kRmContainerCompleted, tw + 5000, app, worker);
  }
  push(events, EventKind::kAppFinished, t0 + 9000, app);
}

/// Events across all apps in global timestamp order — the arrival shape
/// the miner hands the grouping stage — with a few unattributable ones.
const std::vector<checker::SchedEvent>& corpus() {
  static const std::vector<checker::SchedEvent> events = [] {
    std::vector<checker::SchedEvent> out;
    const std::size_t apps = corpus_apps();
    for (std::size_t i = 1; i <= apps; ++i) {
      append_app(out, static_cast<std::int32_t>(i), 2 + static_cast<int>(i % 4));
    }
    for (int k = 0; k < 64; ++k) {
      checker::SchedEvent orphan;
      orphan.kind = checker::EventKind::kNmRunning;
      orphan.ts_ms = kEpoch + k;
      out.push_back(orphan);  // no app id: must count as unattributed
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const checker::SchedEvent& a,
                        const checker::SchedEvent& b) {
                       return a.ts_ms < b.ts_ms;
                     });
    return out;
  }();
  return events;
}

checker::AnalysisResult analyze_serial() {
  checker::GroupResult grouped = checker::group_events(corpus());
  checker::AnalysisResult result =
      checker::finalize_analysis(std::move(grouped.apps));
  result.events_unattributed = grouped.unattributed;
  return result;
}

checker::AnalysisResult analyze_sharded(std::size_t shards) {
  ThreadPool pool(shards);
  checker::ShardedGroupResult grouped =
      checker::group_events_sharded(corpus(), shards, pool);
  const std::size_t unattributed = grouped.unattributed;
  checker::AnalysisResult result =
      checker::finalize_analysis(std::move(grouped), pool);
  result.events_unattributed = unattributed;
  return result;
}

struct Variant {
  std::string name;
  std::size_t shards = 1;
  double seconds = 0;
};

double best_of(int reps, const std::function<void()>& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

void experiment() {
  benchutil::print_header("Analysis-stage throughput: serial vs "
                          "app-partitioned sharded",
                          "SDchecker scalability (not a paper figure)");
  const std::vector<checker::SchedEvent>& events = corpus();
  const std::size_t threads = bench_threads();
  const std::size_t apps = corpus_apps();
  std::printf("  corpus: %zu apps, %zu mined events; up to %zu threads\n",
              apps, events.size(), threads);

  // Equivalence gate, before any timing: the sharded stage must export
  // byte-identical JSON and agree on every event count.
  const checker::AnalysisResult serial = analyze_serial();
  const checker::AnalysisResult sharded = analyze_sharded(threads);
  const std::string serial_json = checker::analysis_json(serial);
  if (checker::analysis_json(sharded) != serial_json ||
      sharded.timelines.size() != serial.timelines.size() ||
      sharded.events_unattributed != serial.events_unattributed) {
    std::fprintf(stderr,
                 "FAIL: sharded analysis diverged from serial "
                 "(apps %zu vs %zu, unattributed %zu vs %zu)\n",
                 sharded.timelines.size(), serial.timelines.size(),
                 sharded.events_unattributed, serial.events_unattributed);
    std::exit(1);
  }
  std::printf("  equivalence: sharded(%zu) analysis_json identical to "
              "serial (%zu apps, %zu unattributed)\n",
              threads, serial.timelines.size(), serial.events_unattributed);

  const int reps = events.size() >= 200'000 ? 3 : 5;
  obs::MetricsRegistry::global().reset_values();
  std::vector<Variant> variants;
  variants.push_back({"serial", 1,
                      best_of(reps, [] { analyze_serial(); })});
  // Always time S=2..8 even when hardware_concurrency is lower: on a
  // small box the sharded path oversubscribes instead of silently
  // shrinking to serial-only, so every BENCH_analyze.json has the same
  // variant set and cross-machine comparisons line up.
  for (std::size_t shards = 2; shards <= 8; shards *= 2) {
    variants.push_back(
        {"sharded-" + std::to_string(shards), shards,
         best_of(reps, [shards] { analyze_sharded(shards); })});
  }

  json::Writer out;
  out.begin_object();
  out.field("bench", "analyze_throughput");
  out.field("apps", static_cast<std::int64_t>(apps));
  out.field("events", static_cast<std::int64_t>(events.size()));
  out.field("threads", static_cast<std::int64_t>(threads));
  out.field("hardware_concurrency",
            static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  out.field("equivalent", true);
  out.key("variants");
  out.begin_array();
  for (const Variant& v : variants) {
    const double aps = static_cast<double>(apps) / v.seconds;
    const double eps = static_cast<double>(events.size()) / v.seconds;
    std::printf("  %-12s %8.3f s   %10.0f apps/s   %12.0f events/s\n",
                v.name.c_str(), v.seconds, aps, eps);
    out.begin_object();
    out.field("name", v.name);
    out.field("shards", static_cast<std::int64_t>(v.shards));
    out.field("seconds", v.seconds);
    out.field("apps_per_s", aps);
    out.field("events_per_s", eps);
    out.end_object();
  }
  out.end_array();
  const double speedup = variants.front().seconds / variants.back().seconds;
  out.field("sharded_vs_serial_speedup", speedup);
  out.key("metrics");
  out.raw(obs::MetricsRegistry::global().snapshot().to_json());
  out.end_object();
  std::printf("  sharded (%zu shards) vs serial: %.2fx\n",
              variants.back().shards, speedup);

  std::ofstream json_file("BENCH_analyze.json");
  json_file << out.str() << '\n';
  std::printf("  wrote BENCH_analyze.json\n");
}

void BM_AnalyzeSharded(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::size_t apps = corpus_apps();
  for (auto _ : state) {
    if (shards <= 1) {
      benchmark::DoNotOptimize(analyze_serial().timelines.size());
    } else {
      benchmark::DoNotOptimize(analyze_sharded(shards).timelines.size());
    }
  }
  state.counters["apps/s"] = benchmark::Counter(
      static_cast<double>(apps * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
