// Ablation benches for the design decisions called out in DESIGN.md §5:
//
//   * parallel log mining — one shard per log file across a thread pool
//     (SDchecker-side scalability as clusters/log volumes grow)
//   * log4j line parsing throughput (hand-rolled vs the std::regex the
//     paper's description implies — we keep the regex variant here as the
//     baseline to justify the hand-rolled parser)
//   * discrete-event engine throughput (the simulator's own cost)
//   * per-stage hot-path kernels — the mining pipeline decomposed into
//     scan (newline split, per SWAR/SIMD backend), parse, pre-filter,
//     extract and merge, so a regression localizes to one stage
#include <algorithm>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/interner.hpp"
#include "common/simd.hpp"
#include "logging/log_view.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/parsed_line.hpp"
#include "simcore/engine.hpp"

namespace {

using namespace sdc;

const logging::LogBundle& big_bundle() {
  static const logging::LogBundle bundle = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 160;
    benchutil::add_tpch_trace(scenario, 300, 2048, 4);
    return harness::run_scenario(scenario).logs;
  }();
  return bundle;
}

/// The whole corpus as one newline-joined buffer — what `split_buffer`
/// sees after mmap.
const std::string& flat_text() {
  static const std::string text = [] {
    std::string out;
    const auto& bundle = big_bundle();
    for (const std::string& name : bundle.stream_names()) {
      for (const std::string& line : bundle.lines(name)) {
        out += line;
        out += '\n';
      }
    }
    return out;
  }();
  return text;
}

/// Pre-parsed corpus lines (the extract-stage input), with parse
/// failures dropped.
const std::vector<checker::ParsedLine>& parsed_corpus() {
  static const std::vector<checker::ParsedLine> parsed = [] {
    std::vector<checker::ParsedLine> out;
    const auto& bundle = big_bundle();
    for (const std::string& name : bundle.stream_names()) {
      for (const std::string& line : bundle.lines(name)) {
        if (auto p = checker::parse_line(line)) out.push_back(*p);
      }
    }
    return out;
  }();
  return parsed;
}

void experiment() {
  benchutil::print_header("Ablations: mining parallelism, parser, engine",
                          "DESIGN.md §5 (not a paper figure)");
  const auto& bundle = big_bundle();
  std::printf("  corpus: %zu streams, %zu lines\n", bundle.stream_count(),
              bundle.total_lines());
  std::printf("  (timings below, via google-benchmark)\n");
}

void BM_MineThreads(benchmark::State& state) {
  const auto& bundle = big_bundle();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    checker::LogMiner miner(checker::MinerOptions{threads});
    benchmark::DoNotOptimize(miner.mine(bundle).events.size());
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(big_bundle().total_lines() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- per-stage hot-path kernels ---------------------------------------------
// The mining pipeline, one stage per kernel: a throughput regression in
// `BM_MineThreads` localizes to scan, parse, pre-filter, extract or merge.

void BM_ScanStage(benchmark::State& state) {
  // Newline split over the flattened corpus — the `split_buffer` kernel —
  // under one scan backend (arg = ScanBackend enumerator).
  const auto backend = static_cast<simd::ScanBackend>(state.range(0));
  const auto available = simd::available_scan_backends();
  if (std::find(available.begin(), available.end(), backend) ==
      available.end()) {
    state.SkipWithError("backend not available on this host");
    return;
  }
  const std::string& text = flat_text();
  for (auto _ : state) {
    std::size_t lines = 0;
    for (std::size_t at = simd::find_byte(text, '\n', 0, backend);
         at != std::string_view::npos;
         at = simd::find_byte(text, '\n', at + 1, backend)) {
      ++lines;
    }
    benchmark::DoNotOptimize(lines);
  }
  state.SetLabel(std::string(simd::scan_backend_name(backend)));
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(text.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScanStage)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_ParseStage(benchmark::State& state) {
  // Line parse (timestamp + level + class + message) over the whole
  // corpus, pre-split so only `parse_line` is measured.
  const logging::LogView view = logging::LogView::from_buffer(flat_text());
  for (auto _ : state) {
    std::size_t parsed = 0;
    for (const std::string_view line : view.lines()) {
      if (checker::parse_line(line)) ++parsed;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(view.lines().size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParseStage)->Unit(benchmark::kMillisecond);

void BM_PrefilterStage(benchmark::State& state) {
  // The (message length) cheap-reject the extractor applies before any
  // class dispatch — how much of the corpus it discards for free.
  const auto& parsed = parsed_corpus();
  const std::size_t shortest = checker::min_rule_message_len();
  for (auto _ : state) {
    std::size_t skipped = 0;
    for (const checker::ParsedLine& line : parsed) {
      skipped += line.message.size() < shortest ? 1 : 0;
    }
    benchmark::DoNotOptimize(skipped);
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(parsed.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrefilterStage)->Unit(benchmark::kMillisecond);

void BM_ExtractStage(benchmark::State& state) {
  // Class dispatch + rule matching + id extraction into a columnar
  // batch, on pre-parsed lines (scan and parse excluded).
  const auto& parsed = parsed_corpus();
  auto interner = std::make_shared<StringInterner>();
  const std::uint32_t stream_id = interner->intern("bench.log");
  const std::shared_ptr<const StringInterner> pool = interner;
  for (auto _ : state) {
    checker::EventBatch batch(pool);
    std::size_t line_no = 0;
    for (const checker::ParsedLine& line : parsed) {
      checker::extract_event_into(line, stream_id, ++line_no, batch);
    }
    benchmark::DoNotOptimize(batch.size());
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(parsed.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExtractStage)->Unit(benchmark::kMillisecond);

void BM_MergeStage(benchmark::State& state) {
  // K-way merge of sorted per-chunk batches — the stitch stage.  Runs
  // are rebuilt by copy each iteration (merge consumes its input).
  const auto runs = [] {
    auto interner = std::make_shared<StringInterner>();
    const std::uint32_t stream_id = interner->intern("bench.log");
    const std::shared_ptr<const StringInterner> pool = interner;
    const auto& parsed = parsed_corpus();
    constexpr std::size_t kRuns = 8;
    std::vector<checker::EventBatch> out;
    for (std::size_t r = 0; r < kRuns; ++r) out.emplace_back(pool);
    const std::size_t chunk = (parsed.size() + kRuns - 1) / kRuns;
    std::size_t line_no = 0;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      checker::extract_event_into(parsed[i], stream_id, ++line_no,
                                  out[i / chunk]);
    }
    for (auto& run : out) run.sort();
    return out;
  }();
  std::size_t events = 0;
  for (const auto& run : runs) events += run.size();
  for (auto _ : state) {
    std::vector<checker::EventBatch> copies = runs;
    benchmark::DoNotOptimize(
        checker::merge_event_batches(std::move(copies)).size());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MergeStage)->Unit(benchmark::kMillisecond);

void BM_ParseLineHandRolled(benchmark::State& state) {
  const std::string line =
      "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::parse_line(line));
  }
}
BENCHMARK(BM_ParseLineHandRolled);

void BM_ParseLineStdRegex(benchmark::State& state) {
  // The baseline a regex-first implementation (as the paper describes)
  // would pay per line.
  static const std::regex pattern(
      R"((\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}) (\w+) +([\w.$]+): (.*))");
  const std::string line =
      "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
  for (auto _ : state) {
    std::smatch match;
    benchmark::DoNotOptimize(std::regex_match(line, match, pattern));
  }
}
BENCHMARK(BM_ParseLineStdRegex);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (int i = 0; i < 10'000; ++i) {
      engine.schedule_at(millis(i % 997), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["events/s"] = benchmark::Counter(
      10'000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineEventThroughput)->Unit(benchmark::kMillisecond);

void BM_EndToEndScenario(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 161;
    benchutil::add_tpch_trace(scenario, static_cast<std::int32_t>(state.range(0)),
                              2048, 4);
    benchmark::DoNotOptimize(harness::run_scenario(scenario).events_executed);
  }
}
BENCHMARK(BM_EndToEndScenario)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
