// Ablation benches for the design decisions called out in DESIGN.md §5:
//
//   * parallel log mining — one shard per log file across a thread pool
//     (SDchecker-side scalability as clusters/log volumes grow)
//   * log4j line parsing throughput (hand-rolled vs the std::regex the
//     paper's description implies — we keep the regex variant here as the
//     baseline to justify the hand-rolled parser)
//   * discrete-event engine throughput (the simulator's own cost)
#include <regex>

#include "bench_common.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/parsed_line.hpp"
#include "simcore/engine.hpp"

namespace {

using namespace sdc;

const logging::LogBundle& big_bundle() {
  static const logging::LogBundle bundle = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 160;
    benchutil::add_tpch_trace(scenario, 300, 2048, 4);
    return harness::run_scenario(scenario).logs;
  }();
  return bundle;
}

void experiment() {
  benchutil::print_header("Ablations: mining parallelism, parser, engine",
                          "DESIGN.md §5 (not a paper figure)");
  const auto& bundle = big_bundle();
  std::printf("  corpus: %zu streams, %zu lines\n", bundle.stream_count(),
              bundle.total_lines());
  std::printf("  (timings below, via google-benchmark)\n");
}

void BM_MineThreads(benchmark::State& state) {
  const auto& bundle = big_bundle();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    checker::LogMiner miner(checker::MinerOptions{threads});
    benchmark::DoNotOptimize(miner.mine(bundle).events.size());
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(big_bundle().total_lines() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ParseLineHandRolled(benchmark::State& state) {
  const std::string line =
      "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::parse_line(line));
  }
}
BENCHMARK(BM_ParseLineHandRolled);

void BM_ParseLineStdRegex(benchmark::State& state) {
  // The baseline a regex-first implementation (as the paper describes)
  // would pay per line.
  static const std::regex pattern(
      R"((\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}) (\w+) +([\w.$]+): (.*))");
  const std::string line =
      "2017-07-03 16:40:00,123 INFO  org.apache.hadoop.yarn.server."
      "resourcemanager.rmapp.RMAppImpl: application_1499100000000_0007 State "
      "change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
  for (auto _ : state) {
    std::smatch match;
    benchmark::DoNotOptimize(std::regex_match(line, match, pattern));
  }
}
BENCHMARK(BM_ParseLineStdRegex);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (int i = 0; i < 10'000; ++i) {
      engine.schedule_at(millis(i % 997), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["events/s"] = benchmark::Counter(
      10'000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineEventThroughput)->Unit(benchmark::kMillisecond);

void BM_EndToEndScenario(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 161;
    benchutil::add_tpch_trace(scenario, static_cast<std::int32_t>(state.range(0)),
                              2048, 4);
    benchmark::DoNotOptimize(harness::run_scenario(scenario).events_executed);
  }
}
BENCHMARK(BM_EndToEndScenario)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
