// E10/E11 — Figure 11: in-application delay anatomy.
//
//   (a) driver delay and executor delay for Spark wordcount vs Spark-SQL:
//       driver delays are nearly identical (~3 s — same SparkContext
//       code), executor delay is much longer for SQL (p95 9.5 s vs
//       6.0 s) because 8 TPC-H tables are opened (one RDD + broadcast
//       each) on the scheduling critical path.
//   (b) executor delay vs the number of opened files: opt (parallel init
//       via Scala Futures), x1 (8 files), x2 (16), x4 (32).  The
//       optimization buys ~2 s at the tail over x1.
#include "bench_common.hpp"

namespace {

using namespace sdc;

harness::ScenarioConfig trace_for(const spark::SparkAppConfig& prototype,
                                  std::uint64_t seed, int jobs = 70) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  trace::TraceConfig trace_config;
  trace_config.count = jobs;
  trace_config.mean_interarrival = seconds(6);
  trace_config.seed = seed + 1;
  for (const auto& submission : trace::generate_trace(trace_config)) {
    harness::SparkSubmissionPlan plan;
    plan.at = submission.at;
    plan.app = prototype;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  return scenario;
}

void part_a() {
  std::printf("  (a) wordcount vs Spark-SQL [paper: driver ~3s both; "
              "executor p95 6.0s (wc) vs 9.5s (sql)]\n");
  const auto wc_out =
      benchutil::run_and_analyze(trace_for(workloads::make_spark_wordcount(2048, 4), 100));
  const auto sql_out =
      benchutil::run_and_analyze(trace_for(workloads::make_tpch_query(7, 2048, 4), 101));
  benchutil::print_dist_row("wc driver", wc_out.analysis.aggregate.driver);
  benchutil::print_dist_row("sql driver", sql_out.analysis.aggregate.driver);
  benchutil::print_dist_row("wc executor", wc_out.analysis.aggregate.executor);
  benchutil::print_dist_row("sql executor", sql_out.analysis.aggregate.executor);
  std::printf("      driver medians differ by %.0fms; executor p95 gap = "
              "%.1fs\n",
              std::abs(wc_out.analysis.aggregate.driver.median() -
                       sql_out.analysis.aggregate.driver.median()) *
                  1000,
              sql_out.analysis.aggregate.executor.p95() -
                  wc_out.analysis.aggregate.executor.p95());
}

void part_b() {
  std::printf("\n  (b) executor delay vs opened files [paper: more files -> "
              "longer; opt saves ~2s at the tail vs x1]\n");
  struct Variant {
    const char* label;
    std::int32_t files;
    bool parallel;
  };
  const Variant variants[] = {
      {"opt (8 files, parallel)", 8, true},
      {"x1  (8 files)", 8, false},
      {"x2  (16 files)", 16, false},
      {"x4  (32 files)", 32, false},
  };
  SampleSet opt_exec;
  SampleSet x1_exec;
  for (const Variant& variant : variants) {
    spark::SparkAppConfig app = workloads::make_tpch_query(7, 2048, 4);
    app.files_opened = variant.files;
    app.parallel_init = variant.parallel;
    const auto out = benchutil::run_and_analyze(trace_for(app, 102));
    benchutil::print_dist_row(variant.label, out.analysis.aggregate.executor);
    if (variant.parallel) opt_exec = out.analysis.aggregate.executor;
    if (!variant.parallel && variant.files == 8)
      x1_exec = out.analysis.aggregate.executor;
  }
  std::printf("      opt tail saving vs x1: %.1fs at p95\n",
              x1_exec.p95() - opt_exec.p95());
}

void experiment() {
  benchutil::print_header("Figure 11: in-application delay",
                          "paper Fig. 11 (a)-(b), §IV-D");
  part_a();
  part_b();
}

void BM_UserInitModel(benchmark::State& state) {
  spark::SparkCostModel model;
  cluster::InterferenceModel idle;
  Rng rng(1);
  const bool parallel = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.user_init(
        static_cast<std::int32_t>(state.range(0)), parallel, idle, rng));
  }
}
BENCHMARK(BM_UserInitModel)->Args({8, 0})->Args({8, 1})->Args({32, 0});

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
