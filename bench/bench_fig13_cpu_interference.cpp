// E13 — Figure 13: impact of CPU interference (parallel Kmeans apps).
//
// Paper, at 16 Kmeans applications (4 executors x 16 vcores each):
//   (a) total delay p95 ~1.6x; unlike I/O interference, only the
//       in-application delay is severely affected
//   (b) executor delay up to ~2.4x
//   (c) driver delay up to ~2.9x
//   (d) localization only moderately affected (~1.4x median): the
//       NameNode RPC is CPU-bound but the transfer is I/O-dominated
#include "bench_common.hpp"

namespace {

using namespace sdc;

struct Row {
  int apps;
  SampleSet total, in_app, out_app, executor, driver, localization;
};

Row run_with_kmeans(int kmeans_apps) {
  harness::ScenarioConfig scenario;
  scenario.seed = 130;
  for (int i = 0; i < kmeans_apps; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = millis(200) * i;
    plan.app = workloads::make_kmeans(seconds(700));
    scenario.spark_jobs.push_back(std::move(plan));
  }
  benchutil::add_tpch_trace(scenario, 60, 2048, 4, seconds(40), seconds(8));
  scenario.extra_horizon = seconds(8 * 3600);
  const auto out = benchutil::run_and_analyze(scenario);
  Row row;
  row.apps = kmeans_apps;
  for (const auto& job : out.sim.jobs) {
    if (job.kind != spark::AppKind::kSparkSql) continue;
    const auto it = out.analysis.delays.find(job.app);
    if (it == out.analysis.delays.end()) continue;
    const checker::Delays& d = it->second;
    const auto push = [](SampleSet& set, const std::optional<std::int64_t>& v) {
      if (v) set.add(static_cast<double>(*v) / 1000.0);
    };
    push(row.total, d.total);
    push(row.in_app, d.in_app);
    push(row.out_app, d.out_app);
    push(row.executor, d.executor);
    push(row.driver, d.driver);
    for (const std::int64_t loc : d.worker_localizations()) {
      row.localization.add(static_cast<double>(loc) / 1000.0);
    }
  }
  return row;
}

void experiment() {
  benchutil::print_header("Figure 13: CPU interference (Kmeans apps)",
                          "paper Fig. 13 (a)-(d), §IV-E");
  std::vector<Row> rows;
  for (const int apps : {0, 4, 8, 16}) rows.push_back(run_with_kmeans(apps));
  const Row& base = rows.front();
  const Row& worst = rows.back();

  std::printf("  (a) default vs 16-Kmeans [paper: total p95 ~1.6x; in-app "
              "takes the hit, out-app barely moves]\n");
  benchutil::print_cdf("total default", base.total);
  benchutil::print_cdf("total 16-kmeans", worst.total);
  std::printf("      p95 slowdown: total %.2fx, in %.2fx, out %.2fx\n",
              worst.total.p95() / base.total.p95(),
              worst.in_app.p95() / base.in_app.p95(),
              worst.out_app.p95() / base.out_app.p95());

  std::printf("\n  (b) executor delay vs degree [paper @16: up to ~2.4x]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d kmeans", row.apps);
    benchutil::print_dist_row(label, row.executor);
  }

  std::printf("\n  (c) driver delay vs degree [paper @16: up to ~2.9x]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d kmeans", row.apps);
    benchutil::print_dist_row(label, row.driver);
  }
  std::printf("      @16 apps: driver median %.1fx, executor median %.1fx\n",
              worst.driver.median() / base.driver.median(),
              worst.executor.median() / base.executor.median());

  std::printf("\n  (d) localization delay vs degree [paper @16: only ~1.4x "
              "median]\n");
  for (const Row& row : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "%d kmeans", row.apps);
    benchutil::print_dist_row(label, row.localization);
  }
  std::printf("      @16 apps: localization median %.2fx (vs driver %.1fx) — "
              "in-app is far more CPU-sensitive\n",
              worst.localization.median() / base.localization.median(),
              worst.driver.median() / base.driver.median());
}

void BM_KmeansScenario(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 131;
    for (int i = 0; i < state.range(0); ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = millis(100) * i;
      plan.app = workloads::make_kmeans(seconds(60));
      scenario.spark_jobs.push_back(std::move(plan));
    }
    benchutil::add_tpch_trace(scenario, 4, 2048, 4, seconds(10));
    scenario.extra_horizon = seconds(3600);
    benchmark::DoNotOptimize(harness::run_scenario(scenario).jobs.size());
  }
}
BENCHMARK(BM_KmeansScenario)->Arg(0)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
