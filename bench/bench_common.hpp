// Shared utilities for the figure/table reproduction benches.
//
// Every bench binary follows the same shape: build a scenario (the
// workload mix of one paper experiment), simulate it, run SDchecker over
// the produced logs, print the figure's rows/series in text form, and
// finally hand control to google-benchmark for the timed kernels (mining
// throughput etc.).  Absolute values come from calibrated models; the
// *shape* (who wins, by what factor, where crossovers fall) is the
// reproduction target — see EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "trace/submission_trace.hpp"
#include "workloads/generators.hpp"
#include "workloads/tpch.hpp"

namespace sdc::benchutil {

struct RunOutput {
  harness::ScenarioResult sim;
  checker::AnalysisResult analysis;
};

/// Simulates the scenario and mines its logs.
inline RunOutput run_and_analyze(const harness::ScenarioConfig& config,
                                 std::size_t mine_threads = 2) {
  RunOutput out;
  out.sim = harness::run_scenario(config);
  out.analysis =
      checker::SdChecker({.threads = mine_threads}).analyze(out.sim.logs);
  return out;
}

/// Adds `count` TPC-H queries from the bursty trace generator.
inline void add_tpch_trace(harness::ScenarioConfig& config, std::int32_t count,
                           double input_mb, std::int32_t executors,
                           SimTime start = seconds(5),
                           SimDuration mean_gap = seconds(4)) {
  trace::TraceConfig trace_config;
  trace_config.count = count;
  trace_config.mean_interarrival = mean_gap;
  trace_config.start = start;
  trace_config.seed = config.seed + 1;
  for (const auto& submission : trace::generate_trace(trace_config)) {
    harness::SparkSubmissionPlan plan;
    plan.at = submission.at;
    plan.app = workloads::make_tpch_query(
        1 + submission.workload_index % workloads::kTpchQueryCount, input_mb,
        executors);
    config.spark_jobs.push_back(std::move(plan));
  }
}

/// Job runtimes (submission -> completion) in seconds, from ground truth.
inline SampleSet job_runtimes(const harness::ScenarioResult& sim) {
  SampleSet out;
  for (const auto& job : sim.jobs) {
    if (job.finished_at != kNoTime && job.submitted_at != kNoTime) {
      out.add(to_seconds(job.finished_at - job.submitted_at));
    }
  }
  return out;
}

/// Ratios of per-app SDchecker metrics: `num(app)/den(app)` for every app
/// where both are present.
template <typename NumFn, typename DenFn>
SampleSet ratio_samples(const checker::AnalysisResult& analysis,
                        const harness::ScenarioResult& sim, NumFn num,
                        DenFn den) {
  SampleSet out;
  for (const auto& job : sim.jobs) {
    const auto it = analysis.delays.find(job.app);
    if (it == analysis.delays.end()) continue;
    const auto n = num(it->second, job);
    const auto d = den(it->second, job);
    if (n && d && *d > 0) out.add(*n / *d);
  }
  return out;
}

// --- printing ---------------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    (reproduces %s)\n\n", paper_ref.c_str());
}

/// One distribution row: label | n | median | p95 | mean | stddev.
inline void print_dist_row(const std::string& label, const SampleSet& set,
                           const char* unit = "s") {
  if (set.empty()) {
    std::printf("  %-22s        (no samples)\n", label.c_str());
    return;
  }
  std::printf("  %-22s n=%-6zu median=%8.3f%s  p95=%8.3f%s  mean=%8.3f%s  "
              "std=%7.3f%s\n",
              label.c_str(), set.size(), set.median(), unit, set.p95(), unit,
              set.mean(), unit, set.stddev(), unit);
}

/// Compact CDF series (the paper's figures are CDF plots).
inline void print_cdf(const std::string& label, const SampleSet& set,
                      const char* unit = "s") {
  if (set.empty()) {
    std::printf("  CDF %-18s (no samples)\n", label.c_str());
    return;
  }
  std::printf("  CDF %-18s", label.c_str());
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf(" p%.0f=%.2f%s", p, set.percentile(p), unit);
  }
  std::printf("\n");
}

inline void print_note(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

/// Standard tail for every bench binary: print tables first, then run the
/// registered google-benchmark kernels.
inline int bench_main(int argc, char** argv, void (*experiment)()) {
  experiment();
  std::printf("\n--- timed kernels (google-benchmark) ---\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace sdc::benchutil
