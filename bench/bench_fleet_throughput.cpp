// End-to-end throughput bench for fleet mode (multi-corpus pipeline).
//
// Synthesizes F simulated corpora on disk (default 6, override with
// SDC_FLEET_BENCH_CORPORA; job count per corpus scales with index so
// corpus sizes are skewed like a real fleet) and runs two configurations
// over the same root:
//
//   sequential       one corpus at a time, standalone SdChecker
//                    analyze_directory (threads=1) — the pre-fleet
//                    baseline a user would script with a shell loop
//   fleet-pipelined  analyze_fleet: every corpus's mine chunks, stitch,
//                    sharded grouping and finalize interleaved on one
//                    shared pool, no per-corpus barrier
//
// The fleet path must be an invisible optimization per corpus: before
// any timing, each corpus's `analysis_json` out of the fleet run is
// compared byte for byte against a standalone analyze of the same
// directory — any difference fails the bench, which is how CI gates the
// equivalence.  Prints corpora/s and events/s per configuration and
// writes BENCH_fleet.json with the measured speedup vs the 3x target
// (reachable only when hardware_concurrency comfortably exceeds the
// per-corpus parallelism; the JSON records both so readers can judge).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/fleet.hpp"
#include "workloads/tpch.hpp"

namespace {

using namespace sdc;
namespace fs = std::filesystem;

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::size_t fleet_corpora() { return env_count("SDC_FLEET_BENCH_CORPORA", 6); }

std::size_t bench_threads() {
  if (const char* env = std::getenv("SDC_FLEET_BENCH_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 8 : std::min<std::size_t>(8, hw);
}

/// Writes one simulated corpus: `jobs` TPC-H queries plus a corrupt line
/// so diagnostics flow through the pipelined path too.
void write_corpus(const fs::path& dir, int jobs, std::uint64_t seed) {
  harness::ScenarioConfig scenario;
  scenario.seed = seed;
  for (int i = 0; i < jobs; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1 + 3 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 1024, 2 + i % 3);
    scenario.spark_jobs.push_back(std::move(plan));
  }
  logging::LogBundle logs = harness::run_scenario(scenario).logs;
  logs.append("rm.log", "no timestamp here: plain unparsable line");
  fs::create_directories(dir);
  logs.write_to_directory(dir);
}

/// Builds the fleet root once; corpus sizes are skewed (2..2+F jobs) so
/// the pipelined schedule has stragglers to overlap.
const fs::path& fleet_root() {
  static const fs::path root = [] {
    const fs::path dir =
        fs::temp_directory_path() /
        ("sdc_bench_fleet_" + std::to_string(static_cast<unsigned>(getpid())));
    fs::remove_all(dir);
    const std::size_t count = fleet_corpora();
    for (std::size_t i = 0; i < count; ++i) {
      write_corpus(dir / ("corpus" + std::to_string(i)),
                   2 + static_cast<int>(i),
                   1000 + static_cast<std::uint64_t>(i));
    }
    std::atexit([] {
      std::error_code ec;
      fs::remove_all(fleet_root(), ec);
    });
    return dir;
  }();
  return root;
}

std::size_t run_sequential(const std::vector<fs::path>& corpora) {
  std::size_t events = 0;
  for (const fs::path& dir : corpora) {
    events += checker::SdChecker({.threads = 1})
                  .analyze_directory(dir)
                  .events_total;
  }
  return events;
}

checker::FleetResult run_fleet(const std::vector<fs::path>& corpora,
                               std::size_t threads) {
  checker::FleetOptions options;
  options.threads = threads;
  return checker::analyze_fleet(corpora, options);
}

struct Variant {
  std::string name;
  std::size_t threads = 1;
  double seconds = 0;
};

double best_of(int reps, const std::function<void()>& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

void experiment() {
  benchutil::print_header(
      "Fleet throughput: sequential per-corpus analyze vs pipelined "
      "multi-corpus pool",
      "SDchecker scalability (not a paper figure)");
  const std::vector<fs::path> corpora = checker::discover_corpora(fleet_root());
  const std::size_t threads = bench_threads();

  // Equivalence gate, before any timing: every corpus out of the fleet
  // pipeline must export byte-identical JSON to a standalone analyze.
  const checker::FleetResult fleet = run_fleet(corpora, threads);
  std::uint64_t events = 0;
  std::uint64_t lines = 0;
  for (const checker::CorpusResult& corpus : fleet.corpora) {
    if (!corpus.error.empty()) {
      std::fprintf(stderr, "FAIL: corpus %s errored: %s\n",
                   corpus.name.c_str(), corpus.error.c_str());
      std::exit(1);
    }
    const checker::AnalysisResult standalone =
        checker::SdChecker().analyze_directory(corpus.dir);
    if (corpus.analysis_json != checker::analysis_json(standalone)) {
      std::fprintf(stderr,
                   "FAIL: fleet analysis_json for %s diverged from "
                   "standalone analyze\n",
                   corpus.name.c_str());
      std::exit(1);
    }
    events += corpus.events;
    lines += corpus.lines;
  }
  std::printf("  corpus root: %zu corpora, %llu lines, %llu events; "
              "%zu threads\n",
              corpora.size(), static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(events), threads);
  std::printf("  equivalence: fleet(%zu) analysis_json identical to "
              "standalone analyze for all %zu corpora\n",
              threads, corpora.size());

  const int reps = 3;
  obs::MetricsRegistry::global().reset_values();
  std::vector<Variant> variants;
  variants.push_back({"sequential", 1, best_of(reps, [&corpora] {
                        run_sequential(corpora);
                      })});
  variants.push_back({"fleet-pipelined", threads,
                      best_of(reps, [&corpora, threads] {
                        run_fleet(corpora, threads);
                      })});

  json::Writer out;
  out.begin_object();
  out.field("bench", "fleet_throughput");
  out.field("corpora", static_cast<std::int64_t>(corpora.size()));
  out.field("lines", static_cast<std::int64_t>(lines));
  out.field("events", static_cast<std::int64_t>(events));
  out.field("threads", static_cast<std::int64_t>(threads));
  out.field("hardware_concurrency",
            static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  out.field("equivalent", true);
  out.key("variants");
  out.begin_array();
  for (const Variant& v : variants) {
    const double cps = static_cast<double>(corpora.size()) / v.seconds;
    const double eps = static_cast<double>(events) / v.seconds;
    std::printf("  %-16s %8.3f s   %8.2f corpora/s   %12.0f events/s\n",
                v.name.c_str(), v.seconds, cps, eps);
    out.begin_object();
    out.field("name", v.name);
    out.field("threads", static_cast<std::int64_t>(v.threads));
    out.field("seconds", v.seconds);
    out.field("corpora_per_s", cps);
    out.field("events_per_s", eps);
    out.end_object();
  }
  out.end_array();
  const double speedup = variants.front().seconds / variants.back().seconds;
  out.field("fleet_vs_sequential_speedup", speedup);
  out.field("target_speedup", 3.0);
  out.field("target_reached", speedup >= 3.0);
  out.key("metrics");
  out.raw(obs::MetricsRegistry::global().snapshot().to_json());
  out.end_object();
  std::printf("  fleet (%zu threads) vs sequential: %.2fx (target 3x %s)\n",
              threads, speedup,
              speedup >= 3.0 ? "reached" : "not reached on this host");

  std::ofstream json_file("BENCH_fleet.json");
  json_file << out.str() << '\n';
  std::printf("  wrote BENCH_fleet.json\n");
}

void BM_Fleet(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::vector<fs::path> corpora = checker::discover_corpora(fleet_root());
  for (auto _ : state) {
    if (threads <= 1) {
      benchmark::DoNotOptimize(run_sequential(corpora));
    } else {
      benchmark::DoNotOptimize(run_fleet(corpora, threads).corpora.size());
    }
  }
  state.counters["corpora/s"] = benchmark::Counter(
      static_cast<double>(corpora.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fleet)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
