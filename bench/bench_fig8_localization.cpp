// E7 — Figure 8: impact of the localized file size.
//
// Paper: extra files shipped with `spark-submit -f` are localized to
// every executor container on top of the ~500 MB default package.
// (a) total delay deteriorates severely with the localized size;
// (b) localization delay: ~500 ms for the 0.5 GB default, ~23 s at 8 GB.
// Some 8 GB-run localizations still finish <1 s — those are *driver*
// (AM) localizations, which only ship the default package.
#include "bench_common.hpp"

namespace {

using namespace sdc;

void experiment() {
  benchutil::print_header("Figure 8: scheduling delay vs localized file size",
                          "paper Fig. 8 (a)-(b), §IV-C");
  struct Point {
    const char* label;
    double extra_mb;  // on top of the 500 MB default package
  };
  const Point points[] = {
      {"0.5GB", 0},
      {"2GB", 1536},
      {"4GB", 3584},
      {"8GB", 7680},
  };
  struct Row {
    const char* label;
    SampleSet total;
    SampleSet worker_localization;
    SampleSet am_localization;
  };
  std::vector<Row> rows;
  for (const Point& point : points) {
    harness::ScenarioConfig scenario;
    scenario.seed = 90;
    trace::TraceConfig trace_config;
    trace_config.count = 50;
    trace_config.mean_interarrival = seconds(8);
    trace_config.seed = 91;
    for (const auto& submission : trace::generate_trace(trace_config)) {
      harness::SparkSubmissionPlan plan;
      plan.at = submission.at;
      plan.app = workloads::make_tpch_query(
          1 + submission.workload_index % 22, 2048, 4);
      plan.app.extra_localized_mb = point.extra_mb;
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    Row row;
    row.label = point.label;
    row.total = out.analysis.aggregate.total;
    row.worker_localization = out.analysis.aggregate.localization;
    for (const auto& [app, delays] : out.analysis.delays) {
      for (const checker::ContainerDelays& c : delays.containers) {
        if (c.is_am && c.localization) {
          row.am_localization.add(static_cast<double>(*c.localization) /
                                  1000.0);
        }
      }
    }
    rows.push_back(std::move(row));
  }

  std::printf("  (a) total scheduling delay [paper: severely deteriorated "
              "for large localized files]\n");
  for (const Row& row : rows) benchutil::print_cdf(row.label, row.total);

  std::printf("\n  (b) localization delay [paper: ~0.5s at 0.5GB, ~23s at "
              "8GB; <1s stragglers are driver localizations]\n");
  for (const Row& row : rows) {
    benchutil::print_dist_row(std::string(row.label) + " executor",
                              row.worker_localization);
  }
  benchutil::print_dist_row("driver (any size)", rows.back().am_localization);
}

void BM_LocalizationHeavyJob(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 92;
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1);
    plan.app = workloads::make_tpch_query(1, 2048, 4);
    plan.app.extra_localized_mb = static_cast<double>(state.range(0));
    scenario.spark_jobs.push_back(std::move(plan));
    benchmark::DoNotOptimize(harness::run_scenario(scenario).jobs.size());
  }
}
BENCHMARK(BM_LocalizationHeavyJob)->Arg(0)->Arg(7680)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
