// Headline mining-throughput bench for the zero-copy sharded pipeline.
//
// Synthesizes a multi-stream log corpus (default 1M lines, override with
// SDC_MINER_BENCH_LINES) shaped like a real collection run: one dominant
// RM stream — every application's state machine logs there — plus NM,
// driver and executor streams.  Three pipeline configurations mine the
// same on-disk corpus end to end (read + mine):
//
//   serial             threads=1, getline-based LogBundle read
//   per-stream         threads=N, per-file parallelism only (the RM log
//                      serializes the run — the pre-sharding behaviour)
//   sharded zero-copy  threads=N, mmap-backed BundleView, intra-stream
//                      chunks merged by runs
//
// Prints MB/s and lines/s per configuration and writes BENCH_miner.json
// so the trajectory is tracked across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "logging/log_view.hpp"
#include "logging/timestamp.hpp"
#include "obs/metrics.hpp"
#include "sdchecker/miner.hpp"

namespace {

using namespace sdc;

constexpr std::int64_t kEpoch = 1'499'100'000'000;

std::size_t corpus_lines() {
  if (const char* env = std::getenv("SDC_MINER_BENCH_LINES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1'000'000;
}

std::size_t bench_threads() {
  if (const char* env = std::getenv("SDC_MINER_BENCH_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 8 : std::min<std::size_t>(8, hw);
}

std::string app_id(int app) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "application_1499100000000_%04d", app);
  return buf;
}

std::string container_id(int app, int container) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "container_1499100000000_%04d_01_%06d", app,
                container);
  return buf;
}

/// One dominant RM stream (~70% of lines), 8 NM streams, and paired
/// driver/executor streams per app — the paper's collection shape.
logging::LogBundle make_corpus(std::size_t total_lines) {
  logging::LogBundle bundle;
  const auto stamp = [](std::int64_t offset_ms) {
    return logging::format_epoch_ms(kEpoch + offset_ms);
  };
  const std::size_t rm_quota = total_lines * 7 / 10;
  const std::size_t nm_quota = total_lines * 2 / 10;
  const std::size_t instance_quota = total_lines - rm_quota - nm_quota;

  // RM: per-app state machine transitions plus scheduler noise.
  std::size_t emitted = 0;
  std::int64_t t = 0;
  const std::string rm_app =
      "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
  const std::string rm_container =
      "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer."
      "RMContainerImpl";
  const std::string rm_client =
      "org.apache.hadoop.yarn.server.resourcemanager.ClientRMService";
  for (int app = 1; emitted < rm_quota; ++app) {
    bundle.append("rm.log", stamp(t) + " INFO  " + rm_app + ": " + app_id(app) +
                                " State change from NEW_SAVING to SUBMITTED "
                                "on event = APP_NEW_SAVED");
    bundle.append("rm.log", stamp(t + 40) + " INFO  " + rm_app + ": " +
                                app_id(app) +
                                " State change from SUBMITTED to ACCEPTED on "
                                "event = APP_ACCEPTED");
    emitted += 2;
    for (int c = 1; c <= 3 && emitted < rm_quota; ++c) {
      const std::string cid = container_id(app, c);
      bundle.append("rm.log", stamp(t + 100 + c) + " INFO  " + rm_container +
                                  ": " + cid +
                                  " Container Transitioned from NEW to "
                                  "ALLOCATED");
      bundle.append("rm.log", stamp(t + 200 + c) + " INFO  " + rm_container +
                                  ": " + cid +
                                  " Container Transitioned from ALLOCATED to "
                                  "ACQUIRED");
      emitted += 2;
    }
    // Scheduler noise dominates real RM logs: parseable, non-Table-I.
    for (int k = 0; k < 24 && emitted < rm_quota; ++k, ++emitted) {
      bundle.append("rm.log", stamp(t + 300 + k) + " INFO  " + rm_client +
                                  ": Allocated new applicationId: " +
                                  std::to_string(app));
    }
    t += 400;
  }

  // NMs: container lifecycle transitions plus localization noise.
  const std::string nm_container =
      "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
      "ContainerImpl";
  const std::string nm_local =
      "org.apache.hadoop.yarn.server.nodemanager.containermanager."
      "localizer.ResourceLocalizationService";
  emitted = 0;
  t = 0;
  for (int app = 1; emitted < nm_quota; ++app) {
    for (int c = 1; c <= 3 && emitted < nm_quota; ++c) {
      const std::string node = "nm-node0" + std::to_string((app + c) % 8 + 1) +
                               ".cluster.log";
      const std::string cid = container_id(app, c);
      bundle.append(node, stamp(t) + " INFO  " + nm_container + ": Container " +
                              cid + " transitioned from NEW to LOCALIZING");
      bundle.append(node, stamp(t + 150) + " INFO  " + nm_container +
                              ": Container " + cid +
                              " transitioned from LOCALIZING to RUNNING");
      emitted += 2;
      for (int k = 0; k < 6 && emitted < nm_quota; ++k, ++emitted) {
        bundle.append(node, stamp(t + 50 + k) + " INFO  " + nm_local +
                                ": Downloading public resource " +
                                std::to_string(k));
      }
    }
    t += 500;
  }

  // Driver + executor instance logs.  A collection run holds tens of
  // application instances (not thousands), so cap the file pool and
  // grow the per-file noise with the corpus instead — otherwise per-file
  // open/read overhead swamps the read-path measurement.
  const std::string am = "org.apache.spark.deploy.yarn.ApplicationMaster";
  const std::string ctx = "org.apache.spark.SparkContext";
  const std::string backend =
      "org.apache.spark.executor.CoarseGrainedExecutorBackend";
  constexpr int kInstanceApps = 24;
  emitted = 0;
  for (int app = 1; app <= kInstanceApps && emitted < instance_quota; ++app) {
    const std::size_t app_quota =
        std::min(instance_quota - emitted,
                 (instance_quota + kInstanceApps - 1) / kInstanceApps);
    const std::size_t app_end = emitted + app_quota;
    t = 1000 * app;
    const std::string driver = "driver-" + app_id(app) + ".log";
    bundle.append(driver, stamp(t) + " INFO  " + am +
                              ": ApplicationAttemptId: appattempt_"
                              "1499100000000_" +
                              std::to_string(app) + "_000001");
    bundle.append(driver, stamp(t + 100) + " INFO  " + am +
                              ": Registering the ApplicationMaster");
    emitted += 2;
    // ~60% of the app's quota is driver stage chatter...
    for (std::size_t k = 0; k < app_quota * 6 / 10 && emitted < app_end;
         ++k, ++emitted) {
      bundle.append(driver, stamp(t + 200 + static_cast<std::int64_t>(k)) +
                                " INFO  " + ctx + ": Submitted stage " +
                                std::to_string(k));
    }
    // ...the rest splits across two executor logs.
    for (int c = 2; c <= 3 && emitted < app_end; ++c) {
      const std::string exec = "executor-" + container_id(app, c) + ".log";
      bundle.append(exec, stamp(t + 300) + " INFO  " + backend +
                              ": Connecting to driver for container " +
                              container_id(app, c));
      bundle.append(exec, stamp(t + 900) + " INFO  " + backend +
                              ": Got assigned task 0");
      emitted += 2;
      for (std::size_t k = 0; emitted < app_end && k < app_quota / 5;
           ++k, ++emitted) {
        bundle.append(exec, stamp(t + 1000 + static_cast<std::int64_t>(k)) +
                                " INFO  " + backend + ": Finished task " +
                                std::to_string(k));
      }
    }
  }
  return bundle;
}

struct Variant {
  std::string name;
  double seconds = 0;
  std::size_t events = 0;
};

/// Element-wise serial-vs-sharded equivalence: every mined event row and
/// every diagnostic must match, not just the counts.  This is the smoke
/// gate CI relies on (`"equivalent":true` in BENCH_miner.json).
bool results_equivalent(const checker::MineResult& serial,
                        const checker::MineResult& sharded) {
  if (serial.events.size() != sharded.events.size()) {
    std::printf("  DIVERGENCE: event counts %zu vs %zu\n", serial.events.size(),
                sharded.events.size());
    return false;
  }
  for (std::size_t i = 0; i < serial.events.size(); ++i) {
    const auto a = serial.events[i];
    const auto b = sharded.events[i];
    if (a.kind != b.kind || a.ts_ms != b.ts_ms || a.app != b.app ||
        a.container != b.container || a.stream != b.stream ||
        a.line_no != b.line_no) {
      std::printf("  DIVERGENCE: event %zu differs (line %zu vs %zu)\n", i,
                  a.line_no, b.line_no);
      return false;
    }
  }
  if (serial.diagnostics.size() != sharded.diagnostics.size()) {
    std::printf("  DIVERGENCE: diagnostic counts %zu vs %zu\n",
                serial.diagnostics.size(), sharded.diagnostics.size());
    return false;
  }
  for (std::size_t i = 0; i < serial.diagnostics.size(); ++i) {
    const auto& a = serial.diagnostics[i];
    const auto& b = sharded.diagnostics[i];
    if (a.kind != b.kind || a.stream != b.stream || a.line_no != b.line_no ||
        a.count != b.count || a.detail != b.detail) {
      std::printf("  DIVERGENCE: diagnostic %zu differs\n", i);
      return false;
    }
  }
  return serial.lines_total == sharded.lines_total &&
         serial.lines_unparsed == sharded.lines_unparsed;
}

double best_of(int reps, const std::function<std::size_t()>& run,
               std::size_t& events_out) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    events_out = run();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

// Corpus on disk, shared by the experiment and the timed kernels.
const std::filesystem::path& corpus_dir() {
  static const std::filesystem::path dir = [] {
    const auto path =
        std::filesystem::temp_directory_path() / "sdc_miner_bench_corpus";
    std::filesystem::remove_all(path);
    make_corpus(corpus_lines()).write_to_directory(path);
    return path;
  }();
  return dir;
}

void experiment() {
  benchutil::print_header("Mining throughput: serial vs per-stream vs "
                          "sharded zero-copy",
                          "SDchecker scalability (not a paper figure)");
  const auto& dir = corpus_dir();
  const std::size_t threads = bench_threads();
  const logging::BundleView probe = logging::BundleView::read_from_directory(dir);
  const std::size_t lines = probe.total_lines();
  const std::size_t bytes = probe.total_bytes();
  std::printf("  corpus: %zu streams, %zu lines, %.1f MB (dominant rm.log: "
              "%zu lines); %zu threads\n",
              probe.stream_count(), lines,
              static_cast<double>(bytes) / 1e6,
              probe.stream("rm.log").line_count(), threads);

  const int reps = lines >= 500'000 ? 3 : 5;
  // Zero the pipeline instruments so the snapshot written alongside the
  // timings covers exactly the measured work.
  obs::MetricsRegistry::global().reset_values();
  std::vector<Variant> variants;
  {
    Variant v{"serial", 0, 0};
    v.seconds = best_of(reps, [&] {
      checker::LogMiner miner(checker::MinerOptions{1, 0});
      return miner.mine(logging::LogBundle::read_from_directory(dir))
          .events.size();
    }, v.events);
    variants.push_back(v);
  }
  {
    Variant v{"per-stream", 0, 0};
    v.seconds = best_of(reps, [&] {
      checker::LogMiner miner(checker::MinerOptions{threads, 0});
      return miner.mine(logging::LogBundle::read_from_directory(dir))
          .events.size();
    }, v.events);
    variants.push_back(v);
  }
  {
    Variant v{"sharded-zero-copy", 0, 0};
    v.seconds = best_of(reps, [&] {
      checker::LogMiner miner(checker::MinerOptions{threads});
      return miner.mine_directory(dir).events.size();
    }, v.events);
    variants.push_back(v);
  }

  json::Writer out;
  out.begin_object();
  out.field("bench", "miner_throughput");
  out.field("lines", static_cast<std::int64_t>(lines));
  out.field("bytes", static_cast<std::int64_t>(bytes));
  out.field("threads", static_cast<std::int64_t>(threads));
  out.field("hardware_concurrency",
            static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  out.key("variants");
  out.begin_array();
  for (const Variant& v : variants) {
    const double lps = static_cast<double>(lines) / v.seconds;
    const double mbps = static_cast<double>(bytes) / 1e6 / v.seconds;
    std::printf("  %-18s %8.3f s   %10.0f lines/s   %8.1f MB/s   "
                "(%zu events)\n",
                v.name.c_str(), v.seconds, lps, mbps, v.events);
    out.begin_object();
    out.field("name", v.name);
    out.field("seconds", v.seconds);
    out.field("lines_per_s", lps);
    out.field("mb_per_s", mbps);
    out.field("events", static_cast<std::int64_t>(v.events));
    out.end_object();
  }
  out.end_array();
  const double speedup = variants.front().seconds / variants.back().seconds;
  out.field("sharded_vs_serial_speedup", speedup);

  // Untimed equivalence pass: the serial getline pipeline and the sharded
  // zero-copy pipeline must produce identical events and diagnostics.
  const checker::MineResult serial_result =
      checker::LogMiner(checker::MinerOptions{1, 0})
          .mine(logging::LogBundle::read_from_directory(dir));
  const checker::MineResult sharded_result =
      checker::LogMiner(checker::MinerOptions{threads}).mine_directory(dir);
  const bool equivalent = results_equivalent(serial_result, sharded_result);
  out.field("equivalent", equivalent);
  out.key("metrics");
  out.raw(obs::MetricsRegistry::global().snapshot().to_json());
  out.end_object();
  std::printf("  sharded zero-copy vs serial: %.2fx  (equivalent: %s)\n",
              speedup, equivalent ? "yes" : "NO");

  std::ofstream json_file("BENCH_miner.json");
  json_file << out.str() << '\n';
  std::printf("  wrote BENCH_miner.json\n");
  if (!equivalent) {
    std::printf("  FATAL: sharded pipeline diverged from serial reference\n");
    std::exit(1);
  }
}

void BM_MineSharded(benchmark::State& state) {
  const auto& dir = corpus_dir();
  const auto threads = static_cast<std::size_t>(state.range(0));
  const logging::BundleView view = logging::BundleView::read_from_directory(dir);
  for (auto _ : state) {
    checker::LogMiner miner(checker::MinerOptions{threads});
    benchmark::DoNotOptimize(miner.mine(view).events.size());
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(view.total_lines() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MineSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MinePerStreamOnly(benchmark::State& state) {
  const auto& dir = corpus_dir();
  const auto threads = static_cast<std::size_t>(state.range(0));
  const logging::BundleView view = logging::BundleView::read_from_directory(dir);
  for (auto _ : state) {
    checker::LogMiner miner(checker::MinerOptions{threads, 0});
    benchmark::DoNotOptimize(miner.mine(view).events.size());
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(view.total_lines() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MinePerStreamOnly)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
