// Ablations of the paper's proposed optimizations (Table III, §V-B) —
// each implemented in this codebase and measured here:
//
//   1. Localization caching service (the paper's future work): a
//      node-local dedicated tier serving repeated packages, immune to
//      cluster I/O interference.  Measured under heavy dfsIO load.
//   2. JVM reuse for recurring applications: pre-warmed JVMs cut the
//      launch delay and the warm-up share of driver/executor init.
//   3. Heartbeat-frequency trade-off: faster AM heartbeats shrink the
//      acquisition delay (at the cost of more RPC traffic).
#include "bench_common.hpp"

namespace {

using namespace sdc;

harness::ScenarioConfig victims_under_io(bool with_cache) {
  harness::ScenarioConfig scenario;
  scenario.seed = 170;
  scenario.yarn.enable_localization_cache = with_cache;
  scenario.extra_horizon = seconds(8 * 3600);
  harness::MrSubmissionPlan dfsio;
  dfsio.at = 0;
  dfsio.app = workloads::make_dfsio(100, seconds(700));
  scenario.mr_jobs.push_back(std::move(dfsio));
  benchutil::add_tpch_trace(scenario, 50, 2048, 4, seconds(40), seconds(8));
  return scenario;
}

void part_cache() {
  std::printf("  1. localization caching service, under 100 dfsIO maps\n");
  for (const bool with_cache : {false, true}) {
    const auto out = benchutil::run_and_analyze(victims_under_io(with_cache));
    // Victims only.
    SampleSet localization;
    SampleSet total;
    for (const auto& job : out.sim.jobs) {
      if (job.kind != spark::AppKind::kSparkSql) continue;
      const auto it = out.analysis.delays.find(job.app);
      if (it == out.analysis.delays.end()) continue;
      if (it->second.total) {
        total.add(static_cast<double>(*it->second.total) / 1000.0);
      }
      for (const std::int64_t loc : it->second.worker_localizations()) {
        localization.add(static_cast<double>(loc) / 1000.0);
      }
    }
    benchutil::print_dist_row(
        with_cache ? "with cache: localization" : "no cache:   localization",
        localization);
    benchutil::print_dist_row(
        with_cache ? "with cache: total" : "no cache:   total", total);
  }
  benchutil::print_note(
      "every executor ships the same Spark package, so after the first "
      "miss per node the cache serves localization in ~0.3s regardless of "
      "the dfsIO pressure");
}

void part_jvm_reuse() {
  std::printf("\n  2. JVM reuse (recurring applications)\n");
  for (const bool reuse : {false, true}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 171;
    trace::TraceConfig trace_config;
    trace_config.count = 60;
    trace_config.mean_interarrival = seconds(6);
    trace_config.seed = 172;
    for (const auto& submission : trace::generate_trace(trace_config)) {
      harness::SparkSubmissionPlan plan;
      plan.at = submission.at;
      plan.app = workloads::make_tpch_query(
          1 + submission.workload_index % 22, 2048, 4);
      plan.app.jvm_reuse = reuse;
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    const auto& agg = out.analysis.aggregate;
    std::printf("    %-10s total median=%6.2fs p95=%6.2fs | driver=%5.2fs | "
                "launching=%5.2fs | in-app=%6.2fs\n",
                reuse ? "jvm-reuse" : "default", agg.total.median(),
                agg.total.p95(), agg.driver.median(), agg.launching.median(),
                agg.in_app.median());
  }
  benchutil::print_note(
      "JVM warm-up is ~30% of short-job runtime per the paper's [27]; "
      "reuse removes most of the launch + init warm-up share");
}

void part_heartbeat() {
  std::printf("\n  3. AM heartbeat interval trade-off (acquisition delay)\n");
  for (const std::int64_t interval_ms : {100, 250, 500, 1000, 2000}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 173;
    trace::TraceConfig trace_config;
    trace_config.count = 40;
    trace_config.mean_interarrival = seconds(6);
    trace_config.seed = 174;
    for (const auto& submission : trace::generate_trace(trace_config)) {
      harness::SparkSubmissionPlan plan;
      plan.at = submission.at;
      plan.app = workloads::make_tpch_query(
          1 + submission.workload_index % 22, 2048, 4);
      plan.app.am_heartbeat = millis(interval_ms);
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    const auto& agg = out.analysis.aggregate;
    char label[48];
    std::snprintf(label, sizeof(label), "heartbeat=%lldms",
                  static_cast<long long>(interval_ms));
    std::printf("    %-18s acquisition median=%6.3fs p95=%6.3fs | "
                "alloc median=%6.2fs | total median=%6.2fs\n",
                label, agg.acquisition.median(), agg.acquisition.p95(),
                agg.alloc.median(), agg.total.median());
  }
  benchutil::print_note(
      "acquisition stays capped by the heartbeat interval (Fig. 7-c); "
      "faster heartbeats buy latency at the price of RPC load");
}

void part_sampling() {
  std::printf("\n  4. Sparrow-style probing vs pure random placement "
              "(distributed scheduler, busy cluster)\n");
  for (const auto kind : {yarn::SchedulerKind::kOpportunistic,
                          yarn::SchedulerKind::kSampling}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 175;
    scenario.yarn.scheduler = kind;
    scenario.yarn.sampling_probe_width = 2;
    scenario.extra_horizon = seconds(8 * 3600);
    harness::MrSubmissionPlan load;
    load.at = 0;
    load.app =
        workloads::make_mr_wordcount_for_load(0.94, 25 * 32, seconds(80));
    scenario.mr_jobs.push_back(std::move(load));
    for (int i = 0; i < 10; ++i) {
      harness::SparkSubmissionPlan victim;
      victim.at = seconds(20 + 6 * i);
      victim.app = workloads::make_tpch_query(1 + i, 2048, 4);
      victim.app.name = "victim-" + victim.app.name;
      scenario.spark_jobs.push_back(std::move(victim));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    SampleSet queuing;
    for (const auto& job : out.sim.jobs) {
      if (job.name.rfind("victim-", 0) != 0) continue;
      const auto it = out.analysis.delays.find(job.app);
      if (it == out.analysis.delays.end()) continue;
      for (const std::int64_t q : it->second.worker_queuings()) {
        queuing.add(static_cast<double>(q) / 1000.0);
      }
    }
    benchutil::print_dist_row(kind == yarn::SchedulerKind::kSampling
                                  ? "probe-2 queuing"
                                  : "random  queuing",
                              queuing);
  }
  benchutil::print_note(
      "power-of-two probing (Sparrow [13]) trims the random-placement "
      "queuing tail the paper measures in Fig. 7-b, without a global view");
}

void part_locality() {
  std::printf("\n  5. delay-scheduling locality fast path (allocation "
              "delay vs the calibrated default)\n");
  for (const bool fast_path : {false, true}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 176;
    scenario.yarn.locality_fast_path = fast_path;
    benchutil::add_tpch_trace(scenario, 50, 2048, 4, seconds(5), seconds(6));
    const auto out = benchutil::run_and_analyze(scenario);
    benchutil::print_dist_row(
        fast_path ? "fast path: alloc" : "default:   alloc",
        out.analysis.aggregate.alloc);
    benchutil::print_dist_row(
        fast_path ? "fast path: total" : "default:   total",
        out.analysis.aggregate.total);
  }
  benchutil::print_note(
      "granting on a replica-holding node's heartbeat removes most of the "
      "locality wait; the paper's measured allocation delays (Fig. 7-a) "
      "match the default slow path");
}

void experiment() {
  benchutil::print_header("Proposed-optimization ablations",
                          "paper Table III / §V-B (implemented future work)");
  part_cache();
  part_jvm_reuse();
  part_heartbeat();
  part_sampling();
  part_locality();
}

void BM_LocalizationCache(benchmark::State& state) {
  yarn::LocalizationCache cache;
  int i = 0;
  for (auto _ : state) {
    const std::string key = "pkg-" + std::to_string(i++ % 64);
    if (!cache.lookup(key)) cache.insert(key, 500.0);
    benchmark::DoNotOptimize(cache.entries());
  }
}
BENCHMARK(BM_LocalizationCache);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
