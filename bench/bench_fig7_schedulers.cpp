// E4/E5 — Figure 7: centralized vs distributed scheduling.
//
//   (a) accumulated container allocation delay (START_ALLO -> END_ALLO):
//       paper: distributed ~80x faster median; p95 108 ms (de-) vs
//       3,709 ms (ce-).
//   (b) task queuing delay at the node under a highly loaded cluster:
//       paper: distributed tasks queue up to ~53 s (random placement,
//       no global view); centralized ~100 ms.
//   (c) container acquisition delay vs cluster load (MapReduce victims,
//       1 s AM heartbeat): capped by the heartbeat interval, high
//       variance at every load level.
#include <set>

#include "bench_common.hpp"

namespace {

using namespace sdc;

/// Aggregates one per-app metric over the subset of apps whose ground
/// truth name starts with `prefix`.
template <typename Fn>
SampleSet for_apps_named(const benchutil::RunOutput& out,
                         const std::string& prefix, Fn fn) {
  SampleSet samples;
  for (const auto& job : out.sim.jobs) {
    if (job.name.rfind(prefix, 0) != 0) continue;
    const auto it = out.analysis.delays.find(job.app);
    if (it == out.analysis.delays.end()) continue;
    fn(it->second, samples);
  }
  return samples;
}

harness::ScenarioConfig sql_trace(yarn::SchedulerKind scheduler,
                                  std::int32_t jobs) {
  harness::ScenarioConfig scenario;
  scenario.seed = 70;
  scenario.yarn.scheduler = scheduler;
  benchutil::add_tpch_trace(scenario, jobs, 2048, 4);
  return scenario;
}

void part_a() {
  std::printf("  (a) accumulated allocation delay [paper: de- ~80x faster "
              "median; p95: de-=108ms ce-=3709ms]\n");
  SampleSet alloc_ce;
  SampleSet alloc_de;
  {
    const auto out =
        benchutil::run_and_analyze(sql_trace(yarn::SchedulerKind::kCapacity, 120));
    alloc_ce = out.analysis.aggregate.alloc;
  }
  {
    const auto out = benchutil::run_and_analyze(
        sql_trace(yarn::SchedulerKind::kOpportunistic, 120));
    alloc_de = out.analysis.aggregate.alloc;
  }
  benchutil::print_cdf("ce-alloc", alloc_ce);
  benchutil::print_cdf("de-alloc", alloc_de);
  std::printf("      median speedup de- over ce-: %.0fx   (p95: ce=%.0fms "
              "de=%.0fms)\n",
              alloc_ce.median() / alloc_de.median(), alloc_ce.p95() * 1000,
              alloc_de.p95() * 1000);
}

/// Highly loaded cluster: a churning MR wordcount occupying ~90% of
/// vcores, plus Spark-SQL victims.
harness::ScenarioConfig loaded_cluster(yarn::SchedulerKind scheduler) {
  harness::ScenarioConfig scenario;
  scenario.seed = 71;
  scenario.yarn.scheduler = scheduler;
  harness::MrSubmissionPlan load;
  load.at = 0;
  load.app = workloads::make_mr_wordcount_for_load(0.96, 25 * 32, seconds(90));
  load.app.name = "mr-load";
  scenario.mr_jobs.push_back(std::move(load));
  for (int i = 0; i < 10; ++i) {
    harness::SparkSubmissionPlan victim;
    victim.at = seconds(20 + 6 * i);
    victim.app = workloads::make_tpch_query(1 + i, 2048, 4);
    victim.app.name = "victim-" + victim.app.name;
    scenario.spark_jobs.push_back(std::move(victim));
  }
  scenario.extra_horizon = seconds(8 * 3600);
  return scenario;
}

void part_b() {
  std::printf("\n  (b) queuing delay on a highly loaded cluster [paper: "
              "de- up to ~53s; ce- ~100ms]\n");
  for (const auto scheduler : {yarn::SchedulerKind::kCapacity,
                               yarn::SchedulerKind::kOpportunistic}) {
    const auto out = benchutil::run_and_analyze(loaded_cluster(scheduler));
    const SampleSet queuing =
        for_apps_named(out, "victim-", [](const checker::Delays& delays,
                                          SampleSet& samples) {
          for (const std::int64_t q : delays.worker_queuings()) {
            samples.add(static_cast<double>(q) / 1000.0);
          }
        });
    const char* label =
        scheduler == yarn::SchedulerKind::kCapacity ? "ce-queuing" : "de-queuing";
    benchutil::print_dist_row(label, queuing);
    if (!queuing.empty()) {
      std::printf("      max %s = %.1fs\n", label, queuing.max());
    }
  }
}

void part_c() {
  std::printf("\n  (c) acquisition delay vs cluster load [paper: capped at "
              "the 1s MapReduce heartbeat, high variance]\n");
  for (const double load : {0.1, 0.4, 0.7, 1.0}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 72;
    // Background load occupying the target fraction of the cluster.
    harness::MrSubmissionPlan background;
    background.at = 0;
    background.app = workloads::make_mr_wordcount_for_load(
        std::max(0.0, load - 0.05), 25 * 32, seconds(60));
    background.app.name = "mr-load";
    scenario.mr_jobs.push_back(std::move(background));
    // MapReduce victims (1 s AM heartbeat).
    for (int i = 0; i < 12; ++i) {
      harness::MrSubmissionPlan victim;
      victim.at = seconds(15 + 4 * i);
      victim.app.name = "mr-victim";
      victim.app.num_maps = 8;
      victim.app.num_reduces = 1;
      victim.app.map_duration_median = seconds(8);
      scenario.mr_jobs.push_back(std::move(victim));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    const SampleSet acquisition =
        for_apps_named(out, "mr-victim", [](const checker::Delays& delays,
                                            SampleSet& samples) {
          for (const std::int64_t a : delays.worker_acquisitions()) {
            samples.add(static_cast<double>(a) / 1000.0);
          }
        });
    char label[32];
    std::snprintf(label, sizeof(label), "load=%.0f%%", load * 100);
    benchutil::print_dist_row(label, acquisition);
  }
  benchutil::print_note(
      "every acquisition sample sits in [0, 1s]: the AM-RM heartbeat caps it");
}

void experiment() {
  benchutil::print_header(
      "Figure 7: centralized (ce-) vs distributed (de-) scheduling",
      "paper Fig. 7 (a)-(c), §IV-C");
  part_a();
  part_b();
  part_c();
}

void BM_OpportunisticAllocation(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario =
        sql_trace(yarn::SchedulerKind::kOpportunistic, 5);
    benchmark::DoNotOptimize(harness::run_scenario(scenario).jobs.size());
  }
}
BENCHMARK(BM_OpportunisticAllocation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
