// E6 — Table II: cluster container-allocation throughput under various
// loads (MapReduce wordcount; load controlled via input size -> map
// count).
//
// Paper: 272 / 1,056 / 1,607 / 2,831 containers/s at 10/40/70/100% load —
// throughput scales with demand (demand-limited, not scheduler-limited),
// so the Capacity Scheduler is not the allocation bottleneck at this
// cluster size.  Our serial decision pipeline (350 µs/container) bounds
// the ceiling near the paper's 2,831/s.
#include <algorithm>

#include "bench_common.hpp"
#include "sdchecker/miner.hpp"

namespace {

using namespace sdc;

/// Measures allocation throughput from the RM log: allocated containers
/// divided by the busy window (10th..90th percentile of ALLOCATED
/// timestamps, scaled back to the full population) — robust to the idle
/// head/tail around the burst.
double allocation_throughput(const logging::LogBundle& logs) {
  checker::LogMiner miner;
  std::vector<double> ts;
  for (const auto event : miner.mine(logs).events) {
    if (event.kind == checker::EventKind::kContainerAllocated) {
      ts.push_back(static_cast<double>(event.ts_ms));
    }
  }
  if (ts.size() < 10) return 0.0;
  std::sort(ts.begin(), ts.end());
  const std::size_t lo = ts.size() / 10;
  const std::size_t hi = ts.size() - 1 - ts.size() / 10;
  const double window_s = (ts[hi] - ts[lo]) / 1000.0;
  if (window_s <= 0) return 0.0;
  return static_cast<double>(hi - lo) / window_s;
}

void experiment() {
  benchutil::print_header("Table II: container allocation throughput vs load",
                          "paper Table II, §IV-C");
  std::printf("  paper:    load 10%%->272/s  40%%->1056/s  70%%->1607/s  "
              "100%%->2831/s\n  measured:");
  for (const double load : {0.1, 0.4, 0.7, 1.0}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 80;
    // Wordcount maps ask for memory only: the Capacity Scheduler's
    // DefaultResourceCalculator ignores vcores, so a 128 GB node packs
    // ~170 x 750 MB maps — that dense packing is what lets the real RM
    // reach thousands of allocations per second.  A giant wordcount input
    // has blocks on every node, so no locality (delay-scheduling) wait
    // applies; demand rides a handful of staggered AM heartbeats.
    scenario.yarn.locality_wait_median = 0;
    // Memory-bound task capacity, minus headroom for the 8 AppMasters so
    // a 100%-load burst still fits without waiting on releases.
    const double cluster_task_slots = 25.0 * 128.0 * 1024.0 / 750.0 - 48.0;
    const std::int32_t total_maps =
        static_cast<std::int32_t>(load * cluster_task_slots);
    const std::int32_t jobs = 8;
    for (std::int32_t j = 0; j < jobs; ++j) {
      harness::MrSubmissionPlan plan;
      plan.at = seconds(1) + j * millis(120);
      plan.app.name = "mr-wc";
      plan.app.num_maps = total_maps / jobs;
      plan.app.num_reduces = 0;
      plan.app.task_resource = {0, 750};  // memory-only accounting
      plan.app.map_duration_median = seconds(30);
      // Load-test AMs poll aggressively so the burst hits the scheduler
      // as one backlog instead of being smeared by heartbeat phases.
      plan.app.am_heartbeat = millis(250);
      scenario.mr_jobs.push_back(std::move(plan));
    }
    const auto result = harness::run_scenario(scenario);
    std::printf("  %3.0f%%->%.0f/s", load * 100,
                allocation_throughput(result.logs));
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::print_note(
      "shape target: throughput rises roughly linearly with offered load and "
      "does not saturate below full utilization");
}

void BM_DecisionPipeline(benchmark::State& state) {
  // Steady-state allocation of a large batch: bounded by decision_time.
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 81;
    harness::MrSubmissionPlan plan;
    plan.at = seconds(1);
    plan.app.num_maps = static_cast<std::int32_t>(state.range(0));
    plan.app.num_reduces = 0;
    plan.app.task_resource = {1, 512};
    plan.app.map_duration_median = seconds(5);
    scenario.mr_jobs.push_back(std::move(plan));
    benchmark::DoNotOptimize(harness::run_scenario(scenario).containers_allocated);
  }
}
BENCHMARK(BM_DecisionPipeline)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
