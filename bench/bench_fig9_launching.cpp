// E8/E9 — Figure 9: container launching delay.
//
//   (a) by instance type: Spark driver (spm) / executor (spe) ~700 ms
//       median; MapReduce master (mrm) / map (mrsm) / reduce (mrsr) are
//       somewhat slower.
//   (b) default YARN container vs Docker: Docker adds ~350 ms median /
//       ~658 ms p95 (image load + rootfs mount of a 2.65 GB image) with a
//       long-tail effect.
//
// Launching delay = ContainerImpl RUNNING (the NM invoking the launch
// script) -> the instance's first log line.
#include "bench_common.hpp"

namespace {

using namespace sdc;

/// Collects per-container launching delays, split AM vs workers, over
/// apps with a given ground-truth name prefix.
void collect_launchings(const benchutil::RunOutput& out,
                        const std::string& prefix, SampleSet& am,
                        SampleSet& workers) {
  for (const auto& job : out.sim.jobs) {
    if (job.name.rfind(prefix, 0) != 0) continue;
    const auto it = out.analysis.delays.find(job.app);
    if (it == out.analysis.delays.end()) continue;
    for (const checker::ContainerDelays& c : it->second.containers) {
      if (!c.launching) continue;
      (c.is_am ? am : workers).add(static_cast<double>(*c.launching) / 1000.0);
    }
  }
}

void part_a() {
  std::printf("  (a) launching delay by instance type [paper: spm/spe "
              "~700ms median; MapReduce slightly slower]\n");
  harness::ScenarioConfig scenario;
  scenario.seed = 95;
  // Spark jobs -> spm (AM) + spe (workers).
  for (int i = 0; i < 30; ++i) {
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(2 + 7 * i);
    plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
    plan.app.name = "spark-" + plan.app.name;
    scenario.spark_jobs.push_back(std::move(plan));
  }
  // Map-only MR jobs -> mrm (AM) + mrsm (workers).
  for (int i = 0; i < 25; ++i) {
    harness::MrSubmissionPlan plan;
    plan.at = seconds(4 + 8 * i);
    plan.app.name = "mrmap-wc";
    plan.app.num_maps = 6;
    plan.app.num_reduces = 0;
    plan.app.map_duration_median = seconds(10);
    scenario.mr_jobs.push_back(std::move(plan));
  }
  // Reduce-heavy MR jobs -> mrsr workers (single map contaminates ~8%).
  for (int i = 0; i < 25; ++i) {
    harness::MrSubmissionPlan plan;
    plan.at = seconds(6 + 8 * i);
    plan.app.name = "mrred-sort";
    plan.app.num_maps = 1;
    plan.app.num_reduces = 10;
    plan.app.map_duration_median = seconds(5);
    plan.app.reduce_duration_median = seconds(8);
    scenario.mr_jobs.push_back(std::move(plan));
  }
  const auto out = benchutil::run_and_analyze(scenario);

  SampleSet spm, spe, mrm, mrsm, mrm2, mrsr;
  collect_launchings(out, "spark-", spm, spe);
  collect_launchings(out, "mrmap-", mrm, mrsm);
  collect_launchings(out, "mrred-", mrm2, mrsr);
  mrm.add_all(mrm2.samples());
  benchutil::print_dist_row("spm (spark driver)", spm);
  benchutil::print_dist_row("spe (spark executor)", spe);
  benchutil::print_dist_row("mrm (MR master)", mrm);
  benchutil::print_dist_row("mrsm (MR map)", mrsm);
  benchutil::print_dist_row("mrsr (MR reduce)", mrsr);
  benchutil::print_note("mrsr pool contains one map task per job (~9%): the "
                        "first log line alone cannot distinguish it");
}

void part_b() {
  std::printf("\n  (b) YARN container vs Docker [paper: +350ms median, "
              "+658ms p95, long tail]\n");
  SampleSet plain, docker;
  for (const bool use_docker : {false, true}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 96;
    for (int i = 0; i < 60; ++i) {
      harness::SparkSubmissionPlan plan;
      plan.at = seconds(2 + 6 * i);
      plan.app = workloads::make_tpch_query(1 + i % 22, 2048, 4);
      plan.app.docker = use_docker;
      plan.app.name = "sql-" + plan.app.name;
      scenario.spark_jobs.push_back(std::move(plan));
    }
    const auto out = benchutil::run_and_analyze(scenario);
    SampleSet am;
    collect_launchings(out, "sql-", am, use_docker ? docker : plain);
    if (use_docker) {
      for (double v : am.samples()) docker.add(v);
    } else {
      for (double v : am.samples()) plain.add(v);
    }
  }
  benchutil::print_dist_row("default container", plain);
  benchutil::print_dist_row("docker container", docker);
  std::printf("      docker overhead: median +%.0fms, p95 +%.0fms\n",
              (docker.median() - plain.median()) * 1000,
              (docker.p95() - plain.p95()) * 1000);
}

void experiment() {
  benchutil::print_header("Figure 9: launching delay by instance/container type",
                          "paper Fig. 9 (a)-(b), §IV-C");
  part_a();
  part_b();
}

void BM_LaunchModelSampling(benchmark::State& state) {
  yarn::LaunchModel model;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample(yarn::InstanceType::kSparkExecutor,
                                          state.range(0) != 0, 1.0, 1.0, rng));
  }
}
BENCHMARK(BM_LaunchModelSampling)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
