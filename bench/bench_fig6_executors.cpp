// E3 — Figure 6: impact of the number of executors.
//
// Paper: 16 executors give a 21.5 s p95 total delay, ~4 s longer than 8
// executors; the Cl-Cf spread (first-to-last container launching) grows
// with executor count, because Spark gates task scheduling on 80% of
// executors registering and each extra container adds allocation
// variance.
#include "bench_common.hpp"

namespace {

using namespace sdc;

void experiment() {
  benchutil::print_header("Figure 6: scheduling delay vs number of executors",
                          "paper Fig. 6 (a)-(b), §IV-B");
  struct Row {
    int executors;
    SampleSet total;
    SampleSet cl_cf;
  };
  std::vector<Row> rows;
  for (const int executors : {4, 8, 12, 16}) {
    harness::ScenarioConfig scenario;
    scenario.seed = 60;
    benchutil::add_tpch_trace(scenario, 80, 2048, executors, seconds(5),
                              seconds(6));
    const auto out = benchutil::run_and_analyze(scenario);
    rows.push_back(Row{executors, out.analysis.aggregate.total,
                       out.analysis.aggregate.cl_minus_cf});
  }

  std::printf("  (a) total delay [paper: p95 rises with executors; "
              "16 execs ~21.5s, ~4s over 8 execs]\n");
  for (const Row& row : rows) {
    benchutil::print_cdf("exec=" + std::to_string(row.executors), row.total);
  }

  std::printf("\n  (b) Cl-Cf spread (first vs last container launch) "
              "[paper: grows in both median and variance]\n");
  for (const Row& row : rows) {
    benchutil::print_dist_row("exec=" + std::to_string(row.executors),
                              row.cl_cf);
  }

  // Monotonicity summary the paper's text claims.
  std::printf("\n  p95(total): ");
  for (const Row& row : rows) {
    std::printf("%d->%.1fs  ", row.executors, row.total.p95());
  }
  std::printf("\n  median(Cl-Cf): ");
  for (const Row& row : rows) {
    std::printf("%d->%.2fs  ", row.executors, row.cl_cf.median());
  }
  std::printf("\n");
}

void BM_SixteenExecutorJob(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 61;
    benchutil::add_tpch_trace(scenario, 5, 2048,
                              static_cast<std::int32_t>(state.range(0)));
    benchmark::DoNotOptimize(harness::run_scenario(scenario).jobs.size());
  }
}
BENCHMARK(BM_SixteenExecutorJob)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
