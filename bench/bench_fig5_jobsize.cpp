// E2 — Figure 5: impact of the job (input) size on the scheduling delay.
//
// Paper: inputs 20 MB -> 200 GB.  (a) total-delay CDFs — larger inputs
// give *longer* absolute scheduling delay (200 GB p95 = 60.4 s, ~4x the
// 20 MB case; heavy tail) because the job's own scan I/O interferes with
// localization and executor startup (out deteriorates ~1.5x, in ~5.7x).
// (b) normalized to job runtime the trend reverses: 20 MB jobs spend
// >65% (80% worst) of their runtime in scheduling.
#include "bench_common.hpp"

namespace {

using namespace sdc;

struct SizePoint {
  const char* label;
  double input_mb;
  int jobs;
  SimDuration mean_gap;
};

void experiment() {
  benchutil::print_header("Figure 5: scheduling delay vs input size",
                          "paper Fig. 5 (a)-(b), §IV-B");
  // Gaps scale with expected runtime to keep cluster load moderate (the
  // paper excludes overload-queueing effects).
  const SizePoint points[] = {
      {"20MB", 20, 80, seconds(4)},
      {"200MB", 200, 80, seconds(4)},
      {"2GB", 2048, 80, seconds(5)},
      {"20GB", 20 * 1024, 40, seconds(20)},
      {"200GB", 200 * 1024, 12, seconds(600)},
  };

  struct Row {
    const char* label;
    SampleSet total;
    SampleSet normalized;
    SampleSet in_app;
    SampleSet out_app;
  };
  std::vector<Row> rows;

  for (const SizePoint& point : points) {
    harness::ScenarioConfig scenario;
    scenario.seed = 50;
    benchutil::add_tpch_trace(scenario, point.jobs, point.input_mb, 4,
                              seconds(5), point.mean_gap);
    const auto out = benchutil::run_and_analyze(scenario);
    Row row;
    row.label = point.label;
    row.total = out.analysis.aggregate.total;
    row.in_app = out.analysis.aggregate.in_app;
    row.out_app = out.analysis.aggregate.out_app;
    row.normalized = benchutil::ratio_samples(
        out.analysis, out.sim,
        [](const checker::Delays& d, const spark::JobRecord&) {
          return d.total ? std::optional<double>(
                               static_cast<double>(*d.total) / 1000.0)
                         : std::nullopt;
        },
        [](const checker::Delays&, const spark::JobRecord& j) {
          return std::optional<double>(
              to_seconds(j.finished_at - j.submitted_at));
        });
    rows.push_back(std::move(row));
  }

  std::printf("  (a) total scheduling delay [paper: grows with input; "
              "200GB p95 = 60.4s ~ 4x 20MB; heavy tail]\n");
  for (const Row& row : rows) benchutil::print_cdf(row.label, row.total);

  std::printf("\n  (b) total delay normalized to job runtime [paper: "
              "decreases with input; 20MB >65%% median, ~80%% worst]\n");
  for (const Row& row : rows)
    benchutil::print_dist_row(row.label, row.normalized, "");

  std::printf("\n  in/out deterioration vs 20MB [paper: 200GB degrades out "
              "~1.5x, in ~5.7x]\n");
  const double base_in = rows.front().in_app.p95();
  const double base_out = rows.front().out_app.p95();
  for (const Row& row : rows) {
    std::printf("  %-8s in(p95)=%7.2fs (%4.1fx)   out(p95)=%6.2fs (%4.1fx)\n",
                row.label, row.in_app.p95(), row.in_app.p95() / base_in,
                row.out_app.p95(), row.out_app.p95() / base_out);
  }
}

void BM_ScenarioSmallInput(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig scenario;
    scenario.seed = 50;
    benchutil::add_tpch_trace(scenario, 10, state.range(0), 4);
    const auto result = harness::run_scenario(scenario);
    benchmark::DoNotOptimize(result.jobs.size());
  }
}
BENCHMARK(BM_ScenarioSmallInput)->Arg(20)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
