// E1 — Figure 4: overall scheduling delays for the long TPC-H trace
// (paper: 2,000 Spark-SQL queries, 2 GB input, 4 executors).
//
//   (a) CDFs of job runtime, total, am, in, out
//       paper p95: total 17.2 s, am 6 s, in 12.7 s, out 5.3 s
//   (b) normalized delays: total/job ~40% (60% worst); am/total ~35%;
//       in/total >70%; out/total <30%
//   (c) standard deviations: `in` varies more than `out` and dominates
//       the variance of `total`
//
// Override the trace length with SDC_JOBS (default 2000).
#include <cstdlib>

#include "bench_common.hpp"

namespace {

using namespace sdc;
using benchutil::print_cdf;
using benchutil::print_dist_row;

int jobs_from_env(int fallback) {
  const char* env = std::getenv("SDC_JOBS");
  if (!env) return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

void experiment() {
  const int jobs = jobs_from_env(2000);
  benchutil::print_header(
      "Figure 4: overall scheduling delays (" + std::to_string(jobs) +
          " TPC-H queries, 2GB input, 4 executors)",
      "paper Fig. 4 (a)-(c), §IV-B");

  harness::ScenarioConfig scenario;
  scenario.seed = 42;
  benchutil::add_tpch_trace(scenario, jobs, 2048, 4);
  const auto out = benchutil::run_and_analyze(scenario);
  std::printf("  simulated %zu jobs, %zu log lines, %zu apps mined\n\n",
              out.sim.jobs.size(), out.sim.logs.total_lines(),
              out.analysis.timelines.size());

  // ---- (a) delay CDFs -----------------------------------------------------
  std::printf("  (a) delay CDFs [paper p95: total 17.2s am 6.0s in 12.7s "
              "out 5.3s]\n");
  const SampleSet job = benchutil::job_runtimes(out.sim);
  print_cdf("job", job);
  const auto& agg = out.analysis.aggregate;
  print_cdf("total", agg.total);
  print_cdf("am", agg.am);
  print_cdf("in", agg.in_app);
  print_cdf("out", agg.out_app);

  // ---- (b) normalized delays ----------------------------------------------
  std::printf("\n  (b) normalized delays [paper: total/job ~40%% median, "
              "~60%% worst; am/total ~35%%; in/total >70%%]\n");
  const auto opt_ms = [](const std::optional<std::int64_t>& v) {
    return v ? std::optional<double>(static_cast<double>(*v) / 1000.0)
             : std::nullopt;
  };
  const auto total_over_job = benchutil::ratio_samples(
      out.analysis, out.sim,
      [&](const checker::Delays& d, const spark::JobRecord&) {
        return opt_ms(d.total);
      },
      [](const checker::Delays&, const spark::JobRecord& j) {
        return std::optional<double>(to_seconds(j.finished_at - j.submitted_at));
      });
  const auto frac_of_total = [&](auto member) {
    return benchutil::ratio_samples(
        out.analysis, out.sim,
        [member, &opt_ms](const checker::Delays& d, const spark::JobRecord&) {
          return opt_ms(d.*member);
        },
        [&opt_ms](const checker::Delays& d, const spark::JobRecord&) {
          return opt_ms(d.total);
        });
  };
  print_dist_row("total/job", total_over_job, "");
  print_dist_row("am/total", frac_of_total(&checker::Delays::am), "");
  print_dist_row("in/total", frac_of_total(&checker::Delays::in_app), "");
  print_dist_row("out/total", frac_of_total(&checker::Delays::out_app), "");

  // ---- (c) standard deviations ----------------------------------------------
  std::printf("\n  (c) standard deviations [paper: in varies most and "
              "dominates total's variance]\n");
  std::printf("      std(total)=%.3fs std(am)=%.3fs std(in)=%.3fs "
              "std(out)=%.3fs\n",
              agg.total.stddev(), agg.am.stddev(), agg.in_app.stddev(),
              agg.out_app.stddev());

  std::printf("\n  full aggregate:\n%s",
              out.analysis.aggregate.render_text().c_str());
}

// --- timed kernels: SDchecker mining throughput, serial vs parallel ---------

const logging::LogBundle& shared_bundle() {
  static const logging::LogBundle bundle = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 7;
    benchutil::add_tpch_trace(scenario, 100, 2048, 4);
    return harness::run_scenario(scenario).logs;
  }();
  return bundle;
}

void BM_MineLogs(benchmark::State& state) {
  const auto& bundle = shared_bundle();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    checker::LogMiner miner(checker::MinerOptions{threads});
    const auto mined = miner.mine(bundle);
    events = mined.events.size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["lines"] = static_cast<double>(bundle.total_lines());
  state.counters["events"] = static_cast<double>(events);
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(bundle.total_lines() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MineLogs)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FullAnalysis(benchmark::State& state) {
  const auto& bundle = shared_bundle();
  for (auto _ : state) {
    const auto analysis = checker::SdChecker({.threads = 2}).analyze(bundle);
    benchmark::DoNotOptimize(analysis.delays.size());
  }
}
BENCHMARK(BM_FullAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdc::benchutil::bench_main(argc, argv, experiment);
}
