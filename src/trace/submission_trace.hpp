// Synthetic query-submission traces (substitute for the paper's two
// google-trace subsets, §IV-A): bursty lognormal inter-arrivals whose
// burstiness mimics production submission patterns.  Two canonical
// instances: the *long* trace (2,000 queries, overall-delay study) and
// the *short* trace (200 queries, per-component studies).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sdc::trace {

struct Submission {
  SimTime at = 0;
  /// Workload selector, cycled through TPC-H queries by the harness.
  std::int32_t workload_index = 0;
};

struct TraceConfig {
  std::int32_t count = 200;
  /// Mean inter-arrival between submissions.
  SimDuration mean_interarrival = seconds(4);
  /// Lognormal sigma of inter-arrivals; > 1 produces the bursty,
  /// heavy-tailed gaps seen in the google trace.
  double burstiness_sigma = 1.1;
  /// First submission time (lets interference generators warm up first).
  SimTime start = seconds(5);
  std::uint64_t seed = 7;
};

/// Generates a reproducible submission trace.
[[nodiscard]] std::vector<Submission> generate_trace(const TraceConfig& config);

/// The paper's long trace: 2,000 queries (overall scheduling delays).
[[nodiscard]] std::vector<Submission> long_trace(std::uint64_t seed = 7);

/// The paper's short trace: 200 queries (per-component studies).
[[nodiscard]] std::vector<Submission> short_trace(std::uint64_t seed = 7);

}  // namespace sdc::trace
