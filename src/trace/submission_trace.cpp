#include "trace/submission_trace.hpp"

#include <cmath>

namespace sdc::trace {

std::vector<Submission> generate_trace(const TraceConfig& config) {
  Rng rng(config.seed);
  std::vector<Submission> out;
  out.reserve(static_cast<std::size_t>(config.count));
  SimTime t = config.start;
  for (std::int32_t i = 0; i < config.count; ++i) {
    out.push_back(Submission{t, i});
    // Lognormal gaps with the configured mean: median = mean / e^(s^2/2).
    const double sigma = config.burstiness_sigma;
    const double median = static_cast<double>(config.mean_interarrival) /
                          std::exp(sigma * sigma / 2.0);
    t += static_cast<SimDuration>(rng.lognormal(median, sigma));
  }
  return out;
}

std::vector<Submission> long_trace(std::uint64_t seed) {
  TraceConfig config;
  config.count = 2000;
  config.mean_interarrival = seconds(4);
  config.seed = seed;
  return generate_trace(config);
}

std::vector<Submission> short_trace(std::uint64_t seed) {
  TraceConfig config;
  config.count = 200;
  config.mean_interarrival = seconds(5);
  config.seed = seed;
  return generate_trace(config);
}

}  // namespace sdc::trace
