#include "yarn/node_manager.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/log_contract.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "yarn/log_contract.hpp"

namespace sdc::yarn {
namespace {

using contract::render_template;

std::string nm_stream_name(const NodeId& node) {
  return "nm-" + node.hostname() + ".log";
}

}  // namespace

NodeManager::NodeManager(cluster::Cluster& cluster, cluster::Node& node,
                         logging::LogBundle& logs, const YarnConfig& config,
                         const LaunchModel& launch_model, Rng rng,
                         std::int64_t clock_skew_ms)
    : cluster_(cluster),
      node_(node),
      config_(config),
      launch_model_(launch_model),
      logger_(&logs, nm_stream_name(node.id()),
              cluster.config().epoch_base_ms, clock_skew_ms),
      rng_(rng) {
  if (config.enable_localization_cache) {
    cache_.emplace(config.localization_cache);
  }
}

void NodeManager::set_rm_hooks(
    std::function<void(const ContainerId&)> on_running,
    std::function<void(const ContainerId&)> on_finished) {
  rm_on_running_ = std::move(on_running);
  rm_on_finished_ = std::move(on_finished);
}

NodeManager::ContainerRec& NodeManager::rec(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("NodeManager: unknown container " + id.str());
  }
  return it->second;
}

void NodeManager::log_transition(const ContainerId& id, ContainerRec& rec,
                                 NmContainerState to) {
  static obs::Counter& transitions =
      obs::catalog_counter(obs::metric::kSimNmContainerTransitions);
  transitions.add(1);
  const NmContainerState from = rec.sm.state();
  rec.sm.transition(to);
  logger_.info(cluster_.engine().now(), std::string(kNmContainerImplClass),
               render_nm_container_transition(id.str(), from, to));
}

void NodeManager::start_container(LaunchSpec spec) {
  const ContainerId id = spec.id;
  if (finished_before_start_.erase(id) > 0) {
    // The application finished while this start RPC was in flight.
    if (!spec.opportunistic) node_.release(spec.resource);
    return;
  }
  auto [it, inserted] = containers_.try_emplace(id);
  if (!inserted) {
    throw std::invalid_argument("NodeManager: duplicate container " + id.str());
  }
  ContainerRec& container = it->second;
  container.spec = std::move(spec);
  if (!container.spec.opportunistic) {
    // Guaranteed: the scheduler reserved this node's resources at grant
    // time; the NM just runs it.
    container.resources_held = true;
  } else {
    // Opportunistic: grab resources if the node happens to have room.
    container.resources_held = node_.try_allocate(container.spec.resource);
    if (!container.resources_held) {
      logger_.info(cluster_.engine().now(),
                   std::string(kContainerSchedulerClass),
                   render_template(kNmLineOpportunisticQueued.format,
                                   {{"container", id.str()}}));
    }
  }
  // Tiny internal dispatch latency before the localizer picks it up.
  cluster_.engine().schedule_after(
      rng_.lognormal_duration(millis(2), 0.4),
      [this, id] { begin_localization(id); });
}

void NodeManager::begin_localization(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;  // killed before localization
  ContainerRec& container = it->second;
  log_transition(id, container, NmContainerState::kLocalizing);
  // The §V-B caching service: a hit is served from the node-local
  // dedicated tier, immune to cluster I/O interference (only the mild CPU
  // effect on the client path remains).
  if (cache_ && cache_->lookup(container.spec.package_key)) {
    const double ms = cache_->hit_time_ms(container.spec.localization_mb) *
                      cluster_.interference().cpu_localization_multiplier();
    logger_.info(cluster_.engine().now(),
                 std::string(kLocalizationServiceClass),
                 render_template(kNmLineCacheHit.format,
                                 {{"container", id.str()},
                                  {"key", container.spec.package_key}}));
    cluster_.engine().schedule_after(
        rng_.lognormal_duration(static_cast<SimDuration>(ms * 1000.0), 0.25),
        [this, id] { on_localized(id); });
    return;
  }
  const auto& interference = cluster_.interference();
  const double io_mult = interference.io_transfer_multiplier() *
                         interference.cpu_localization_multiplier();
  const SimDuration overhead =
      rng_.lognormal_duration(config_.localization_overhead_median,
                              config_.localization_overhead_sigma);
  const SimDuration transfer = cluster_.hdfs().sample_transfer(
      container.spec.localization_mb, io_mult, rng_);
  logger_.info(cluster_.engine().now(), std::string(kLocalizationServiceClass),
               render_template(kNmLineDownloading.format,
                               {{"container", id.str()}}));
  node_.add_io_flow();
  container.io_flow_active = true;
  if (cache_) {
    cache_->insert(container.spec.package_key,
                   container.spec.localization_mb);
  }
  cluster_.engine().schedule_after(overhead + transfer,
                                   [this, id] { on_localized(id); });
}

void NodeManager::on_localized(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;  // killed mid-localization
  ContainerRec& container = it->second;
  node_.remove_io_flow();
  container.io_flow_active = false;
  log_transition(id, container, NmContainerState::kScheduled);
  if (container.spec.opportunistic && !container.resources_held) {
    // Try once more (resources may have freed during localization) before
    // waiting at the node — Fig. 7-b's queuing delay.
    if (node_.try_allocate(container.spec.resource)) {
      container.resources_held = true;
    } else {
      node_.enqueue_opportunistic();
      opportunistic_queue_.push_back(id);
      return;
    }
  }
  dispatch(id, rng_.lognormal_duration(config_.guaranteed_queue_median,
                                       config_.guaranteed_queue_sigma));
}

void NodeManager::dispatch(const ContainerId& id, SimDuration queue_delay) {
  cluster_.engine().schedule_after(queue_delay,
                                   [this, id] { run_container(id); });
}

void NodeManager::run_container(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;  // killed while queued
  ContainerRec& container = it->second;
  log_transition(id, container, NmContainerState::kRunning);
  if (rm_on_running_) rm_on_running_(id);
  const auto& interference = cluster_.interference();
  // JVM start is CPU-intensive *and* loads classes from local jars, so it
  // stretches under both CPU load and heavy disk activity (§IV-E) — but
  // the CPU effect is sub-linear (fork/exec and early JIT hold locks less
  // than steady-state execution; Fig. 13-a shows out-app barely moving).
  const double jvm_factor =
      std::pow(interference.cpu_multiplier(), 0.6) *
      std::pow(interference.io_control_multiplier(), 0.5);
  const SimDuration launch = launch_model_.sample(
      container.spec.type, container.spec.docker, jvm_factor,
      interference.io_transfer_multiplier(), rng_, container.spec.warm_jvm);
  if (container.spec.failure_probability > 0 &&
      rng_.chance(container.spec.failure_probability)) {
    // Launch failure: the process dies part-way through boot; the NM
    // reaps it and reports a failed exit (no instance first-log exists).
    const SimDuration died_after = static_cast<SimDuration>(
        static_cast<double>(launch) * rng_.uniform(0.2, 0.9));
    cluster_.engine().schedule_after(died_after, [this, id] {
      const auto cit = containers_.find(id);
      if (cit == containers_.end()) return;
      ContainerRec& failed = cit->second;
      log_transition(id, failed, NmContainerState::kExitedWithFailure);
      logger_.warn(cluster_.engine().now(),
                   std::string(kNmContainerImplClass),
                   render_template(kNmLineLaunchFailed.format,
                                   {{"container", id.str()}}));
      log_transition(id, failed, NmContainerState::kDone);
      if (failed.resources_held) node_.release(failed.spec.resource);
      if (rm_on_finished_) rm_on_finished_(id);
      auto on_failed = failed.spec.on_launch_failed;
      containers_.erase(id);
      try_dispatch_queued();
      if (on_failed) on_failed(cluster_.engine().now());
    });
    return;
  }
  auto on_started = container.spec.on_process_started;
  if (on_started) {
    cluster_.engine().schedule_after(launch, [this, on_started] {
      on_started(cluster_.engine().now());
    });
  }
}

void NodeManager::finish_container(const ContainerId& id) {
  if (!containers_.contains(id)) {
    finished_before_start_.insert(id);
    return;
  }
  ContainerRec& container = rec(id);
  if (container.sm.state() == NmContainerState::kRunning) {
    log_transition(id, container, NmContainerState::kExitedWithSuccess);
    log_transition(id, container, NmContainerState::kDone);
  } else {
    // Killed before it ever ran (e.g. the application finished while the
    // container was still localizing or queued).
    logger_.info(cluster_.engine().now(), std::string(kContainerSchedulerClass),
                 render_template(kNmLineCleanedUp.format,
                                 {{"container", id.str()}}));
    if (container.io_flow_active) {
      node_.remove_io_flow();
      container.io_flow_active = false;
    }
    for (auto qit = opportunistic_queue_.begin();
         qit != opportunistic_queue_.end(); ++qit) {
      if (*qit == id) {
        opportunistic_queue_.erase(qit);
        node_.dequeue_opportunistic();
        break;
      }
    }
  }
  if (container.resources_held) {
    node_.release(container.spec.resource);
  }
  if (rm_on_finished_) rm_on_finished_(id);
  containers_.erase(id);
  try_dispatch_queued();
}

void NodeManager::try_dispatch_queued() {
  while (!opportunistic_queue_.empty()) {
    const ContainerId id = opportunistic_queue_.front();
    const auto it = containers_.find(id);
    if (it == containers_.end()) {  // finished while queued (defensive)
      opportunistic_queue_.pop_front();
      node_.dequeue_opportunistic();
      continue;
    }
    ContainerRec& container = it->second;
    if (!node_.try_allocate(container.spec.resource)) return;  // still full
    container.resources_held = true;
    opportunistic_queue_.pop_front();
    node_.dequeue_opportunistic();
    // Small dispatch cost once resources free up.
    dispatch(id, rng_.lognormal_duration(millis(10), 0.4));
  }
}

}  // namespace sdc::yarn
