// Simulated NodeManager: runs the ContainerImpl lifecycle on one node and
// emits the NM-side log lines SDchecker mines (Table I rows 6-8).
//
// Lifecycle of one container:
//
//   NEW -> LOCALIZING            (localization service starts downloading)
//   LOCALIZING -> SCHEDULED      (package localized; Table I row 6->7 is
//                                 the localization delay, Fig. 8)
//   SCHEDULED -> RUNNING         (NM container scheduler dispatches the
//                                 launch script; the gap is the queuing
//                                 delay — ~100 ms guaranteed, up to tens
//                                 of seconds for opportunistic containers
//                                 on a busy node, Fig. 7-b)
//   RUNNING -> process first log (JVM boot; the launching delay, Fig. 9)
//   RUNNING -> EXITED_WITH_SUCCESS -> DONE on completion.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "logging/logger.hpp"
#include "yarn/config.hpp"
#include "yarn/launch_model.hpp"
#include "yarn/localization_cache.hpp"
#include "yarn/state_machine.hpp"
#include "yarn/types.hpp"

namespace sdc::yarn {

class NodeManager {
 public:
  NodeManager(cluster::Cluster& cluster, cluster::Node& node,
              logging::LogBundle& logs, const YarnConfig& config,
              const LaunchModel& launch_model, Rng rng,
              std::int64_t clock_skew_ms = 0);

  /// RM / AM-facing: begins the container lifecycle.  The caller is
  /// responsible for modelling the RPC delay before this call.  For
  /// guaranteed containers the node's resources were already reserved by
  /// the scheduler at grant time.
  void start_container(LaunchSpec spec);

  /// Framework-facing: the process inside the container exited cleanly.
  /// Releases node resources and may dispatch queued opportunistic
  /// containers.
  void finish_container(const ContainerId& id);

  /// Hooks back to the RM, set by the harness after construction (keeps
  /// NM free of an RM dependency).
  void set_rm_hooks(std::function<void(const ContainerId&)> on_running,
                    std::function<void(const ContainerId&)> on_finished);

  [[nodiscard]] const cluster::Node& node() const noexcept { return node_; }
  [[nodiscard]] cluster::Node& node() noexcept { return node_; }
  [[nodiscard]] const logging::Logger& logger() const noexcept {
    return logger_;
  }
  /// Containers currently tracked (not yet DONE).
  [[nodiscard]] std::size_t live_containers() const noexcept {
    return containers_.size();
  }

  /// The node-local localization cache (§V-B future-work service), or
  /// nullptr when yarn.enable_localization_cache is off.
  [[nodiscard]] const LocalizationCache* localization_cache() const noexcept {
    return cache_ ? &*cache_ : nullptr;
  }

 private:
  struct ContainerRec {
    LaunchSpec spec;
    StateMachine<NmContainerState> sm{NmContainerState::kNew, "ContainerImpl"};
    bool resources_held = false;
    bool io_flow_active = false;
  };

  void log_transition(const ContainerId& id, ContainerRec& rec,
                      NmContainerState to);
  void begin_localization(const ContainerId& id);
  void on_localized(const ContainerId& id);
  void dispatch(const ContainerId& id, SimDuration queue_delay);
  void run_container(const ContainerId& id);
  void try_dispatch_queued();

  [[nodiscard]] ContainerRec& rec(const ContainerId& id);

  cluster::Cluster& cluster_;
  cluster::Node& node_;
  const YarnConfig& config_;
  const LaunchModel& launch_model_;
  logging::Logger logger_;
  Rng rng_;
  std::optional<LocalizationCache> cache_;
  std::map<ContainerId, ContainerRec> containers_;
  /// Containers finished (killed) before their start RPC arrived; the
  /// late-arriving start is then dropped instead of leaking a lifecycle.
  std::set<ContainerId> finished_before_start_;
  std::deque<ContainerId> opportunistic_queue_;
  std::function<void(const ContainerId&)> rm_on_running_;
  std::function<void(const ContainerId&)> rm_on_finished_;
};

}  // namespace sdc::yarn
