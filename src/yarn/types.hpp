// Shared protocol types of the two-level scheduler (paper §II-A).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/resource.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"

namespace sdc::yarn {

/// What kind of process a container will run; determines the launch-delay
/// model (paper Fig. 9-a: spm / spe / mrm / mrsm / mrsr).
enum class InstanceType {
  kSparkDriver,    // spm
  kSparkExecutor,  // spe
  kMrMaster,       // mrm
  kMrMapTask,      // mrsm
  kMrReduceTask,   // mrsr
};

/// Short code used in logs and reports (matches the paper's x-axis labels).
std::string_view instance_code(InstanceType type);

/// Which scheduler the ResourceManager runs (paper §IV-C; §II-A lists the
/// Capacity and Fair schedulers as the centralized options).
enum class SchedulerKind {
  kCapacity,       // centralized FIFO (Hadoop Capacity Scheduler)
  kFair,           // centralized fair-share (Hadoop Fair Scheduler)
  kOpportunistic,  // distributed / opportunistic (Mercury-style, Hadoop 3.0)
  /// Distributed with Sparrow-style power-of-d-choices probing: still no
  /// global view, but each container samples d nodes and picks the least
  /// loaded — the literature's fix for the random-placement queuing
  /// pathology the paper measures in Fig. 7-b.
  kSampling,
};

/// A batch resource ask from an AppMaster (or from the RM itself for the
/// AM container).
struct ContainerAsk {
  cluster::Resource resource;
  std::int32_t count = 1;
  InstanceType type = InstanceType::kSparkExecutor;
  /// Data-locality preference: nodes holding replicas of the task's input
  /// blocks.  Empty = no preference.  Used by the delay-scheduling fast
  /// path (yarn.locality_fast_path) to grant on a preferred node's
  /// heartbeat without waiting out the locality delay.
  std::vector<NodeId> preferred_nodes = {};
};

/// One granted container, as delivered to the AM on a heartbeat.
struct Allocation {
  ContainerId id;
  NodeId node;
  cluster::Resource resource;
  InstanceType type = InstanceType::kSparkExecutor;
  bool opportunistic = false;
};

/// Everything a NodeManager needs to run one container.
struct LaunchSpec {
  ContainerId id;
  cluster::Resource resource;
  InstanceType type = InstanceType::kSparkExecutor;
  /// Size of the localization package (jars, configs, `-f` files), MB.
  double localization_mb = 500.0;
  /// Content signature of the package — the localization-cache key
  /// (identical packages across applications hit the node-local cache
  /// when the §V-B caching service is enabled).
  std::string package_key = "default-pkg";
  /// Launch inside a Docker container (paper Fig. 9-b).
  bool docker = false;
  /// Launch from a pre-warmed JVM pool (§V-B "JVM reuse" optimization).
  bool warm_jvm = false;
  /// Opportunistic containers queue at the node when it is busy.
  bool opportunistic = false;
  /// Probability that the launch fails (bad node disk, image pull error,
  /// JVM OOM at boot).  Sampled once when the NM runs the launch script;
  /// a failed container logs RUNNING -> EXITED_WITH_FAILURE and never
  /// produces an instance first-log line.
  double failure_probability = 0.0;
  /// Invoked when the launched process has booted — the instant the
  /// process writes its first log line.  Receives that simulation time.
  std::function<void(SimTime)> on_process_started;
  /// Invoked instead of on_process_started when the launch fails.
  std::function<void(SimTime)> on_launch_failed;
};

}  // namespace sdc::yarn
