// Per-node localization cache service — the paper's proposed future work
// (§V-B): "design a new caching service on each slave node [so that] the
// recent most used localization files will be cached on local nodes in
// dedicated storage class, eliminating the effects of network
// interference."
//
// Packages are keyed by a content signature (here: the package key the
// framework ships with the launch context).  A hit serves the package
// from the node-local dedicated tier — a small fixed cost plus a fast
// read that is immune to cluster I/O interference, which is the entire
// point of the design.  Misses fall through to HDFS and then insert, with
// LRU eviction under a byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace sdc::yarn {

struct LocalizationCacheConfig {
  /// Dedicated-tier capacity per node (SSD/RAM-disk slice), MB.
  double capacity_mb = 16 * 1024.0;
  /// Dedicated-tier read bandwidth, MB/s (local SSD, uncontended).
  double read_bw_mbps = 2000.0;
  /// Fixed per-hit cost (symlink setup, permissions).
  double hit_overhead_ms = 60.0;
};

class LocalizationCache {
 public:
  explicit LocalizationCache(LocalizationCacheConfig config = {})
      : config_(config) {}

  /// True if `key` is currently cached; refreshes its LRU position.
  [[nodiscard]] bool lookup(const std::string& key);

  /// Inserts `key` of `size_mb`, evicting least-recently-used entries
  /// until it fits.  Packages larger than the capacity are not cached.
  void insert(const std::string& key, double size_mb);

  /// Time (ms) to serve `size_mb` from the dedicated tier.
  [[nodiscard]] double hit_time_ms(double size_mb) const {
    return config_.hit_overhead_ms + size_mb / config_.read_bw_mbps * 1000.0;
  }

  [[nodiscard]] double used_mb() const noexcept { return used_mb_; }
  [[nodiscard]] std::size_t entries() const noexcept { return index_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] const LocalizationCacheConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Entry {
    std::string key;
    double size_mb;
  };

  LocalizationCacheConfig config_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  double used_mb_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sdc::yarn
