#include "yarn/state_machine.hpp"

#include <array>

#include "common/log_contract.hpp"

namespace sdc::yarn {
namespace {

/// Bounds-checked name lookup over a machine's state-name table.
template <typename Enum, std::size_t N>
std::string_view state_name(const std::string_view (&names)[N], Enum s) {
  const auto raw = static_cast<std::size_t>(s);
  return raw < N ? names[raw] : "?";
}

/// Finds the edge (from, to) in a machine's transition table.
template <typename Enum, std::size_t N>
const TransitionEdge<Enum>* find_edge(const TransitionEdge<Enum> (&edges)[N],
                                      Enum from, Enum to) {
  for (const TransitionEdge<Enum>& edge : edges) {
    if (edge.from == from && edge.to == to) return &edge;
  }
  return nullptr;
}

/// Type-erases one typed edge table into MachineDescriptor::Edge form.
template <typename Enum, std::size_t N>
constexpr std::array<MachineDescriptor::Edge, N> erase_edges(
    const TransitionEdge<Enum> (&edges)[N]) {
  std::array<MachineDescriptor::Edge, N> out{};
  for (std::size_t i = 0; i < N; ++i) {
    out[i] = MachineDescriptor::Edge{static_cast<std::size_t>(edges[i].from),
                                     static_cast<std::size_t>(edges[i].to),
                                     edges[i].event, edges[i].emits};
  }
  return out;
}

constexpr auto kRmAppEdgesErased = erase_edges(kRmAppEdges);
constexpr auto kRmContainerEdgesErased = erase_edges(kRmContainerEdges);
constexpr auto kNmContainerEdgesErased = erase_edges(kNmContainerEdges);

constexpr MachineDescriptor kDescriptors[] = {
    {"RMAppImpl", kRmAppImplClass, kRmAppLineFormat, "application",
     kRmAppStateNames, static_cast<std::size_t>(RmAppState::kNew),
     kRmAppTerminals, kRmAppEdgesErased},
    {"RMContainerImpl", kRmContainerImplClass, kRmContainerLineFormat,
     "container", kRmContainerStateNames,
     static_cast<std::size_t>(RmContainerState::kNew), kRmContainerTerminals,
     kRmContainerEdgesErased},
    {"ContainerImpl", kNmContainerImplClass, kNmContainerLineFormat,
     "container", kNmContainerStateNames,
     static_cast<std::size_t>(NmContainerState::kNew), kNmContainerTerminals,
     kNmContainerEdgesErased},
};

}  // namespace

std::span<const MachineDescriptor> machine_descriptors() {
  return kDescriptors;
}

std::string_view name(RmAppState s) { return state_name(kRmAppStateNames, s); }

std::string_view name(RmContainerState s) {
  return state_name(kRmContainerStateNames, s);
}

std::string_view name(NmContainerState s) {
  return state_name(kNmContainerStateNames, s);
}

std::string_view rm_app_event(RmAppState from, RmAppState to) {
  const auto* edge = find_edge(kRmAppEdges, from, to);
  return edge != nullptr ? edge->event : "UNKNOWN";
}

bool is_legal_transition(RmAppState from, RmAppState to) {
  return find_edge(kRmAppEdges, from, to) != nullptr;
}

bool is_legal_transition(RmContainerState from, RmContainerState to) {
  return find_edge(kRmContainerEdges, from, to) != nullptr;
}

bool is_legal_transition(NmContainerState from, NmContainerState to) {
  return find_edge(kNmContainerEdges, from, to) != nullptr;
}

IllegalTransition::IllegalTransition(std::string_view machine,
                                     std::string_view from,
                                     std::string_view to)
    : std::logic_error("illegal " + std::string(machine) + " transition " +
                       std::string(from) + " -> " + std::string(to)) {}

std::string render_rm_app_transition(const std::string& app_id,
                                     RmAppState from, RmAppState to) {
  return contract::render_template(kRmAppLineFormat,
                                   {{"id", app_id},
                                    {"from", name(from)},
                                    {"to", name(to)},
                                    {"event", rm_app_event(from, to)}});
}

std::string render_rm_container_transition(const std::string& container_id,
                                           RmContainerState from,
                                           RmContainerState to) {
  return contract::render_template(
      kRmContainerLineFormat,
      {{"id", container_id}, {"from", name(from)}, {"to", name(to)}});
}

std::string render_nm_container_transition(const std::string& container_id,
                                           NmContainerState from,
                                           NmContainerState to) {
  return contract::render_template(
      kNmContainerLineFormat,
      {{"id", container_id}, {"from", name(from)}, {"to", name(to)}});
}

}  // namespace sdc::yarn
