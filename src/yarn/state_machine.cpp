#include "yarn/state_machine.hpp"

namespace sdc::yarn {

std::string_view name(RmAppState s) {
  switch (s) {
    case RmAppState::kNew:
      return "NEW";
    case RmAppState::kNewSaving:
      return "NEW_SAVING";
    case RmAppState::kSubmitted:
      return "SUBMITTED";
    case RmAppState::kAccepted:
      return "ACCEPTED";
    case RmAppState::kRunning:
      return "RUNNING";
    case RmAppState::kFinalSaving:
      return "FINAL_SAVING";
    case RmAppState::kFinished:
      return "FINISHED";
  }
  return "?";
}

std::string_view name(RmContainerState s) {
  switch (s) {
    case RmContainerState::kNew:
      return "NEW";
    case RmContainerState::kAllocated:
      return "ALLOCATED";
    case RmContainerState::kAcquired:
      return "ACQUIRED";
    case RmContainerState::kRunning:
      return "RUNNING";
    case RmContainerState::kCompleted:
      return "COMPLETED";
    case RmContainerState::kReleased:
      return "RELEASED";
  }
  return "?";
}

std::string_view name(NmContainerState s) {
  switch (s) {
    case NmContainerState::kNew:
      return "NEW";
    case NmContainerState::kLocalizing:
      return "LOCALIZING";
    case NmContainerState::kScheduled:
      return "SCHEDULED";
    case NmContainerState::kRunning:
      return "RUNNING";
    case NmContainerState::kExitedWithSuccess:
      return "EXITED_WITH_SUCCESS";
    case NmContainerState::kExitedWithFailure:
      return "EXITED_WITH_FAILURE";
    case NmContainerState::kDone:
      return "DONE";
  }
  return "?";
}

std::string_view rm_app_event(RmAppState from, RmAppState to) {
  if (from == RmAppState::kNew && to == RmAppState::kNewSaving)
    return "START";
  if (from == RmAppState::kNewSaving && to == RmAppState::kSubmitted)
    return "APP_NEW_SAVED";
  if (from == RmAppState::kSubmitted && to == RmAppState::kAccepted)
    return "APP_ACCEPTED";
  if (from == RmAppState::kAccepted && to == RmAppState::kRunning)
    return "ATTEMPT_REGISTERED";
  if (from == RmAppState::kRunning && to == RmAppState::kFinalSaving)
    return "ATTEMPT_UNREGISTERED";
  if (from == RmAppState::kAccepted && to == RmAppState::kFinalSaving)
    return "ATTEMPT_FAILED";
  if (from == RmAppState::kFinalSaving && to == RmAppState::kFinished)
    return "APP_UPDATE_SAVED";
  return "UNKNOWN";
}

bool is_legal_transition(RmAppState from, RmAppState to) {
  switch (from) {
    case RmAppState::kNew:
      return to == RmAppState::kNewSaving;
    case RmAppState::kNewSaving:
      return to == RmAppState::kSubmitted;
    case RmAppState::kSubmitted:
      return to == RmAppState::kAccepted;
    case RmAppState::kAccepted:
      // ACCEPTED -> FINAL_SAVING covers applications whose AM attempts all
      // failed before registering (YARN's ACCEPTED -> FAILED analog).
      return to == RmAppState::kRunning || to == RmAppState::kFinalSaving;
    case RmAppState::kRunning:
      return to == RmAppState::kFinalSaving;
    case RmAppState::kFinalSaving:
      return to == RmAppState::kFinished;
    case RmAppState::kFinished:
      return false;
  }
  return false;
}

bool is_legal_transition(RmContainerState from, RmContainerState to) {
  switch (from) {
    case RmContainerState::kNew:
      return to == RmContainerState::kAllocated;
    case RmContainerState::kAllocated:
      // Unacquired allocations can be reclaimed (RELEASED) — the path the
      // SPARK-21562 over-request bug leaves in the logs.
      return to == RmContainerState::kAcquired ||
             to == RmContainerState::kReleased;
    case RmContainerState::kAcquired:
      return to == RmContainerState::kRunning ||
             to == RmContainerState::kReleased;
    case RmContainerState::kRunning:
      return to == RmContainerState::kCompleted ||
             to == RmContainerState::kReleased;
    case RmContainerState::kCompleted:
    case RmContainerState::kReleased:
      return false;
  }
  return false;
}

bool is_legal_transition(NmContainerState from, NmContainerState to) {
  switch (from) {
    case NmContainerState::kNew:
      return to == NmContainerState::kLocalizing;
    case NmContainerState::kLocalizing:
      return to == NmContainerState::kScheduled;
    case NmContainerState::kScheduled:
      return to == NmContainerState::kRunning;
    case NmContainerState::kRunning:
      return to == NmContainerState::kExitedWithSuccess ||
             to == NmContainerState::kExitedWithFailure;
    case NmContainerState::kExitedWithSuccess:
    case NmContainerState::kExitedWithFailure:
      return to == NmContainerState::kDone;
    case NmContainerState::kDone:
      return false;
  }
  return false;
}

IllegalTransition::IllegalTransition(std::string_view machine,
                                     std::string_view from,
                                     std::string_view to)
    : std::logic_error("illegal " + std::string(machine) + " transition " +
                       std::string(from) + " -> " + std::string(to)) {}

std::string render_rm_app_transition(const std::string& app_id,
                                     RmAppState from, RmAppState to) {
  std::string out = app_id;
  out += " State change from ";
  out += name(from);
  out += " to ";
  out += name(to);
  out += " on event = ";
  out += rm_app_event(from, to);
  return out;
}

std::string render_rm_container_transition(const std::string& container_id,
                                           RmContainerState from,
                                           RmContainerState to) {
  std::string out = container_id;
  out += " Container Transitioned from ";
  out += name(from);
  out += " to ";
  out += name(to);
  return out;
}

std::string render_nm_container_transition(const std::string& container_id,
                                           NmContainerState from,
                                           NmContainerState to) {
  std::string out = "Container ";
  out += container_id;
  out += " transitioned from ";
  out += name(from);
  out += " to ";
  out += name(to);
  return out;
}

}  // namespace sdc::yarn
