#include "yarn/localization_cache.hpp"

namespace sdc::yarn {

bool LocalizationCache::lookup(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return true;
}

void LocalizationCache::insert(const std::string& key, double size_mb) {
  if (size_mb > config_.capacity_mb) return;  // cannot ever fit
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (used_mb_ + size_mb > config_.capacity_mb && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_mb_ -= victim.size_mb;
    index_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, size_mb});
  index_[key] = lru_.begin();
  used_mb_ += size_mb;
}

}  // namespace sdc::yarn
