// Tunables of the simulated YARN deployment, with Hadoop-3.0 defaults
// matching the paper's testbed (§IV-A).
#pragma once

#include "common/sim_time.hpp"
#include "yarn/localization_cache.hpp"
#include "yarn/types.hpp"

namespace sdc::yarn {

struct YarnConfig {
  SchedulerKind scheduler = SchedulerKind::kCapacity;

  /// Enables the per-node localization caching service the paper proposes
  /// as future work (§V-B): repeated packages are served from a dedicated
  /// node-local tier, immune to cluster I/O interference.
  bool enable_localization_cache = false;
  LocalizationCacheConfig localization_cache = {};

  /// Grants a task ask immediately when a node holding its input-block
  /// replicas heartbeats, instead of waiting out the sampled locality
  /// delay — real delay-scheduling semantics (default off: the paper's
  /// measured allocation delays match the slow path).
  bool locality_fast_path = false;

  /// Probe width of the kSampling scheduler (Sparrow-style
  /// least-loaded-of-d placement); ignored by the other schedulers.
  std::int32_t sampling_probe_width = 2;

  /// NodeManager -> ResourceManager heartbeat interval
  /// (yarn.resourcemanager.nodemanagers.heartbeat-interval-ms default).
  SimDuration nm_heartbeat = millis(1000);

  /// Per-container scheduling decision cost in the RM's serial allocation
  /// pipeline.  Its inverse bounds cluster allocation throughput; 350 µs
  /// yields the ~2,800 containers/s ceiling of Table II.
  SimDuration decision_time = micros(350);

  /// Maximum containers the Capacity Scheduler assigns on one node
  /// heartbeat (assign-multiple batch).
  std::int32_t max_assign_per_heartbeat = 128;

  /// Median / lognormal-sigma of one RPC hop (submission, startContainer,
  /// task dispatch).
  SimDuration rpc_median = micros(800);
  double rpc_sigma = 0.40;

  /// Delay-scheduling (locality) wait applied per *task* container ask in
  /// the centralized scheduler: YARN holds each ask back hoping a node
  /// with a local HDFS replica heartbeats first.  Sampled independently
  /// per container, which spreads a batch over time — the source of the
  /// Cl-Cf spread (Fig. 6-b) and of the centralized scheduler's ~1.9 s
  /// median / ~3.7 s p95 aggregated allocation delay (Fig. 7-a).  AM
  /// containers carry no locality preference and skip the wait.
  SimDuration locality_wait_median = millis(700);
  double locality_wait_sigma = 0.80;

  /// Queueing delay inside the opportunistic allocator service before the
  /// (cheap) distributed decisions run; dominates the distributed path's
  /// ~20 ms median / ~100 ms p95 allocation delay (Fig. 7-a).
  SimDuration opportunistic_service_median = millis(16);
  double opportunistic_service_sigma = 1.0;

  /// Delay between RM-side allocation of the *AM* container and the RM's
  /// ApplicationMasterLauncher acquiring + dispatching it (no AM heartbeat
  /// involved for the AM container itself).
  SimDuration am_dispatch_median = millis(12);

  /// Base (package-independent) part of container localization: resource
  /// tracker bookkeeping, directory setup, permissions.
  SimDuration localization_overhead_median = millis(120);
  double localization_overhead_sigma = 0.35;

  /// NM container-scheduler wait for *guaranteed* containers; the paper
  /// reports ~100 ms queuing under the centralized scheduler (Fig. 7-b).
  SimDuration guaranteed_queue_median = millis(80);
  double guaranteed_queue_sigma = 0.50;
};

}  // namespace sdc::yarn
