#include "yarn/launch_model.hpp"

namespace sdc::yarn {

std::string_view instance_code(InstanceType type) {
  switch (type) {
    case InstanceType::kSparkDriver:
      return "spm";
    case InstanceType::kSparkExecutor:
      return "spe";
    case InstanceType::kMrMaster:
      return "mrm";
    case InstanceType::kMrMapTask:
      return "mrsm";
    case InstanceType::kMrReduceTask:
      return "mrsr";
  }
  return "?";
}

SimDuration LaunchModel::base_median(InstanceType type) const {
  switch (type) {
    case InstanceType::kSparkDriver:
      return config_.spark_driver_median;
    case InstanceType::kSparkExecutor:
      return config_.spark_executor_median;
    case InstanceType::kMrMaster:
      return config_.mr_master_median;
    case InstanceType::kMrMapTask:
      return config_.mr_map_median;
    case InstanceType::kMrReduceTask:
      return config_.mr_reduce_median;
  }
  return millis(700);
}

SimDuration LaunchModel::sample(InstanceType type, bool docker,
                                double cpu_multiplier, double io_multiplier,
                                Rng& rng, bool warm_jvm) const {
  SimDuration jvm = rng.lognormal_duration(base_median(type), config_.jvm_sigma);
  jvm = static_cast<SimDuration>(static_cast<double>(jvm) * cpu_multiplier);
  if (warm_jvm) {
    jvm = static_cast<SimDuration>(static_cast<double>(jvm) *
                                   config_.warm_jvm_factor);
  }
  if (!docker) return jvm;
  SimDuration overhead = rng.lognormal_duration(config_.docker_overhead_median,
                                                config_.docker_sigma);
  if (rng.chance(config_.docker_cold_prob)) {
    overhead += rng.lognormal_duration(config_.docker_cold_extra_median,
                                       config_.docker_cold_sigma);
  }
  overhead =
      static_cast<SimDuration>(static_cast<double>(overhead) * io_multiplier);
  return jvm + overhead;
}

}  // namespace sdc::yarn
