#include "yarn/resource_manager.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/log_contract.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "yarn/log_contract.hpp"

namespace sdc::yarn {
namespace {

using contract::render_template;

std::unique_ptr<SchedulerPolicy> make_scheduler(const YarnConfig& config,
                                                Rng rng) {
  switch (config.scheduler) {
    case SchedulerKind::kCapacity:
      return std::make_unique<CapacityScheduler>(config.locality_fast_path);
    case SchedulerKind::kFair:
      return std::make_unique<FairScheduler>(config.locality_fast_path);
    case SchedulerKind::kOpportunistic:
      return std::make_unique<OpportunisticScheduler>(rng);
    case SchedulerKind::kSampling:
      return std::make_unique<OpportunisticScheduler>(
          rng, config.sampling_probe_width);
  }
  return std::make_unique<CapacityScheduler>();
}

}  // namespace

ResourceManager::ResourceManager(cluster::Cluster& cluster,
                                 logging::LogBundle& logs, YarnConfig config,
                                 std::uint64_t seed)
    : cluster_(cluster),
      config_(config),
      launch_model_(),
      logger_(&logs, "rm.log", cluster.config().epoch_base_ms),
      rng_(seed),
      scheduler_(make_scheduler(config, rng_.fork(0x5ced))) {}

ResourceManager::~ResourceManager() {
  for (auto& task : nm_heartbeat_tasks_) task.cancel();
  for (auto& [_, app] : apps_) app.am_heartbeat_task.cancel();
}

void ResourceManager::attach_node_managers(std::vector<NodeManager*> nms) {
  nms_ = std::move(nms);
  nm_by_node_.clear();
  for (NodeManager* nm : nms_) {
    nm_by_node_[nm->node().id()] = nm;
    nm->set_rm_hooks(
        [this](const ContainerId& id) { on_container_running(id); },
        [this](const ContainerId& id) { on_container_finished(id); });
  }
}

void ResourceManager::start() {
  if (started_) return;
  started_ = true;
  // Spread NM heartbeats evenly over the interval (real clusters converge
  // to roughly uniform phases); tiny jitter keeps runs realistic while the
  // seed keeps them reproducible.
  const auto n = static_cast<std::int64_t>(nms_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    NodeManager* nm = nms_[static_cast<std::size_t>(i)];
    const SimTime phase =
        cluster_.engine().now() + (i + 1) * config_.nm_heartbeat / (n + 1) +
        rng_.uniform_int(0, 2000);
    nm_heartbeat_tasks_.push_back(sim::PeriodicTask::start(
        cluster_.engine(), phase, config_.nm_heartbeat, [this, nm] {
          on_node_heartbeat(*nm);
          return true;
        }));
  }
}

ApplicationId ResourceManager::submit(AppSubmission submission) {
  static obs::Counter& submitted =
      obs::catalog_counter(obs::metric::kSimRmAppsSubmitted);
  submitted.add(1);
  const ApplicationId id{cluster_.config().epoch_base_ms, next_app_seq_++};
  auto [it, inserted] = apps_.try_emplace(id);
  assert(inserted);
  RmApp& rm_app = it->second;
  rm_app.id = id;
  rm_app.submission = std::move(submission);
  ++live_apps_;

  logger_.info(cluster_.engine().now(), std::string(kClientRmServiceClass),
               render_template(kRmLineSubmitted.format,
                               {{"seq", std::to_string(id.id)},
                                {"app", id.str()}}));
  // NEW -> NEW_SAVING -> SUBMITTED -> ACCEPTED with state-store and
  // admission latencies in the low milliseconds.
  auto& engine = cluster_.engine();
  engine.schedule_after(sample_rpc(), [this, id] {
    RmApp& a = app(id);
    log_app_transition(a, RmAppState::kNewSaving);
    cluster_.engine().schedule_after(
        rng_.lognormal_duration(millis(3), 0.5), [this, id] {
          RmApp& a2 = app(id);
          log_app_transition(a2, RmAppState::kSubmitted);
          cluster_.engine().schedule_after(
              rng_.lognormal_duration(millis(5), 0.5), [this, id] {
                RmApp& a3 = app(id);
                log_app_transition(a3, RmAppState::kAccepted);
                // Admission done: queue the (guaranteed) AM container ask.
                scheduler_->enqueue(PendingAsk{
                    id, a3.submission.am_resource, 1, a3.submission.am_type,
                    /*am=*/true, /*eligible_at=*/0, /*preferred_nodes=*/{}});
              });
        });
  });
  return id;
}

void ResourceManager::register_attempt(const ApplicationId& app_id,
                                       AmProtocol* am) {
  RmApp& a = app(app_id);
  a.am = am;
  log_app_transition(a, RmAppState::kRunning);
  // AM heartbeat channel: random phase, fixed interval.
  const SimDuration interval = a.submission.am_heartbeat;
  const SimTime first = cluster_.engine().now() +
                        rng_.uniform_int(interval / 10, interval);
  a.am_heartbeat_task = sim::PeriodicTask::start(
      cluster_.engine(), first, interval, [this, app_id] {
        const auto it = apps_.find(app_id);
        if (it == apps_.end() || it->second.finished) return false;
        on_am_heartbeat(it->second);
        return true;
      });
}

void ResourceManager::request_containers(const ApplicationId& app_id,
                                         ContainerAsk ask) {
  RmApp& a = app(app_id);
  if (a.finished) return;
  const bool distributed =
      config_.scheduler == SchedulerKind::kOpportunistic ||
      config_.scheduler == SchedulerKind::kSampling;
  if (distributed) {
    // Direct allocator RPC: decisions in microseconds, allocation and
    // acquisition complete within the same call (paper Fig. 7-a: ~80x
    // faster than the centralized path).  A short service-queue delay
    // dominates the latency.
    const SimDuration service_delay = rng_.lognormal_duration(
        config_.opportunistic_service_median,
        config_.opportunistic_service_sigma);
    cluster_.engine().schedule_after(sample_rpc() + service_delay, [this,
                                                                    app_id,
                                                                    ask] {
      const auto it = apps_.find(app_id);
      if (it == apps_.end() || it->second.finished) return;
      RmApp& a2 = it->second;
      PendingAsk pending{app_id, ask.resource, ask.count, ask.type,
                         /*am=*/false, /*eligible_at=*/0,
                         /*preferred_nodes=*/{}};
      auto nodes = cluster_.nodes();
      const std::vector<Grant> grants =
          scheduler_->assign_immediate(pending, nodes);
      std::vector<Allocation> acquired;
      acquired.reserve(grants.size());
      SimDuration offset = 0;
      for (const Grant& grant : grants) {
        offset += micros(60);  // cheap per-container decision
        const ContainerId cid{app_id, a2.current_attempt, a2.next_container_seq++};
        auto [cit, ok] = containers_.try_emplace(cid);
        assert(ok);
        RmContainer& c = cit->second;
        c.id = cid;
        c.node = grant.node;
        c.resource = grant.resource;
        c.type = grant.type;
        c.opportunistic = true;
        const SimDuration at = offset;
        cluster_.engine().schedule_after(at, [this, cid] {
          RmContainer& rc = container(cid);
          log_container_transition(rc, RmContainerState::kAllocated);
          ++containers_allocated_;
          logger_.info(cluster_.engine().now(),
                       std::string(kOpportunisticSchedulerClass),
                       render_template(kRmLineOpportunisticAllocated.format,
                                       {{"container", cid.str()},
                                        {"host", rc.node.str()}}));
          log_container_transition(rc, RmContainerState::kAcquired);
        });
        acquired.push_back(
            Allocation{cid, grant.node, grant.resource, grant.type, true});
      }
      // Response returns to the AM after the decisions plus one RPC hop.
      cluster_.engine().schedule_after(
          offset + sample_rpc(), [this, app_id, acquired] {
            const auto it2 = apps_.find(app_id);
            if (it2 == apps_.end() || it2->second.finished) return;
            if (it2->second.am) it2->second.am->on_containers_acquired(acquired);
          });
    });
    return;
  }
  // Centralized: the ask rides the next AM heartbeat.
  a.outbox.push_back(ask);
}

void ResourceManager::unregister_attempt(const ApplicationId& app_id) {
  RmApp& a = app(app_id);
  if (a.finished) return;
  a.finished = true;
  a.am_heartbeat_task.cancel();
  if (live_apps_ > 0) --live_apps_;
  log_app_transition(a, RmAppState::kFinalSaving);
  // Reclaim containers that never ran (e.g. the SPARK-21562 over-request
  // leftovers): ALLOCATED/ACQUIRED -> RELEASED.
  for (auto& [cid, c] : containers_) {
    if (cid.app != app_id) continue;
    const RmContainerState s = c.sm.state();
    if (s == RmContainerState::kAllocated || s == RmContainerState::kAcquired) {
      log_container_transition(c, RmContainerState::kReleased);
      if (!c.opportunistic && !c.am) {
        // Guaranteed grants reserved node resources at allocation time.
        node_manager(c.node).node().release(c.resource);
      }
    }
  }
  cluster_.engine().schedule_after(
      rng_.lognormal_duration(millis(4), 0.5), [this, app_id] {
        log_app_transition(app(app_id), RmAppState::kFinished);
      });
}

void ResourceManager::on_container_running(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;
  if (it->second.sm.state() == RmContainerState::kAcquired) {
    log_container_transition(it->second, RmContainerState::kRunning);
  }
}

void ResourceManager::on_container_finished(const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;
  if (it->second.sm.state() == RmContainerState::kRunning) {
    log_container_transition(it->second, RmContainerState::kCompleted);
  }
}

NodeManager& ResourceManager::node_manager(const NodeId& node) {
  const auto it = nm_by_node_.find(node);
  if (it == nm_by_node_.end()) {
    throw std::invalid_argument("ResourceManager: unknown node " + node.str());
  }
  return *it->second;
}

SimDuration ResourceManager::sample_rpc() {
  return rng_.lognormal_duration(config_.rpc_median, config_.rpc_sigma);
}

void ResourceManager::log_app_transition(RmApp& app, RmAppState to) {
  static obs::Counter& transitions =
      obs::catalog_counter(obs::metric::kSimRmAppTransitions);
  transitions.add(1);
  const RmAppState from = app.sm.state();
  app.sm.transition(to);
  logger_.info(cluster_.engine().now(), std::string(kRmAppImplClass),
               render_rm_app_transition(app.id.str(), from, to));
}

void ResourceManager::log_container_transition(RmContainer& container,
                                               RmContainerState to) {
  static obs::Counter& transitions =
      obs::catalog_counter(obs::metric::kSimRmContainerTransitions);
  transitions.add(1);
  if (to == RmContainerState::kAllocated) {
    static obs::Counter& allocated =
        obs::catalog_counter(obs::metric::kSimRmContainersAllocated);
    allocated.add(1);
  }
  const RmContainerState from = container.sm.state();
  container.sm.transition(to);
  logger_.info(cluster_.engine().now(), std::string(kRmContainerImplClass),
               render_rm_container_transition(container.id.str(), from, to));
}

void ResourceManager::on_node_heartbeat(NodeManager& nm) {
  static obs::Counter& heartbeats =
      obs::catalog_counter(obs::metric::kSimRmNodeHeartbeats);
  heartbeats.add(1);
  const std::vector<Grant> grants = scheduler_->assign_on_heartbeat(
      nm.node(), config_.max_assign_per_heartbeat, cluster_.engine().now());
  process_grants(grants);
}

void ResourceManager::process_grants(const std::vector<Grant>& grants) {
  auto& engine = cluster_.engine();
  for (const Grant& grant : grants) {
    const auto ait = apps_.find(grant.app);
    if (ait == apps_.end() || ait->second.finished) continue;
    RmApp& a = ait->second;
    const ContainerId cid{grant.app, a.current_attempt, a.next_container_seq++};
    auto [cit, ok] = containers_.try_emplace(cid);
    assert(ok);
    RmContainer& c = cit->second;
    c.id = cid;
    c.node = grant.node;
    c.resource = grant.resource;
    c.type = grant.type;
    c.am = grant.am;
    c.opportunistic = grant.opportunistic;
    // Serial decision pipeline: each allocation consumes decision_time of
    // the scheduler thread; this bounds cluster-wide allocation throughput
    // (Table II).
    const SimTime alloc_at =
        std::max(engine.now(), alloc_pipeline_free_) + config_.decision_time;
    static obs::Histogram& pipeline_wait =
        obs::catalog_histogram(obs::metric::kSimYarnAllocPipelineWaitMs);
    pipeline_wait.observe(static_cast<double>(alloc_at - engine.now()) / 1000.0);
    alloc_pipeline_free_ = alloc_at;
    engine.schedule_at(alloc_at, [this, cid] { commit_allocation(cid); });
  }
}

void ResourceManager::commit_allocation(const ContainerId& cid) {
  RmContainer& c = container(cid);
  log_container_transition(c, RmContainerState::kAllocated);
  ++containers_allocated_;
  logger_.info(cluster_.engine().now(), std::string(kCapacitySchedulerClass),
               render_template(kRmLineAssignedContainer.format,
                               {{"container", cid.str()},
                                {"resource", c.resource.str()},
                                {"host", c.node.str()}}));
  const auto ait = apps_.find(cid.app);
  if (ait == apps_.end()) return;
  RmApp& a = ait->second;
  if (c.am) {
    // The RM's ApplicationMasterLauncher acquires and dispatches the AM
    // container directly (no AM heartbeat exists yet).
    cluster_.engine().schedule_after(
        rng_.lognormal_duration(config_.am_dispatch_median, 0.4),
        [this, cid] { dispatch_am_container(cid); });
  } else {
    a.awaiting_acquire.push_back(cid);
  }
}

void ResourceManager::dispatch_am_container(const ContainerId& cid) {
  RmContainer& c = container(cid);
  log_container_transition(c, RmContainerState::kAcquired);
  const auto ait = apps_.find(cid.app);
  if (ait == apps_.end() || ait->second.finished) return;
  RmApp& a = ait->second;
  LaunchSpec spec;
  spec.id = cid;
  spec.resource = c.resource;
  spec.type = c.type;
  spec.localization_mb = a.submission.am_localization_mb;
  spec.package_key = a.submission.am_package_key;
  spec.docker = a.submission.docker;
  spec.warm_jvm = a.submission.warm_jvm;
  spec.opportunistic = false;
  spec.failure_probability = a.submission.am_failure_prob;
  const ApplicationId app_id = cid.app;
  const NodeId node_id = c.node;
  auto on_started = a.submission.on_am_started;
  spec.on_process_started = [on_started, app_id, cid, node_id](SimTime t) {
    if (on_started) on_started(app_id, cid, node_id, t);
  };
  spec.on_launch_failed = [this, app_id](SimTime) {
    on_am_launch_failed(app_id);
  };
  NodeManager& nm = node_manager(c.node);
  cluster_.engine().schedule_after(
      sample_rpc(), [&nm, spec = std::move(spec)] { nm.start_container(spec); });
}

void ResourceManager::on_am_launch_failed(const ApplicationId& app_id) {
  const auto it = apps_.find(app_id);
  if (it == apps_.end() || it->second.finished) return;
  RmApp& a = it->second;
  char attempt_text[96];
  std::snprintf(attempt_text, sizeof(attempt_text), "appattempt_%lld_%04d_%06d",
                static_cast<long long>(app_id.cluster_ts), app_id.id,
                a.current_attempt);
  logger_.warn(cluster_.engine().now(), std::string(kRmAppAttemptImplClass),
               render_template(kRmLineAttemptFailed.format,
                               {{"attempt", attempt_text}}));
  if (a.current_attempt >= a.submission.max_am_attempts) {
    fail_application(app_id);
    return;
  }
  // Next attempt: container numbering restarts at 1 within the attempt.
  ++a.current_attempt;
  a.next_container_seq = 1;
  scheduler_->enqueue(PendingAsk{app_id, a.submission.am_resource, 1,
                                 a.submission.am_type, /*am=*/true,
                                 /*eligible_at=*/0, /*preferred_nodes=*/{}});
}

void ResourceManager::fail_application(const ApplicationId& app_id) {
  const auto it = apps_.find(app_id);
  if (it == apps_.end() || it->second.finished) return;
  RmApp& a = it->second;
  a.finished = true;
  a.am_heartbeat_task.cancel();
  if (live_apps_ > 0) --live_apps_;
  log_app_transition(a, RmAppState::kFinalSaving);
  cluster_.engine().schedule_after(
      rng_.lognormal_duration(millis(4), 0.5), [this, app_id] {
        log_app_transition(app(app_id), RmAppState::kFinished);
      });
}

void ResourceManager::on_am_heartbeat(RmApp& a) {
  static obs::Counter& heartbeats =
      obs::catalog_counter(obs::metric::kSimRmAmHeartbeats);
  heartbeats.add(1);
  // 1. Flush asks that were waiting to ride this heartbeat.  Each task
  //    container gets its own independently-sampled locality wait, so a
  //    batch spreads over several scheduling opportunities (Fig. 6-b).
  while (!a.outbox.empty()) {
    const ContainerAsk ask = a.outbox.front();
    a.outbox.pop_front();
    for (std::int32_t i = 0; i < ask.count; ++i) {
      const SimTime eligible =
          cluster_.engine().now() +
          rng_.lognormal_duration(config_.locality_wait_median,
                                  config_.locality_wait_sigma);
      PendingAsk pending{a.id, ask.resource, 1, ask.type,
                         /*am=*/false, eligible, /*preferred_nodes=*/{}};
      if (!ask.preferred_nodes.empty()) {
        // Each container prefers a replica subset, like one input split.
        const std::size_t width =
            std::min<std::size_t>(3, ask.preferred_nodes.size());
        for (std::size_t p = 0; p < width; ++p) {
          pending.preferred_nodes.push_back(
              ask.preferred_nodes[static_cast<std::size_t>(rng_.uniform_int(
                  0,
                  static_cast<std::int64_t>(ask.preferred_nodes.size()) - 1))]);
        }
      }
      scheduler_->enqueue(std::move(pending));
    }
  }
  // 2. Pick up allocations: ALLOCATED -> ACQUIRED (Fig. 7-c interval).
  if (a.awaiting_acquire.empty() || a.am == nullptr) return;
  std::vector<Allocation> acquired;
  while (!a.awaiting_acquire.empty()) {
    const ContainerId cid = a.awaiting_acquire.front();
    a.awaiting_acquire.pop_front();
    RmContainer& c = container(cid);
    log_container_transition(c, RmContainerState::kAcquired);
    acquired.push_back(Allocation{cid, c.node, c.resource, c.type, false});
  }
  // Response reaches the AM after one RPC hop.
  const ApplicationId app_id = a.id;
  cluster_.engine().schedule_after(sample_rpc(), [this, app_id, acquired] {
    const auto it = apps_.find(app_id);
    if (it == apps_.end() || it->second.finished || it->second.am == nullptr)
      return;
    it->second.am->on_containers_acquired(acquired);
  });
}

ResourceManager::RmApp& ResourceManager::app(const ApplicationId& id) {
  const auto it = apps_.find(id);
  if (it == apps_.end()) {
    throw std::invalid_argument("ResourceManager: unknown app " + id.str());
  }
  return it->second;
}

ResourceManager::RmContainer& ResourceManager::container(
    const ContainerId& id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("ResourceManager: unknown container " +
                                id.str());
  }
  return it->second;
}

}  // namespace sdc::yarn
