// Scheduler policies of the ResourceManager (paper §IV-C).
//
// Two concrete policies, matching the paper's Hadoop-3.0 deployment:
//
//   * CapacityScheduler — centralized.  Demand queues at the RM; grants
//     happen when NodeManager heartbeats arrive and the node has free
//     capacity, up to an assign-multiple batch per heartbeat.  Node
//     resources are reserved at grant time.
//   * OpportunisticScheduler — distributed.  Non-AM asks are granted
//     *immediately* on the allocate call by picking nodes uniformly at
//     random with NO capacity check; containers queue at the chosen
//     NodeManager when it is busy (the Fig. 7-b queuing-delay pathology).
//     AM containers remain guaranteed and take the centralized path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "cluster/node.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "yarn/types.hpp"

namespace sdc::yarn {

/// One queued unit of demand (a batch ask, possibly partially satisfied).
struct PendingAsk {
  ApplicationId app;
  cluster::Resource resource;
  std::int32_t remaining = 1;
  InstanceType type = InstanceType::kSparkExecutor;
  bool am = false;
  /// Delay-scheduling (locality wait): the Capacity Scheduler will not
  /// grant this ask before this time — task asks carry HDFS block
  /// locality preferences and YARN holds them back a little hoping for a
  /// local node.  0 = immediately eligible (AM containers).
  SimTime eligible_at = 0;
  /// Nodes holding replicas of the ask's input blocks; with the locality
  /// fast path enabled, a preferred node's heartbeat grants immediately.
  std::vector<NodeId> preferred_nodes = {};
};

/// One scheduler decision: which app gets a container where.
struct Grant {
  ApplicationId app;
  NodeId node;
  cluster::Resource resource;
  InstanceType type = InstanceType::kSparkExecutor;
  bool am = false;
  bool opportunistic = false;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual SchedulerKind kind() const = 0;

  /// Adds demand to the centralized queue (always used for AM asks; used
  /// for all asks under the Capacity Scheduler).
  virtual void enqueue(PendingAsk ask) = 0;

  /// Called when `node`'s heartbeat arrives at simulation time `now`;
  /// returns up to `max_assign` grants that fit the node (reserving its
  /// resources).  Asks whose locality wait has not elapsed are skipped.
  virtual std::vector<Grant> assign_on_heartbeat(cluster::Node& node,
                                                 std::int32_t max_assign,
                                                 SimTime now) = 0;

  /// Immediate (distributed) path; only meaningful for the opportunistic
  /// scheduler, which returns one grant per requested container.  The
  /// Capacity Scheduler returns empty (callers then enqueue instead).
  virtual std::vector<Grant> assign_immediate(
      const PendingAsk& ask, std::vector<cluster::Node*>& nodes) = 0;

  /// Containers still waiting in the centralized queue.
  [[nodiscard]] virtual std::int64_t pending_containers() const = 0;
};

/// Centralized FIFO capacity scheduler.  With `locality_fast_path` a
/// heartbeat from a node in an ask's preferred set grants immediately,
/// even before the locality wait elapses — true delay-scheduling [5]
/// semantics (off by default; the paper's testbed measurements behave
/// like the slow path, see bench_optimizations).
class CapacityScheduler final : public SchedulerPolicy {
 public:
  explicit CapacityScheduler(bool locality_fast_path = false)
      : locality_fast_path_(locality_fast_path) {}

  [[nodiscard]] std::string_view name() const override {
    return "CapacityScheduler";
  }
  [[nodiscard]] SchedulerKind kind() const override {
    return SchedulerKind::kCapacity;
  }
  void enqueue(PendingAsk ask) override;
  std::vector<Grant> assign_on_heartbeat(cluster::Node& node,
                                         std::int32_t max_assign,
                                         SimTime now) override;
  std::vector<Grant> assign_immediate(
      const PendingAsk& ask, std::vector<cluster::Node*>& nodes) override;
  [[nodiscard]] std::int64_t pending_containers() const override;

 private:
  std::deque<PendingAsk> queue_;
  bool locality_fast_path_;
};

/// Centralized fair-share scheduler: at every heartbeat, grants go to the
/// application currently holding the fewest granted containers (deficit
/// round-robin), instead of FIFO order.  Same locality-wait semantics as
/// the Capacity Scheduler.  Under a mixed tenancy this equalizes per-app
/// allocation delay at the cost of delaying early heavy askers.
class FairScheduler final : public SchedulerPolicy {
 public:
  explicit FairScheduler(bool locality_fast_path = false)
      : locality_fast_path_(locality_fast_path) {}

  [[nodiscard]] std::string_view name() const override {
    return "FairScheduler";
  }
  [[nodiscard]] SchedulerKind kind() const override {
    return SchedulerKind::kFair;
  }
  void enqueue(PendingAsk ask) override;
  std::vector<Grant> assign_on_heartbeat(cluster::Node& node,
                                         std::int32_t max_assign,
                                         SimTime now) override;
  std::vector<Grant> assign_immediate(
      const PendingAsk& ask, std::vector<cluster::Node*>& nodes) override;
  [[nodiscard]] std::int64_t pending_containers() const override;

  /// Containers granted so far to `app` (fair-share bookkeeping).
  [[nodiscard]] std::int64_t granted_to(const ApplicationId& app) const;

 private:
  std::deque<PendingAsk> queue_;
  std::map<ApplicationId, std::int64_t> granted_;
  bool locality_fast_path_;
};

/// Distributed opportunistic scheduler (Mercury-style, Hadoop 3.0's
/// OpportunisticContainerAllocator).  With `probe_width` > 1 it becomes a
/// Sparrow-style sampler: each container probes that many random nodes
/// and lands on the least-loaded one (by queued opportunistic containers,
/// then by free vcores) — trading a little probing latency for far
/// shorter node queues under load.
class OpportunisticScheduler final : public SchedulerPolicy {
 public:
  explicit OpportunisticScheduler(Rng rng, std::int32_t probe_width = 1)
      : rng_(rng), probe_width_(probe_width < 1 ? 1 : probe_width) {}

  [[nodiscard]] std::string_view name() const override {
    return "OpportunisticScheduler";
  }
  [[nodiscard]] SchedulerKind kind() const override {
    return SchedulerKind::kOpportunistic;
  }
  void enqueue(PendingAsk ask) override;
  std::vector<Grant> assign_on_heartbeat(cluster::Node& node,
                                         std::int32_t max_assign,
                                         SimTime now) override;
  std::vector<Grant> assign_immediate(
      const PendingAsk& ask, std::vector<cluster::Node*>& nodes) override;
  [[nodiscard]] std::int64_t pending_containers() const override;

  [[nodiscard]] std::int32_t probe_width() const noexcept {
    return probe_width_;
  }

 private:
  /// Picks the target node for one container among `probe_width_` random
  /// candidates.
  [[nodiscard]] cluster::Node* pick_node(
      std::vector<cluster::Node*>& nodes, const cluster::Resource& ask);

  // AM (guaranteed) demand still flows through a centralized queue.
  CapacityScheduler guaranteed_;
  Rng rng_;
  std::int32_t probe_width_;
};

}  // namespace sdc::yarn
