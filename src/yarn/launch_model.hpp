// Container launch-delay cost model (paper §IV-C, Fig. 9).
//
// "Launching delay" spans the NodeManager invoking the launch script to
// the launched process writing its first log line — dominated by JVM
// start (classloading, -verbose banner).  Medians calibrated to Fig. 9-a:
// ~700 ms for Spark driver/executor, slightly longer for MapReduce
// instances.  Docker adds an image-load + mount overhead with a long tail
// (Fig. 9-b: +350 ms median, +658 ms at p95; 2.65 GB image).
#pragma once

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "yarn/types.hpp"

namespace sdc::yarn {

struct LaunchModelConfig {
  SimDuration spark_driver_median = millis(700);
  SimDuration spark_executor_median = millis(690);
  SimDuration mr_master_median = millis(930);
  SimDuration mr_map_median = millis(860);
  SimDuration mr_reduce_median = millis(880);
  double jvm_sigma = 0.28;

  /// Docker image load + rootfs mount overhead.
  SimDuration docker_overhead_median = millis(340);
  double docker_sigma = 0.42;
  /// Probability of a cold image-cache path (long-tail I/O).
  double docker_cold_prob = 0.06;
  SimDuration docker_cold_extra_median = millis(900);
  double docker_cold_sigma = 0.5;

  /// Fraction of the JVM-start cost that remains when launching from a
  /// pre-warmed JVM pool (§V-B "JVM reuse"): classes loaded, JIT warm.
  double warm_jvm_factor = 0.25;
};

class LaunchModel {
 public:
  explicit LaunchModel(LaunchModelConfig config = {}) : config_(config) {}

  [[nodiscard]] const LaunchModelConfig& config() const noexcept {
    return config_;
  }

  /// Median JVM-start time for an instance type (no interference, no
  /// Docker).
  [[nodiscard]] SimDuration base_median(InstanceType type) const;

  /// Samples one launch delay.  `cpu_multiplier` stretches the JVM phase
  /// (launching is CPU-intensive, §IV-E); `io_multiplier` stretches the
  /// Docker image-load portion only; `warm_jvm` launches from a pre-warmed
  /// pool at a fraction of the JVM-start cost.
  [[nodiscard]] SimDuration sample(InstanceType type, bool docker,
                                   double cpu_multiplier, double io_multiplier,
                                   Rng& rng, bool warm_jvm = false) const;

 private:
  LaunchModelConfig config_;
};

}  // namespace sdc::yarn
