// The three logged state machines SDchecker mines (paper §III-A):
//
//   RMAppImpl        (ResourceManager)  — application lifecycle
//   RMContainerImpl  (ResourceManager)  — container allocation lifecycle
//   ContainerImpl    (NodeManager)      — container execution lifecycle
//
// Each transition is validated against the legal-transition table and
// rendered as the exact log line the real daemon would emit; this is the
// contract between the simulator and the log miner.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sdc::yarn {

/// RMAppImpl states (YARN's RMAppState).
enum class RmAppState {
  kNew,
  kNewSaving,
  kSubmitted,
  kAccepted,
  kRunning,
  kFinalSaving,
  kFinished,
};

/// RMContainerImpl states (YARN's RMContainerState).
enum class RmContainerState {
  kNew,
  kAllocated,
  kAcquired,
  kRunning,
  kCompleted,
  kReleased,
};

/// NodeManager ContainerImpl states (paper Table I rows 6-8).
enum class NmContainerState {
  kNew,
  kLocalizing,
  kScheduled,
  kRunning,
  kExitedWithSuccess,
  kExitedWithFailure,
  kDone,
};

std::string_view name(RmAppState s);
std::string_view name(RmContainerState s);
std::string_view name(NmContainerState s);

/// YARN event names attached to RMAppImpl transitions (the paper keys on
/// `ATTEMPT_REGISTERED` to mark AppMaster registration).
std::string_view rm_app_event(RmAppState from, RmAppState to);

[[nodiscard]] bool is_legal_transition(RmAppState from, RmAppState to);
[[nodiscard]] bool is_legal_transition(RmContainerState from,
                                       RmContainerState to);
[[nodiscard]] bool is_legal_transition(NmContainerState from,
                                       NmContainerState to);

/// Thrown when a simulated daemon attempts an illegal state transition —
/// always a bug in the simulator, never a recoverable condition.
class IllegalTransition : public std::logic_error {
 public:
  IllegalTransition(std::string_view machine, std::string_view from,
                    std::string_view to);
};

/// Tracks current state and validates transitions.  `Enum` is one of the
/// three state enums above.  Transition side effects (log emission) are
/// the caller's responsibility so that timing stays in the daemons.
template <typename Enum>
class StateMachine {
 public:
  explicit StateMachine(Enum initial, std::string machine_name)
      : state_(initial), machine_(std::move(machine_name)) {}

  [[nodiscard]] Enum state() const noexcept { return state_; }

  /// Moves to `to`, throwing IllegalTransition if the edge is not legal.
  void transition(Enum to) {
    if (!is_legal_transition(state_, to)) {
      throw IllegalTransition(machine_, name(state_), name(to));
    }
    state_ = to;
  }

 private:
  Enum state_;
  std::string machine_;
};

/// Fully qualified logger names, as they appear in real YARN logs.
inline constexpr std::string_view kRmAppImplClass =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
inline constexpr std::string_view kRmContainerImplClass =
    "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl";
inline constexpr std::string_view kNmContainerImplClass =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
    "ContainerImpl";
inline constexpr std::string_view kCapacitySchedulerClass =
    "org.apache.hadoop.yarn.server.resourcemanager.scheduler.capacity."
    "CapacityScheduler";
inline constexpr std::string_view kOpportunisticSchedulerClass =
    "org.apache.hadoop.yarn.server.resourcemanager.scheduler.distributed."
    "OpportunisticContainerAllocatorAMService";

/// Renders the RMAppImpl transition line, e.g.
/// `application_..._0001 State change from SUBMITTED to ACCEPTED on event =
///  APP_ACCEPTED`.
std::string render_rm_app_transition(const std::string& app_id,
                                     RmAppState from, RmAppState to);

/// Renders the RMContainerImpl transition line, e.g.
/// `container_... Container Transitioned from NEW to ALLOCATED`.
std::string render_rm_container_transition(const std::string& container_id,
                                           RmContainerState from,
                                           RmContainerState to);

/// Renders the NodeManager ContainerImpl transition line, e.g.
/// `Container container_... transitioned from LOCALIZING to SCHEDULED`.
std::string render_nm_container_transition(const std::string& container_id,
                                           NmContainerState from,
                                           NmContainerState to);

}  // namespace sdc::yarn
