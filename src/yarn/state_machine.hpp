// The three logged state machines SDchecker mines (paper §III-A):
//
//   RMAppImpl        (ResourceManager)  — application lifecycle
//   RMContainerImpl  (ResourceManager)  — container allocation lifecycle
//   ContainerImpl    (NodeManager)      — container execution lifecycle
//
// Each machine is declared as introspectable `constexpr` data: the state
// names, the legal-transition edges (with the YARN event token attached
// to the rendered line and the Table-I event the miner must extract from
// it), the terminal states, and the exact log-line template the daemon
// emits.  The runtime validation (`is_legal_transition`), the log
// rendering (`render_*_transition`), and the `sdlint` static contract
// checker all read the same tables, so the simulator, the miner, and the
// lint gate cannot drift apart silently.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sdc::yarn {

/// RMAppImpl states (YARN's RMAppState).
enum class RmAppState {
  kNew,
  kNewSaving,
  kSubmitted,
  kAccepted,
  kRunning,
  kFinalSaving,
  kFinished,
};

/// RMContainerImpl states (YARN's RMContainerState).
enum class RmContainerState {
  kNew,
  kAllocated,
  kAcquired,
  kRunning,
  kCompleted,
  kReleased,
};

/// NodeManager ContainerImpl states (paper Table I rows 6-8).
enum class NmContainerState {
  kNew,
  kLocalizing,
  kScheduled,
  kRunning,
  kExitedWithSuccess,
  kExitedWithFailure,
  kDone,
};

// --- introspectable machine tables ------------------------------------------

/// One legal edge of a logged state machine.  `event` is the YARN event
/// token rendered into the line ("" when the machine's template has no
/// `{event}` slot); `emits` is the `sdc::checker::event_name()` of the
/// Table-I / auxiliary event the miner extractor must produce from the
/// rendered line ("" when the miner must stay silent on it).
template <typename Enum>
struct TransitionEdge {
  Enum from;
  Enum to;
  std::string_view event{};
  std::string_view emits{};
};

/// State names, indexed by the enum's underlying value.
inline constexpr std::string_view kRmAppStateNames[] = {
    "NEW",     "NEW_SAVING",   "SUBMITTED", "ACCEPTED",
    "RUNNING", "FINAL_SAVING", "FINISHED",
};
inline constexpr std::string_view kRmContainerStateNames[] = {
    "NEW", "ALLOCATED", "ACQUIRED", "RUNNING", "COMPLETED", "RELEASED",
};
inline constexpr std::string_view kNmContainerStateNames[] = {
    "NEW",
    "LOCALIZING",
    "SCHEDULED",
    "RUNNING",
    "EXITED_WITH_SUCCESS",
    "EXITED_WITH_FAILURE",
    "DONE",
};

inline constexpr TransitionEdge<RmAppState> kRmAppEdges[] = {
    {RmAppState::kNew, RmAppState::kNewSaving, "START", ""},
    {RmAppState::kNewSaving, RmAppState::kSubmitted, "APP_NEW_SAVED",
     "SUBMITTED"},
    {RmAppState::kSubmitted, RmAppState::kAccepted, "APP_ACCEPTED",
     "ACCEPTED"},
    {RmAppState::kAccepted, RmAppState::kRunning, "ATTEMPT_REGISTERED",
     "APT_REGISTERED"},
    // ACCEPTED -> FINAL_SAVING covers applications whose AM attempts all
    // failed before registering (YARN's ACCEPTED -> FAILED analog).
    {RmAppState::kAccepted, RmAppState::kFinalSaving, "ATTEMPT_FAILED", ""},
    {RmAppState::kRunning, RmAppState::kFinalSaving, "ATTEMPT_UNREGISTERED",
     ""},
    {RmAppState::kFinalSaving, RmAppState::kFinished, "APP_UPDATE_SAVED",
     "APP_FINISHED"},
};

inline constexpr TransitionEdge<RmContainerState> kRmContainerEdges[] = {
    {RmContainerState::kNew, RmContainerState::kAllocated, "", "ALLOCATED"},
    {RmContainerState::kAllocated, RmContainerState::kAcquired, "",
     "ACQUIRED"},
    // Unacquired allocations can be reclaimed (RELEASED) — the path the
    // SPARK-21562 over-request bug leaves in the logs.
    {RmContainerState::kAllocated, RmContainerState::kReleased, "",
     "RM_RELEASED"},
    {RmContainerState::kAcquired, RmContainerState::kRunning, "",
     "RM_RUNNING"},
    {RmContainerState::kAcquired, RmContainerState::kReleased, "",
     "RM_RELEASED"},
    {RmContainerState::kRunning, RmContainerState::kCompleted, "",
     "RM_COMPLETED"},
    {RmContainerState::kRunning, RmContainerState::kReleased, "",
     "RM_RELEASED"},
};

inline constexpr TransitionEdge<NmContainerState> kNmContainerEdges[] = {
    {NmContainerState::kNew, NmContainerState::kLocalizing, "", "LOCALIZING"},
    {NmContainerState::kLocalizing, NmContainerState::kScheduled, "",
     "SCHEDULED"},
    {NmContainerState::kScheduled, NmContainerState::kRunning, "", "RUNNING"},
    {NmContainerState::kRunning, NmContainerState::kExitedWithSuccess, "",
     "NM_EXITED"},
    {NmContainerState::kRunning, NmContainerState::kExitedWithFailure, "",
     "NM_FAILED"},
    {NmContainerState::kExitedWithSuccess, NmContainerState::kDone, "", ""},
    {NmContainerState::kExitedWithFailure, NmContainerState::kDone, "", ""},
};

inline constexpr std::size_t kRmAppTerminals[] = {
    static_cast<std::size_t>(RmAppState::kFinished)};
inline constexpr std::size_t kRmContainerTerminals[] = {
    static_cast<std::size_t>(RmContainerState::kCompleted),
    static_cast<std::size_t>(RmContainerState::kReleased)};
inline constexpr std::size_t kNmContainerTerminals[] = {
    static_cast<std::size_t>(NmContainerState::kDone)};

/// Fully qualified logger names, as they appear in real YARN logs.
inline constexpr std::string_view kRmAppImplClass =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl";
inline constexpr std::string_view kRmContainerImplClass =
    "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl";
inline constexpr std::string_view kNmContainerImplClass =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.container."
    "ContainerImpl";
inline constexpr std::string_view kCapacitySchedulerClass =
    "org.apache.hadoop.yarn.server.resourcemanager.scheduler.capacity."
    "CapacityScheduler";
inline constexpr std::string_view kOpportunisticSchedulerClass =
    "org.apache.hadoop.yarn.server.resourcemanager.scheduler.distributed."
    "OpportunisticContainerAllocatorAMService";

/// The exact message templates the state machines emit.  `{id}` is the
/// application/container id, `{from}`/`{to}` the state names, `{event}`
/// the YARN event token of the taken edge.
inline constexpr std::string_view kRmAppLineFormat =
    "{id} State change from {from} to {to} on event = {event}";
inline constexpr std::string_view kRmContainerLineFormat =
    "{id} Container Transitioned from {from} to {to}";
inline constexpr std::string_view kNmContainerLineFormat =
    "Container {id} transitioned from {from} to {to}";

/// Type-erased view of one machine's tables, consumed by sdlint.
struct MachineDescriptor {
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    std::string_view event;
    std::string_view emits;
  };
  /// Short class name ("RMAppImpl") — the miner's dispatch key.
  std::string_view name;
  std::string_view logger_class;
  std::string_view line_format;
  /// Canonical kind of the `{id}` placeholder: "application" or
  /// "container".
  std::string_view id_kind;
  std::span<const std::string_view> state_names;
  std::size_t initial = 0;
  std::span<const std::size_t> terminals;
  std::span<const Edge> edges;
};

/// The three machines, in a stable order (RMAppImpl, RMContainerImpl,
/// ContainerImpl).
std::span<const MachineDescriptor> machine_descriptors();

// --- runtime API (implemented over the tables above) -------------------------

std::string_view name(RmAppState s);
std::string_view name(RmContainerState s);
std::string_view name(NmContainerState s);

/// YARN event names attached to RMAppImpl transitions (the paper keys on
/// `ATTEMPT_REGISTERED` to mark AppMaster registration).
std::string_view rm_app_event(RmAppState from, RmAppState to);

[[nodiscard]] bool is_legal_transition(RmAppState from, RmAppState to);
[[nodiscard]] bool is_legal_transition(RmContainerState from,
                                       RmContainerState to);
[[nodiscard]] bool is_legal_transition(NmContainerState from,
                                       NmContainerState to);

/// Thrown when a simulated daemon attempts an illegal state transition —
/// always a bug in the simulator, never a recoverable condition.
class IllegalTransition : public std::logic_error {
 public:
  IllegalTransition(std::string_view machine, std::string_view from,
                    std::string_view to);
};

/// Tracks current state and validates transitions.  `Enum` is one of the
/// three state enums above.  Transition side effects (log emission) are
/// the caller's responsibility so that timing stays in the daemons.
template <typename Enum>
class StateMachine {
 public:
  explicit StateMachine(Enum initial, std::string machine_name)
      : state_(initial), machine_(std::move(machine_name)) {}

  [[nodiscard]] Enum state() const noexcept { return state_; }

  /// Moves to `to`, throwing IllegalTransition if the edge is not legal.
  void transition(Enum to) {
    if (!is_legal_transition(state_, to)) {
      throw IllegalTransition(machine_, name(state_), name(to));
    }
    state_ = to;
  }

 private:
  Enum state_;
  std::string machine_;
};

/// Renders the RMAppImpl transition line, e.g.
/// `application_..._0001 State change from SUBMITTED to ACCEPTED on event =
///  APP_ACCEPTED`.
std::string render_rm_app_transition(const std::string& app_id,
                                     RmAppState from, RmAppState to);

/// Renders the RMContainerImpl transition line, e.g.
/// `container_... Container Transitioned from NEW to ALLOCATED`.
std::string render_rm_container_transition(const std::string& container_id,
                                           RmContainerState from,
                                           RmContainerState to);

/// Renders the NodeManager ContainerImpl transition line, e.g.
/// `Container container_... transitioned from LOCALIZING to SCHEDULED`.
std::string render_nm_container_transition(const std::string& container_id,
                                           NmContainerState from,
                                           NmContainerState to);

}  // namespace sdc::yarn
