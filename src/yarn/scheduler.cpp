#include "yarn/scheduler.hpp"

#include <algorithm>

namespace sdc::yarn {

void CapacityScheduler::enqueue(PendingAsk ask) {
  if (ask.remaining <= 0) return;
  queue_.push_back(ask);
}

std::vector<Grant> CapacityScheduler::assign_on_heartbeat(
    cluster::Node& node, std::int32_t max_assign, SimTime now) {
  std::vector<Grant> grants;
  std::int32_t budget = max_assign;
  for (auto it = queue_.begin(); it != queue_.end() && budget > 0;) {
    PendingAsk& ask = *it;
    if (ask.eligible_at > now) {
      // Locality wait not yet elapsed: the fast path lets a *preferred*
      // node's heartbeat take the ask anyway (node-local assignment).
      const bool preferred =
          locality_fast_path_ &&
          std::find(ask.preferred_nodes.begin(), ask.preferred_nodes.end(),
                    node.id()) != ask.preferred_nodes.end();
      if (!preferred) {
        ++it;
        continue;
      }
    }
    while (ask.remaining > 0 && budget > 0 && node.try_allocate(ask.resource)) {
      grants.push_back(Grant{ask.app, node.id(), ask.resource, ask.type,
                             ask.am, /*opportunistic=*/false});
      --ask.remaining;
      --budget;
    }
    if (ask.remaining == 0) {
      it = queue_.erase(it);
    } else {
      // Node cannot fit this shape; later (possibly smaller) asks may
      // still fit — keep scanning FIFO order.
      ++it;
    }
  }
  return grants;
}

std::vector<Grant> CapacityScheduler::assign_immediate(
    const PendingAsk& /*ask*/, std::vector<cluster::Node*>& /*nodes*/) {
  return {};  // Centralized scheduler has no immediate path.
}

std::int64_t CapacityScheduler::pending_containers() const {
  std::int64_t n = 0;
  for (const auto& ask : queue_) n += ask.remaining;
  return n;
}

void FairScheduler::enqueue(PendingAsk ask) {
  if (ask.remaining <= 0) return;
  queue_.push_back(ask);
}

std::vector<Grant> FairScheduler::assign_on_heartbeat(cluster::Node& node,
                                                      std::int32_t max_assign,
                                                      SimTime now) {
  std::vector<Grant> grants;
  std::int32_t budget = max_assign;
  while (budget > 0) {
    // Pick the eligible ask whose application holds the fewest granted
    // containers (deficit round-robin); AM asks always go first.
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->remaining <= 0) continue;
      if (it->eligible_at > now) {
        const bool preferred =
            locality_fast_path_ &&
            std::find(it->preferred_nodes.begin(), it->preferred_nodes.end(),
                      node.id()) != it->preferred_nodes.end();
        if (!preferred) continue;
      }
      if (!node.available().fits(it->resource)) continue;
      if (best == queue_.end()) {
        best = it;
        continue;
      }
      const auto score = [this](const PendingAsk& ask) {
        return std::make_pair(!ask.am, granted_[ask.app]);
      };
      if (score(*it) < score(*best)) best = it;
    }
    if (best == queue_.end()) break;
    if (!node.try_allocate(best->resource)) break;
    grants.push_back(Grant{best->app, node.id(), best->resource, best->type,
                           best->am, /*opportunistic=*/false});
    ++granted_[best->app];
    --budget;
    if (--best->remaining == 0) queue_.erase(best);
  }
  return grants;
}

std::vector<Grant> FairScheduler::assign_immediate(
    const PendingAsk& /*ask*/, std::vector<cluster::Node*>& /*nodes*/) {
  return {};  // centralized: no immediate path
}

std::int64_t FairScheduler::pending_containers() const {
  std::int64_t n = 0;
  for (const auto& ask : queue_) n += ask.remaining;
  return n;
}

std::int64_t FairScheduler::granted_to(const ApplicationId& app) const {
  const auto it = granted_.find(app);
  return it == granted_.end() ? 0 : it->second;
}

void OpportunisticScheduler::enqueue(PendingAsk ask) {
  // Only guaranteed (AM) demand queues centrally; opportunistic asks must
  // use assign_immediate.
  guaranteed_.enqueue(ask);
}

std::vector<Grant> OpportunisticScheduler::assign_on_heartbeat(
    cluster::Node& node, std::int32_t max_assign, SimTime now) {
  return guaranteed_.assign_on_heartbeat(node, max_assign, now);
}

cluster::Node* OpportunisticScheduler::pick_node(
    std::vector<cluster::Node*>& nodes, const cluster::Resource& ask) {
  cluster::Node* best = nullptr;
  for (std::int32_t probe = 0; probe < probe_width_; ++probe) {
    cluster::Node* candidate = nodes[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    if (best == nullptr) {
      best = candidate;
      continue;
    }
    // Prefer the shorter opportunistic queue; break ties by free vcores
    // after the prospective allocation.
    const auto score = [&ask](const cluster::Node& node) {
      return std::make_pair(node.queued_opportunistic(),
                            -(node.available().vcores - ask.vcores));
    };
    if (score(*candidate) < score(*best)) best = candidate;
  }
  return best;
}

std::vector<Grant> OpportunisticScheduler::assign_immediate(
    const PendingAsk& ask, std::vector<cluster::Node*>& nodes) {
  std::vector<Grant> grants;
  if (nodes.empty()) return grants;
  grants.reserve(static_cast<std::size_t>(ask.remaining));
  for (std::int32_t i = 0; i < ask.remaining; ++i) {
    // probe_width == 1: random node choice with no view of global load —
    // the design choice the paper blames for the 53 s queuing tail
    // (Fig. 7-b).  probe_width > 1: Sparrow-style least-loaded-of-d.
    const cluster::Node* node = pick_node(nodes, ask.resource);
    grants.push_back(Grant{ask.app, node->id(), ask.resource, ask.type,
                           /*am=*/false, /*opportunistic=*/true});
  }
  return grants;
}

std::int64_t OpportunisticScheduler::pending_containers() const {
  return guaranteed_.pending_containers();
}

}  // namespace sdc::yarn
