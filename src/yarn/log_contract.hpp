// Non-transition log lines the simulated YARN daemons emit, declared as
// introspectable `constexpr` templates (see common/log_contract.hpp).
// None of these lines carries a Table-I event — the contract they pin is
// that the miner's extractor stays *silent* on them, so an informational
// line can never masquerade as a scheduling milestone.
#pragma once

#include <span>

#include "common/log_contract.hpp"
#include "yarn/state_machine.hpp"

namespace sdc::yarn {

inline constexpr std::string_view kClientRmServiceClass =
    "org.apache.hadoop.yarn.server.resourcemanager.ClientRMService";
inline constexpr std::string_view kRmAppAttemptImplClass =
    "org.apache.hadoop.yarn.server.resourcemanager.rmapp.attempt."
    "RMAppAttemptImpl";
inline constexpr std::string_view kLocalizationServiceClass =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.localizer."
    "ResourceLocalizationService";
inline constexpr std::string_view kContainerSchedulerClass =
    "org.apache.hadoop.yarn.server.nodemanager.containermanager.scheduler."
    "ContainerScheduler";

// --- ResourceManager ---------------------------------------------------------

inline constexpr contract::MilestoneSpec kRmLineSubmitted{
    "yarn.rm.client_submitted", kClientRmServiceClass,
    "Application with id {seq} submitted by user sdchecker: {app}", "",
    contract::StreamRole::kResourceManager};
inline constexpr contract::MilestoneSpec kRmLineAssignedContainer{
    "yarn.rm.capacity_assigned", kCapacitySchedulerClass,
    "Assigned container {container} of capacity {resource} on host {host}", "",
    contract::StreamRole::kResourceManager};
inline constexpr contract::MilestoneSpec kRmLineOpportunisticAllocated{
    "yarn.rm.opportunistic_allocated", kOpportunisticSchedulerClass,
    "Allocated opportunistic container {container} on host {host}", "",
    contract::StreamRole::kResourceManager};
inline constexpr contract::MilestoneSpec kRmLineAttemptFailed{
    "yarn.rm.attempt_failed", kRmAppAttemptImplClass,
    "{attempt} State change from LAUNCHED to FAILED (AM container exited)", "",
    contract::StreamRole::kResourceManager};

// --- NodeManager -------------------------------------------------------------

inline constexpr contract::MilestoneSpec kNmLineOpportunisticQueued{
    "yarn.nm.opportunistic_queued", kContainerSchedulerClass,
    "Opportunistic container {container} will be queued, node resources "
    "exhausted",
    "", contract::StreamRole::kNodeManager};
inline constexpr contract::MilestoneSpec kNmLineCacheHit{
    "yarn.nm.localization_cache_hit", kLocalizationServiceClass,
    "Serving resources for container {container} from the local cache "
    "(key={key})",
    "", contract::StreamRole::kNodeManager};
inline constexpr contract::MilestoneSpec kNmLineDownloading{
    "yarn.nm.localization_download", kLocalizationServiceClass,
    "Downloading public resources for container {container}", "",
    contract::StreamRole::kNodeManager};
inline constexpr contract::MilestoneSpec kNmLineLaunchFailed{
    "yarn.nm.launch_failed", kNmContainerImplClass,
    "Container {container} exited with a non-zero exit code (launch failure)",
    "", contract::StreamRole::kNodeManager};
inline constexpr contract::MilestoneSpec kNmLineCleanedUp{
    "yarn.nm.cleaned_up", kContainerSchedulerClass,
    "Container {container} cleaned up before launch (application finished)",
    "", contract::StreamRole::kNodeManager};

inline constexpr contract::MilestoneSpec kYarnMilestones[] = {
    kRmLineSubmitted,         kRmLineAssignedContainer,
    kRmLineOpportunisticAllocated, kRmLineAttemptFailed,
    kNmLineOpportunisticQueued,    kNmLineCacheHit,
    kNmLineDownloading,       kNmLineLaunchFailed,
    kNmLineCleanedUp,
};

/// The YARN daemons' declared non-transition lines, for sdlint.
inline std::span<const contract::MilestoneSpec> yarn_milestones() {
  return kYarnMilestones;
}

}  // namespace sdc::yarn
