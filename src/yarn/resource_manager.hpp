// Simulated ResourceManager.
//
// Owns the RMAppImpl / RMContainerImpl state machines (and their log
// lines), the pluggable scheduler policy, NodeManager heartbeat loops and
// AM heartbeat channels.  The two-level protocol follows §II-A:
//
//   client --submit--> RM: NEW -> NEW_SAVING -> SUBMITTED -> ACCEPTED
//   RM schedules the AM container (always guaranteed), dispatches it to a
//     NodeManager, the framework's driver boots and registers:
//     ACCEPTED -> RUNNING on ATTEMPT_REGISTERED.
//   AM --allocate(asks)--> RM: asks ride AM heartbeats (centralized) or a
//     direct allocator RPC (opportunistic); grants are logged NEW ->
//     ALLOCATED when the serial decision pipeline emits them and
//     ALLOCATED -> ACQUIRED when the AM's next heartbeat picks them up —
//     the container acquisition delay of Fig. 7-c, capped by the
//     heartbeat interval.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "logging/logger.hpp"
#include "simcore/engine.hpp"
#include "yarn/config.hpp"
#include "yarn/launch_model.hpp"
#include "yarn/node_manager.hpp"
#include "yarn/scheduler.hpp"
#include "yarn/state_machine.hpp"
#include "yarn/types.hpp"

namespace sdc::yarn {

/// Implemented by framework AppMasters (Spark driver, MR master) to
/// receive containers acquired on their heartbeat.
class AmProtocol {
 public:
  virtual ~AmProtocol() = default;
  virtual void on_containers_acquired(const std::vector<Allocation>& acquired) = 0;
};

/// Everything the RM needs to admit an application and boot its AM.
struct AppSubmission {
  std::string name = "app";
  cluster::Resource am_resource = cluster::kAmResource;
  InstanceType am_type = InstanceType::kSparkDriver;
  /// Localization package for the AM container (Spark jar + configs).
  double am_localization_mb = 500.0;
  /// Cache key of the AM package (see LaunchSpec::package_key).
  std::string am_package_key = "spark-default-pkg";
  bool docker = false;
  /// Launch the AM from a pre-warmed JVM (§V-B "JVM reuse").
  bool warm_jvm = false;
  /// AM-RM heartbeat interval (1 s is the MapReduce default the paper
  /// identifies as the acquisition-delay cap).
  SimDuration am_heartbeat = millis(1000);
  /// Probability that an AM *launch* fails; the RM then starts a new
  /// application attempt (up to max_am_attempts), like YARN's
  /// yarn.resourcemanager.am.max-attempts.
  double am_failure_prob = 0.0;
  std::int32_t max_am_attempts = 2;
  /// Invoked when the AM process boots on its node (its FIRST_LOG time).
  std::function<void(ApplicationId, ContainerId, NodeId, SimTime)>
      on_am_started;
};

class ResourceManager {
 public:
  ResourceManager(cluster::Cluster& cluster, logging::LogBundle& logs,
                  YarnConfig config, std::uint64_t seed);
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Wires the per-node NodeManagers (one per cluster worker, same order).
  void attach_node_managers(std::vector<NodeManager*> nms);

  /// Starts NodeManager heartbeat loops; call once after attaching NMs.
  void start();

  /// Admits an application; returns its cluster-wide ID.  State-machine
  /// progression and AM scheduling proceed asynchronously.
  ApplicationId submit(AppSubmission submission);

  // --- AM-facing protocol -------------------------------------------------
  /// The driver registered (first AM-RM heartbeat): ACCEPTED -> RUNNING.
  void register_attempt(const ApplicationId& app, AmProtocol* am);
  /// Batch container ask.  Centralized: rides the next AM heartbeat.
  /// Opportunistic: direct allocator RPC, grants return in milliseconds.
  void request_containers(const ApplicationId& app, ContainerAsk ask);
  /// The driver is done: RUNNING -> FINAL_SAVING -> FINISHED; containers
  /// still ALLOCATED/ACQUIRED are reclaimed (-> RELEASED).
  void unregister_attempt(const ApplicationId& app);

  // --- NM hooks -----------------------------------------------------------
  void on_container_running(const ContainerId& id);
  void on_container_finished(const ContainerId& id);

  // --- lookups / stats ----------------------------------------------------
  [[nodiscard]] NodeManager& node_manager(const NodeId& node);
  [[nodiscard]] const YarnConfig& config() const noexcept { return config_; }
  [[nodiscard]] SchedulerPolicy& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] const LaunchModel& launch_model() const noexcept {
    return launch_model_;
  }
  /// One sampled RPC hop (used by frameworks for AM->NM start calls).
  [[nodiscard]] SimDuration sample_rpc();
  [[nodiscard]] std::int64_t containers_allocated() const noexcept {
    return containers_allocated_;
  }
  [[nodiscard]] std::size_t live_apps() const noexcept { return live_apps_; }

 private:
  struct RmContainer {
    ContainerId id;
    NodeId node;
    cluster::Resource resource;
    InstanceType type = InstanceType::kSparkExecutor;
    bool am = false;
    bool opportunistic = false;
    StateMachine<RmContainerState> sm{RmContainerState::kNew,
                                      "RMContainerImpl"};
  };
  struct RmApp {
    ApplicationId id;
    AppSubmission submission;
    StateMachine<RmAppState> sm{RmAppState::kNew, "RMAppImpl"};
    AmProtocol* am = nullptr;
    std::int32_t current_attempt = 1;
    std::int64_t next_container_seq = 1;
    /// Containers ALLOCATED but not yet picked up by an AM heartbeat.
    std::deque<ContainerId> awaiting_acquire;
    /// Asks waiting to ride the next AM heartbeat (centralized path).
    std::deque<ContainerAsk> outbox;
    sim::PeriodicTask am_heartbeat_task;
    bool finished = false;
  };

  void log_app_transition(RmApp& app, RmAppState to);
  void log_container_transition(RmContainer& container, RmContainerState to);
  void on_node_heartbeat(NodeManager& nm);
  /// Runs grants through the serial decision pipeline; logs ALLOCATED.
  void process_grants(const std::vector<Grant>& grants);
  void commit_allocation(const ContainerId& id);
  void dispatch_am_container(const ContainerId& id);
  /// AM launch failed: start the next attempt or fail the application.
  void on_am_launch_failed(const ApplicationId& app_id);
  /// ACCEPTED -> FINAL_SAVING -> FINISHED without ever running (all AM
  /// attempts exhausted).
  void fail_application(const ApplicationId& app_id);
  void on_am_heartbeat(RmApp& app);
  RmApp& app(const ApplicationId& id);
  RmContainer& container(const ContainerId& id);

  cluster::Cluster& cluster_;
  YarnConfig config_;
  LaunchModel launch_model_;
  logging::Logger logger_;
  Rng rng_;
  std::unique_ptr<SchedulerPolicy> scheduler_;
  std::vector<NodeManager*> nms_;
  std::map<NodeId, NodeManager*> nm_by_node_;
  std::map<ApplicationId, RmApp> apps_;
  std::map<ContainerId, RmContainer> containers_;
  std::vector<sim::PeriodicTask> nm_heartbeat_tasks_;
  /// Serial allocation pipeline: next time the decision loop is free.
  SimTime alloc_pipeline_free_ = 0;
  std::int32_t next_app_seq_ = 1;
  std::int64_t containers_allocated_ = 0;
  std::size_t live_apps_ = 0;
  bool started_ = false;
};

}  // namespace sdc::yarn
