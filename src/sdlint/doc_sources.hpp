// Locating and slicing the committed docs sdlint checks against.
//
// The metric and diagnostic tables in docs/ are contract surfaces, not
// prose: each lives between a BEGIN/END marker pair so sdlint can
// extract exactly the checked region and compare it to what the code
// declares.  The repo root is found by walking up from the working
// directory (sdlint runs from build trees at arbitrary depth); the
// `SDC_DOCS_DIR` environment variable overrides the search for
// out-of-tree runs.  A missing file or marker pair is reported through
// the flags here — callers turn it into a finding, never a silent skip.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sdc::lint {

/// One extracted marker-delimited doc region.
struct DocSection {
  /// The doc file was found (walk-up or SDC_DOCS_DIR).
  bool file_found = false;
  /// Both markers were found, in order.
  bool section_found = false;
  /// Absolute path of the located file ("" when not found).
  std::string path;
  /// Text strictly between the marker lines.
  std::string text;
};

/// Loads the region of `docs/<file_name>` between `begin_marker` and
/// `end_marker` (each matched as a whole line, markers excluded).
DocSection load_doc_section(std::string_view file_name,
                            std::string_view begin_marker,
                            std::string_view end_marker);

/// Parses markdown-table rows out of `text`: every line starting with
/// '|' becomes a vector of trimmed cell strings; the |---| separator
/// row is dropped.  Backticks are kept — strip with `strip_backticks`.
std::vector<std::vector<std::string>> parse_markdown_table(
    std::string_view text);

/// "`mine.lines`" -> "mine.lines" (no-op without surrounding backticks).
std::string strip_backticks(std::string_view cell);

}  // namespace sdc::lint
