// Check (e): every metric the tree registers is a catalog row, and the
// catalog, the committed doc table and the delay-component vocabulary
// agree (ISSUE 8).
//
// Inputs are injectable so fixtures can seed each violation: a broken
// catalog, a drifted doc table, a snapshot carrying an uncataloged
// instrument.  The real variant drives a micro simulation + analysis so
// the registry snapshot actually contains the production instruments,
// then cross-examines four surfaces:
//
//   catalog -> docs      metrics.undocumented / metrics.doc-drift
//   docs -> catalog      metrics.stale-doc
//   registry -> catalog  metrics.unknown-instrument / metrics.kind-mismatch
//   delay vocabulary     metrics.delay-unbound (sdc.delay.* histograms
//                        bound to checker::delay_component_specs() both
//                        directions)
//
// plus catalog self-consistency (metrics.duplicate-spec) and doc
// presence (metrics.doc-missing).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "sdchecker/trace_export.hpp"
#include "sdlint/findings.hpp"

namespace sdc::lint {

/// Marker lines bracketing the generated table in docs/OBSERVABILITY.md.
inline constexpr std::string_view kMetricTableBegin =
    "<!-- BEGIN METRIC CATALOG TABLE "
    "(generated: build/tools/sdlint --metric-table) -->";
inline constexpr std::string_view kMetricTableEnd =
    "<!-- END METRIC CATALOG TABLE -->";

struct MetricsCheckInputs {
  std::span<const obs::MetricSpec> catalog;
  std::span<const checker::DelayComponentSpec> delay_specs;
  /// Registered-instrument view; nullptr skips the registry checks.
  const obs::MetricsSnapshot* snapshot = nullptr;
  /// The marker-delimited doc table (markdown).
  std::string_view doc_table;
  /// False turns every doc comparison into metrics.doc-missing.
  bool doc_found = true;
};

std::vector<Finding> check_metrics(const MetricsCheckInputs& inputs);

/// check_metrics over the real catalog, the committed
/// docs/OBSERVABILITY.md table, the real delay-component specs, and a
/// registry snapshot taken after a micro scenario + analysis populated
/// the production instruments.
std::vector<Finding> check_real_metrics();

}  // namespace sdc::lint
