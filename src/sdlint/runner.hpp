// Entry point tying the three check families together for the CLI and
// the test suite.
#pragma once

#include <vector>

#include "sdlint/findings.hpp"

namespace sdc::lint {

struct Report {
  std::vector<Finding> findings;
  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Runs every check over the real simulator/miner tables: machine
/// well-formedness, the emitter/extractor contract, and Table-I graph
/// coverage through the production miner.
Report run_all_checks();

}  // namespace sdc::lint
