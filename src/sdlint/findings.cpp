#include "sdlint/findings.hpp"

#include <utility>

#include "common/json.hpp"

namespace sdc::lint {

Finding make_finding(std::string check, std::string subject,
                     std::string detail) {
  return Finding{std::move(check), std::move(subject), std::move(detail)};
}

bool any_with_prefix(std::span<const Finding> findings,
                     std::string_view prefix) {
  for (const Finding& finding : findings) {
    if (finding.check == prefix) return true;
    if (finding.check.size() > prefix.size() &&
        finding.check.compare(0, prefix.size(), prefix) == 0 &&
        finding.check[prefix.size()] == '.') {
      return true;
    }
  }
  return false;
}

std::string findings_to_json(std::span<const Finding> findings) {
  json::Writer writer;
  writer.begin_object();
  writer.field("count", static_cast<std::int64_t>(findings.size()));
  writer.key("findings").begin_array();
  for (const Finding& finding : findings) {
    writer.begin_object()
        .field("check", finding.check)
        .field("subject", finding.subject)
        .field("detail", finding.detail)
        .end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.take();
}

std::string findings_to_text(std::span<const Finding> findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += "sdlint: [" + finding.check + "] " + finding.subject + ": " +
           finding.detail + "\n";
  }
  return out;
}

void append_findings(std::vector<Finding>& into, std::vector<Finding> extra) {
  for (Finding& finding : extra) into.push_back(std::move(finding));
}

}  // namespace sdc::lint
