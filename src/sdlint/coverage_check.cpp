#include "sdlint/coverage_check.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <set>

#include "sdchecker/events.hpp"
#include "sdchecker/miner.hpp"
#include "sdlint/contract_check.hpp"
#include "spark/log_contract.hpp"
#include "workloads/log_contract.hpp"
#include "yarn/log_contract.hpp"

namespace sdc::lint {
namespace {

/// Composer state: a monotone timestamp and per-kind id counters so
/// every machine walk gets a fresh application/container.
struct Composer {
  std::int64_t seq = 0;
  int next_id = 0;

  std::string stamp_line(std::string_view logger, std::string_view message) {
    // log4j layout the parser expects; one ms per line keeps timestamps
    // strictly monotone (no skew diagnostics).
    const std::int64_t ms = seq++;
    char head[48];
    std::snprintf(head, sizeof(head), "2017-07-03 16:%02lld:%02lld,%03lld",
                  static_cast<long long>(40 + ms / 60000),
                  static_cast<long long>((ms / 1000) % 60),
                  static_cast<long long>(ms % 1000));
    return std::string(head) + " INFO  " + std::string(logger) + ": " +
           std::string(message);
  }

  std::string fresh_id(std::string_view id_kind) {
    char buf[64];
    const int n = ++next_id;
    if (id_kind == "application") {
      std::snprintf(buf, sizeof(buf), "application_1499100000000_%04d", n);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "container_1499100000000_%04d_01_000001", n);
    }
    return buf;
  }
};

/// Stream name for a daemon role.
std::string role_stream(contract::StreamRole role) {
  switch (role) {
    case contract::StreamRole::kResourceManager:
      return "rm.log";
    case contract::StreamRole::kNodeManager:
      return "nm.log";
    case contract::StreamRole::kSparkDriver:
      return "driver.log";
    case contract::StreamRole::kSparkExecutor:
      return "executor.log";
    case contract::StreamRole::kMrAppMaster:
      return "mram.log";
    case contract::StreamRole::kMrTask:
      return "mrtask.log";
  }
  return "unknown.log";
}

/// Which daemon stream a machine's transitions appear in, from the
/// classifier's view of its logger class.
std::string machine_stream(const yarn::MachineDescriptor& machine) {
  const std::string_view klass =
      checker::short_class_name(machine.logger_class);
  for (const checker::ClassKind& entry : checker::class_kinds()) {
    if (entry.klass != klass) continue;
    switch (entry.kind) {
      case checker::StreamKind::kResourceManager:
        return "rm.log";
      case checker::StreamKind::kNodeManager:
        return "nm.log";
      case checker::StreamKind::kDriver:
        return "driver.log";
      case checker::StreamKind::kExecutor:
        return "executor.log";
      case checker::StreamKind::kUnknown:
        break;
    }
  }
  return {};
}

/// BFS path of edge indices from `start` to `target` ("" when
/// unreachable — the machine check owns that diagnosis).
std::vector<std::size_t> path_to(const yarn::MachineDescriptor& machine,
                                 std::size_t start, std::size_t target) {
  if (start == target) return {};
  const std::size_t n = machine.state_names.size();
  std::vector<std::size_t> via_edge(n, SIZE_MAX);
  std::vector<bool> seen(n, false);
  std::deque<std::size_t> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    const std::size_t state = frontier.front();
    frontier.pop_front();
    for (std::size_t i = 0; i < machine.edges.size(); ++i) {
      const auto& edge = machine.edges[i];
      if (edge.from != state || edge.from >= n || edge.to >= n) continue;
      if (seen[edge.to]) continue;
      seen[edge.to] = true;
      via_edge[edge.to] = i;
      if (edge.to == target) {
        std::vector<std::size_t> path;
        for (std::size_t at = target; at != start;
             at = machine.edges[via_edge[at]].from) {
          path.push_back(via_edge[at]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(edge.to);
    }
  }
  return {};
}

std::string render_edge(const yarn::MachineDescriptor& machine,
                        const yarn::MachineDescriptor::Edge& edge,
                        std::string_view id) {
  return contract::render_template(
      machine.line_format,
      {{"id", id},
       {"from", machine.state_names[edge.from]},
       {"to", machine.state_names[edge.to]},
       {"event", edge.event}});
}

}  // namespace

std::vector<ComposedStream> compose_corpus(
    std::span<const yarn::MachineDescriptor> machines,
    std::span<const std::span<const contract::MilestoneSpec>> milestone_groups,
    std::vector<Finding>& findings) {
  Composer composer;
  std::map<std::string, std::vector<std::string>> streams;

  // Edge-coverage walks: every transition fires at least once, each walk
  // on a fresh id so walks cannot interfere.
  for (const yarn::MachineDescriptor& machine : machines) {
    const std::string stream = machine_stream(machine);
    if (stream.empty()) {
      findings.push_back(make_finding(
          "coverage.unclassified-machine", std::string(machine.name),
          "logger class " + std::string(machine.logger_class) +
              " does not classify to any daemon stream"));
      continue;
    }
    for (std::size_t i = 0; i < machine.edges.size(); ++i) {
      const auto& target = machine.edges[i];
      if (target.from >= machine.state_names.size() ||
          target.to >= machine.state_names.size()) {
        continue;  // reported by the machine check
      }
      const std::string id = composer.fresh_id(machine.id_kind);
      for (const std::size_t step :
           path_to(machine, machine.initial, target.from)) {
        streams[stream].push_back(composer.stamp_line(
            machine.logger_class,
            render_edge(machine, machine.edges[step], id)));
      }
      streams[stream].push_back(composer.stamp_line(
          machine.logger_class, render_edge(machine, target, id)));
    }
  }

  // Milestones in declaration (= emission) order, per role stream.
  for (const auto& group : milestone_groups) {
    for (const contract::MilestoneSpec& spec : group) {
      streams[role_stream(spec.stream)].push_back(composer.stamp_line(
          spec.logger_class,
          render_canonical(spec.format, spec.name, "", findings)));
    }
  }

  std::vector<ComposedStream> out;
  out.reserve(streams.size());
  for (auto& [name, lines] : streams) {
    out.push_back(ComposedStream{name, std::move(lines)});
  }
  return out;
}

std::vector<Finding> check_coverage(
    std::span<const yarn::MachineDescriptor> machines,
    std::span<const std::span<const contract::MilestoneSpec>>
        milestone_groups) {
  std::vector<Finding> findings;
  const std::vector<ComposedStream> corpus =
      compose_corpus(machines, milestone_groups, findings);

  const checker::LogMiner miner{{.threads = 1}};
  std::set<checker::EventKind> mined;
  std::map<std::string, std::set<checker::EventKind>> mined_per_stream;
  for (const ComposedStream& stream : corpus) {
    const checker::MinedStream result =
        miner.mine_stream(stream.name, stream.lines);
    for (const auto event : result.events) {
      mined.insert(event.kind);
      mined_per_stream[stream.name].insert(event.kind);
    }
  }

  // All 14 Table-I kinds must be reachable from the declared tables.
  for (const checker::EventKind kind : checker::all_event_kinds()) {
    if (checker::table1_number(kind) == 0) continue;
    if (!mined.contains(kind)) {
      findings.push_back(make_finding(
          "coverage.missing-kind",
          std::string(checker::event_name(kind)),
          "Table I message " + std::to_string(checker::table1_number(kind)) +
              " is not produced by any declared emitter line"));
    }
  }

  // Every declared emits must materialize (classification and stream
  // binding included — this is the end-to-end protocol check).
  const auto declared_emits = [&](std::string_view emits,
                                  std::string_view subject) {
    const auto kind = checker::event_from_name(emits);
    if (!kind) return;  // the contract check reports unknown names
    if (!mined.contains(*kind)) {
      findings.push_back(make_finding(
          "coverage.emit-unmined", std::string(subject),
          "declares " + std::string(emits) +
              ", but mining the composed corpus never produced it"));
    }
  };
  for (const yarn::MachineDescriptor& machine : machines) {
    for (const auto& edge : machine.edges) {
      if (!edge.emits.empty()) {
        declared_emits(edge.emits, std::string(machine.name) + " edge " +
                                       std::string(edge.event));
      }
    }
  }
  for (const auto& group : milestone_groups) {
    for (const contract::MilestoneSpec& spec : group) {
      if (!spec.emits.empty()) declared_emits(spec.emits, spec.name);
    }
  }
  return findings;
}

std::vector<Finding> check_real_coverage() {
  const std::span<const contract::MilestoneSpec> groups[] = {
      yarn::yarn_milestones(),
      spark::spark_milestones(),
      workloads::mr_milestones(),
  };
  return check_coverage(yarn::machine_descriptors(), groups);
}

}  // namespace sdc::lint
