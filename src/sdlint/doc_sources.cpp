#include "sdlint/doc_sources.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sdc::lint {
namespace {

namespace fs = std::filesystem;

/// docs/<file_name>, from SDC_DOCS_DIR or by walking up from cwd.
fs::path locate_doc(std::string_view file_name) {
  if (const char* override_dir = std::getenv("SDC_DOCS_DIR")) {
    const fs::path candidate = fs::path(override_dir) / file_name;
    return fs::exists(candidate) ? candidate : fs::path{};
  }
  std::error_code ec;
  for (fs::path dir = fs::current_path(ec); !ec && !dir.empty();
       dir = dir.parent_path()) {
    const fs::path candidate = dir / "docs" / file_name;
    if (fs::exists(candidate, ec)) return candidate;
    if (dir == dir.root_path()) break;
  }
  return {};
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

DocSection load_doc_section(std::string_view file_name,
                            std::string_view begin_marker,
                            std::string_view end_marker) {
  DocSection section;
  const fs::path path = locate_doc(file_name);
  if (path.empty()) return section;
  std::ifstream in(path);
  if (!in) return section;
  section.file_found = true;
  section.path = path.string();

  std::string line;
  bool inside = false;
  std::ostringstream body;
  while (std::getline(in, line)) {
    const std::string_view stripped = trim(line);
    if (!inside) {
      if (stripped == begin_marker) inside = true;
      continue;
    }
    if (stripped == end_marker) {
      section.section_found = true;
      section.text = body.str();
      return section;
    }
    body << line << '\n';
  }
  return section;  // end marker never seen: section_found stays false
}

std::vector<std::vector<std::string>> parse_markdown_table(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty() || line.front() != '|') continue;
    // Drop the |---|---| separator row.
    if (line.find_first_not_of("|-: \t") == std::string_view::npos) continue;
    std::vector<std::string> cells;
    std::size_t cell_start = 1;  // past the leading '|'
    while (cell_start <= line.size()) {
      std::size_t bar = line.find('|', cell_start);
      if (bar == std::string_view::npos) break;
      cells.emplace_back(trim(line.substr(cell_start, bar - cell_start)));
      cell_start = bar + 1;
    }
    if (!cells.empty()) rows.push_back(std::move(cells));
  }
  return rows;
}

std::string strip_backticks(std::string_view cell) {
  const std::string_view trimmed = trim(cell);
  if (trimmed.size() >= 2 && trimmed.front() == '`' &&
      trimmed.back() == '`') {
    return std::string(trimmed.substr(1, trimmed.size() - 2));
  }
  return std::string(trimmed);
}

}  // namespace sdc::lint
