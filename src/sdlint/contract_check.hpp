// Check (b): the emitter/extractor log protocol.
//
// The simulator's emitters and the miner's extractor form a contract:
// every scheduling-critical line the simulator declares (a state-machine
// transition with an `emits` annotation, or a milestone spec) must be
// matched by exactly one extractor rule that produces exactly the
// declared event — and every informational line must match none.
// Conversely, every extractor rule must be exercised by at least one
// declared line, or it is dead weight that silently rots.
//
// The check renders each declared format with canonical placeholder
// values and probes the real rule table with it.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/log_contract.hpp"
#include "sdchecker/extractor.hpp"
#include "sdlint/findings.hpp"
#include "yarn/state_machine.hpp"

namespace sdc::lint {

/// One declared log line, rendered with canonical placeholder values.
struct DeclaredLine {
  /// Where it came from ("spark.driver.start_allo", "RMAppImpl
  /// ACCEPTED -> RUNNING", ...).
  std::string name;
  /// Fully qualified logger class.
  std::string logger;
  /// The message with canonical placeholder values substituted.
  std::string message;
  /// Miner event name the line must produce ("" = must stay silent).
  std::string emits;
};

/// The canonical value substituted for `placeholder`, or empty when the
/// placeholder is unknown (itself a finding).
std::string_view canonical_value(std::string_view placeholder,
                                 std::string_view id_kind = "");

/// Renders `format` with canonical values; unknown placeholders are
/// reported into `findings` under `subject`.
std::string render_canonical(std::string_view format, std::string_view subject,
                             std::string_view id_kind,
                             std::vector<Finding>& findings);

/// Declared lines from one machine's transition table (every edge).
void declare_machine_lines(const yarn::MachineDescriptor& machine,
                           std::vector<DeclaredLine>& lines,
                           std::vector<Finding>& findings);

/// Declared lines from milestone specs.
void declare_milestone_lines(std::span<const contract::MilestoneSpec> specs,
                             std::vector<DeclaredLine>& lines,
                             std::vector<Finding>& findings);

/// All declared lines of the real simulator (machines + yarn/spark/MR
/// milestones); render problems are appended to `findings`.
std::vector<DeclaredLine> declared_lines(std::vector<Finding>& findings);

/// Probes `rules` with every declared line and reports contract
/// violations (drift, ambiguity, wrong event, missing id, noisy
/// informational lines, dead rules, unknown logger classes).
std::vector<Finding> check_contract(
    std::span<const DeclaredLine> lines,
    std::span<const checker::ExtractorRule> rules,
    std::span<const checker::ClassKind> classes);

/// check_contract over the real tables.
std::vector<Finding> check_real_contract();

}  // namespace sdc::lint
