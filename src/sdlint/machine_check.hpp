// Check (a): state-machine well-formedness over the introspectable
// transition tables the yarn layer exports (yarn::MachineDescriptor).
//
// A machine is well-formed when every state is reachable from the
// initial state, every non-terminal state has a way forward, declared
// terminal states are actually terminal, no transition is duplicated or
// nondeterministic (same (from, event) leading to different states), and
// every `emits` annotation names a real miner event.
#pragma once

#include <vector>

#include "sdlint/findings.hpp"
#include "yarn/state_machine.hpp"

namespace sdc::lint {

/// Runs all well-formedness checks on one machine.  Never throws; a
/// malformed table (out-of-range state index) is itself a finding.
std::vector<Finding> check_machine(const yarn::MachineDescriptor& machine);

/// Runs check_machine over every registered simulator machine.
std::vector<Finding> check_all_machines();

}  // namespace sdc::lint
