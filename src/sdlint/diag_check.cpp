#include "sdlint/diag_check.hpp"

#include <map>
#include <string>

#include "logging/diagnostics.hpp"
#include "sdchecker/corpus_mutator.hpp"
#include "sdlint/doc_sources.hpp"

namespace sdc::lint {
namespace {

constexpr std::size_t kSeverityLevels = 3;  // 0 lost, 1 damaged, 2 suspect

struct DocRow {
  std::string severity;
  std::string coverage;
};

void check_doc_parity(const DiagCheckInputs& inputs,
                      std::vector<Finding>& findings) {
  if (!inputs.doc_found) {
    findings.push_back(make_finding(
        "diag.doc-missing", "docs/INTERNALS.md",
        "diagnostic-kind table (between the BEGIN/END markers) not found"));
    return;
  }
  std::map<std::string, DocRow, std::less<>> documented;
  for (const std::vector<std::string>& cells :
       parse_markdown_table(inputs.doc_table)) {
    if (cells.empty()) continue;
    const std::string name = strip_backticks(cells[0]);
    if (name == "kind") continue;  // header row
    // Columns: kind | severity | trigger | fuzz coverage (trigger stays
    // free prose; the other three are contract surfaces).
    documented[name] = DocRow{cells.size() > 1 ? cells[1] : "",
                              cells.size() > 3 ? cells[3] : ""};
  }
  for (const DiagKindRow& kind : inputs.kinds) {
    const auto it = documented.find(kind.name);
    if (it == documented.end()) {
      findings.push_back(make_finding(
          "diag.undocumented", kind.name,
          "diagnostic kind has no docs/INTERNALS.md table row"));
      continue;
    }
    if (it->second.severity != std::to_string(kind.severity)) {
      findings.push_back(make_finding(
          "diag.doc-drift", kind.name,
          "doc severity column says '" + it->second.severity +
              "', diagnostic_severity says " +
              std::to_string(kind.severity)));
    }
    const std::string& coverage = it->second.coverage;
    const bool doc_runtime_only =
        coverage.find("runtime-only") != std::string::npos;
    if (kind.runtime_only.has_value() != doc_runtime_only) {
      findings.push_back(make_finding(
          "diag.doc-drift", kind.name,
          kind.runtime_only
              ? "runtime-only in code but the doc coverage column does "
                "not say so"
              : "doc coverage column says runtime-only but the corpus "
                "mutator covers this kind"));
    }
    for (const std::string& cls : kind.mutation_classes) {
      if (coverage.find("`" + cls + "`") == std::string::npos) {
        findings.push_back(make_finding(
            "diag.doc-drift", kind.name,
            "doc coverage column is missing mutation class `" + cls +
                "`"));
      }
    }
  }
  for (const auto& [name, row] : documented) {
    bool known = false;
    for (const DiagKindRow& kind : inputs.kinds) {
      if (kind.name == name) known = true;
    }
    if (!known) {
      findings.push_back(make_finding(
          "diag.stale-doc", name,
          "doc table documents a diagnostic kind the code does not "
          "declare"));
    }
  }
}

}  // namespace

std::vector<Finding> check_diagnostics(const DiagCheckInputs& inputs) {
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < inputs.kinds.size(); ++i) {
    const DiagKindRow& kind = inputs.kinds[i];
    if (kind.name.empty() || kind.name == "?") {
      findings.push_back(make_finding(
          "diag.unnamed", "kind " + std::to_string(i),
          "diagnostic_kind_name falls through to the sentinel — add the "
          "renderer branch"));
    }
    for (std::size_t j = i + 1; j < inputs.kinds.size(); ++j) {
      if (!kind.name.empty() && kind.name != "?" &&
          kind.name == inputs.kinds[j].name) {
        findings.push_back(make_finding(
            "diag.duplicate-name", kind.name,
            "kinds " + std::to_string(i) + " and " + std::to_string(j) +
                " share one short name"));
      }
    }
    if (kind.severity >= kSeverityLevels) {
      findings.push_back(make_finding(
          "diag.bad-severity", kind.name,
          "diagnostic_severity returns " + std::to_string(kind.severity) +
              " (valid: 0 lost, 1 damaged, 2 suspect) — add the branch"));
    }
    if (kind.mutation_classes.empty() && !kind.runtime_only) {
      findings.push_back(make_finding(
          "diag.unmapped-kind", kind.name,
          "no corpus-mutator damage class is expected to surface this "
          "kind and it carries no runtime-only exemption — the fuzz "
          "harness can never exercise it"));
    }
    if (!kind.mutation_classes.empty() && kind.runtime_only) {
      findings.push_back(make_finding(
          "diag.stale-exemption", kind.name,
          "declared runtime-only but mutation class `" +
              kind.mutation_classes.front() +
              "` now surfaces it — delete the exemption"));
    }
  }
  check_doc_parity(inputs, findings);
  return findings;
}

std::vector<DiagKindRow> real_diag_kind_rows() {
  std::vector<DiagKindRow> rows;
  rows.reserve(logging::kDiagnosticKindCount);
  for (std::size_t i = 0; i < logging::kDiagnosticKindCount; ++i) {
    const auto kind = static_cast<logging::DiagnosticKind>(i);
    DiagKindRow row;
    row.name = std::string(logging::diagnostic_kind_name(kind));
    row.severity = logging::diagnostic_severity(kind);
    for (const checker::MutationClass cls :
         checker::mutation_classes_for(kind)) {
      row.mutation_classes.emplace_back(checker::mutation_class_name(cls));
    }
    if (const auto reason = checker::runtime_only_reason(kind)) {
      row.runtime_only = std::string(*reason);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Finding> check_real_diagnostics() {
  const std::vector<DiagKindRow> rows = real_diag_kind_rows();
  const DocSection section =
      load_doc_section("INTERNALS.md", kDiagTableBegin, kDiagTableEnd);
  DiagCheckInputs inputs;
  inputs.kinds = rows;
  inputs.doc_table = section.text;
  inputs.doc_found = section.file_found && section.section_found;
  return check_diagnostics(inputs);
}

}  // namespace sdc::lint
