// sdlint's output vocabulary: a flat list of findings, each tagged with
// the dotted check id that produced it.  Checks never throw on contract
// violations — they report, and the CLI turns a non-empty report into a
// non-zero exit.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sdc::lint {

/// One verified violation.
struct Finding {
  /// Dotted check id ("machine.unreachable", "contract.drift.no-match",
  /// "coverage.missing-kind", ...).  Stable — tests and CI key on it.
  std::string check;
  /// What the finding is about ("RMAppImpl state FINISHED",
  /// "rule YarnAllocator/START_ALLO", ...).
  std::string subject;
  /// Human sentence explaining the violation.
  std::string detail;
};

/// Convenience for the checks.
Finding make_finding(std::string check, std::string subject,
                     std::string detail);

/// True when any finding's check id starts with `prefix` (dotted-prefix
/// semantics: "machine" matches "machine.unreachable").
bool any_with_prefix(std::span<const Finding> findings,
                     std::string_view prefix);

/// Machine-readable report: {"findings":[{check,subject,detail}...],
/// "count":N}.
std::string findings_to_json(std::span<const Finding> findings);

/// Human-readable diagnostics, one finding per line.
std::string findings_to_text(std::span<const Finding> findings);

/// Appends `extra` onto `into`.
void append_findings(std::vector<Finding>& into, std::vector<Finding> extra);

}  // namespace sdc::lint
