// Check (g): the metric catalog maps cleanly onto the Prometheus
// exposition the observability server renders (ISSUE 9).
//
// The `/metrics` writer mangles registry names mechanically (`.`/`-`
// -> `_`) and never resolves collisions at scrape time — so the *lint*
// proves, over the catalog plus every known dynamic-suffix vocabulary,
// that the mangling is total and injective:
//
//   prom.invalid-name      a name (or family member) does not mangle to
//                          a grammar-valid Prometheus name
//   prom.duplicate-name    two distinct registry names mangle to the
//                          same Prometheus name
//   prom.series-collision  a histogram's implied `_bucket`/`_sum`/
//                          `_count` series collides with another metric
//   prom.suffix-unsafe     a dynamic-suffix family has a member whose
//                          suffix breaks the mangling guarantee
//   prom.family-unlisted   a catalog family whose member vocabulary the
//                          lint does not know (add it to the real
//                          inputs, or the family is unchecked)
//
// Inputs are injectable so fixtures can seed each violation; the real
// variant walks `obs::metric_catalog()` with every production suffix
// vocabulary (diagnostic kinds, scan backends, delay components, HTTP
// endpoint labels and error classes).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metric_catalog.hpp"
#include "sdlint/findings.hpp"

namespace sdc::lint {

/// The known member suffixes of one dynamic-suffix catalog family.
struct FamilySuffixes {
  /// The catalog row's name ("obs.http.errors.<class>").
  std::string_view family;
  std::vector<std::string> suffixes;
};

struct PromCheckInputs {
  std::span<const obs::MetricSpec> catalog;
  std::span<const FamilySuffixes> suffixes;
};

std::vector<Finding> check_prom(const PromCheckInputs& inputs);

/// check_prom over the real catalog and every production suffix
/// vocabulary.
std::vector<Finding> check_real_prom();

}  // namespace sdc::lint
