// Seeded-violation corpus: deliberately broken tables, one per check,
// proving each sdlint check actually fires.  `--selftest` (and the gtest
// suite) runs every fixture and fails if its expected check stays
// silent, then runs the real tables and fails if anything fires.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "sdlint/findings.hpp"

namespace sdc::lint {

struct Fixture {
  /// Stable fixture name ("machine-unreachable-state", ...).
  std::string_view name;
  /// Dotted check id (or prefix) the fixture must trigger.
  std::string_view expect_check;
  /// Runs the relevant check over the broken table.
  std::vector<Finding> (*run)();
};

/// Every seeded violation.
std::span<const Fixture> fixtures();

/// Runs all fixtures: reports "selftest.silent" for any fixture whose
/// expected check did not fire, and "selftest.dirty" when the real
/// tables produce findings.  Empty result = the linter provably works.
std::vector<Finding> run_selftest();

}  // namespace sdc::lint
