#include "sdlint/prom_check.hpp"

#include <map>
#include <string>
#include <utility>

#include "common/simd.hpp"
#include "logging/diagnostics.hpp"
#include "obs/http_server.hpp"
#include "obs/prom_export.hpp"
#include "sdchecker/trace_export.hpp"

namespace sdc::lint {
namespace {

/// One exposed name: the registry spelling plus where it came from, so
/// findings can say which row (or which family member) is at fault.
struct ExposedName {
  std::string registry_name;
  std::string origin;  // catalog row name, with the member spelled out
  obs::MetricKind kind = obs::MetricKind::kCounter;
};

const FamilySuffixes* find_suffixes(const PromCheckInputs& inputs,
                                    std::string_view family) {
  for (const FamilySuffixes& entry : inputs.suffixes) {
    if (entry.family == family) return &entry;
  }
  return nullptr;
}

/// Expands the catalog into the full set of names the renderer can
/// expose: plain rows verbatim, family rows once per known suffix.
/// Unknown families produce prom.family-unlisted and per-suffix mangling
/// failures produce prom.suffix-unsafe, right here where the member name
/// is assembled.
std::vector<ExposedName> expand_names(const PromCheckInputs& inputs,
                                      std::vector<Finding>& findings) {
  std::vector<ExposedName> names;
  for (const obs::MetricSpec& row : inputs.catalog) {
    if (!row.is_family()) {
      names.push_back(
          {std::string(row.name), std::string(row.name), row.kind});
      continue;
    }
    const FamilySuffixes* members = find_suffixes(inputs, row.name);
    if (members == nullptr) {
      findings.push_back(make_finding(
          "prom.family-unlisted", std::string(row.name),
          "dynamic-suffix family has no member vocabulary registered with "
          "the prom check; its members' Prometheus names are unchecked "
          "(add the suffix list to check_real_prom)"));
      continue;
    }
    for (const std::string& suffix : members->suffixes) {
      const std::string member =
          std::string(row.family_prefix()) + suffix;
      if (!obs::prom_name_strict(member).has_value()) {
        findings.push_back(make_finding(
            "prom.suffix-unsafe", member,
            "member of family '" + std::string(row.name) +
                "' does not mangle to a valid Prometheus name (suffix '" +
                suffix + "')"));
        continue;
      }
      names.push_back({member,
                       std::string(row.name) + " member '" + suffix + "'",
                       row.kind});
    }
  }
  return names;
}

}  // namespace

std::vector<Finding> check_prom(const PromCheckInputs& inputs) {
  std::vector<Finding> findings;
  const std::vector<ExposedName> names = expand_names(inputs, findings);

  // Mangling must be total (prom.invalid-name) and injective
  // (prom.duplicate-name) over every exposable name.
  std::map<std::string, const ExposedName*> mangled;
  for (const ExposedName& name : names) {
    const auto prom = obs::prom_name_strict(name.registry_name);
    if (!prom.has_value()) {
      findings.push_back(make_finding(
          "prom.invalid-name", name.registry_name,
          "catalog row '" + name.origin +
              "' does not mangle to a valid Prometheus name "
              "([a-zA-Z_:][a-zA-Z0-9_:]*, '.' and '-' mapped to '_')"));
      continue;
    }
    const auto [it, inserted] = mangled.emplace(*prom, &name);
    if (!inserted) {
      findings.push_back(make_finding(
          "prom.duplicate-name", name.registry_name,
          "mangles to Prometheus name '" + *prom + "', same as '" +
              it->second->registry_name + "' (from " + it->second->origin +
              ") — the exposition would merge two distinct instruments"));
    }
  }

  // Histograms expose three extra series; none may shadow another
  // metric's name.
  for (const auto& [prom, name] : mangled) {
    if (name->kind != obs::MetricKind::kHistogram) continue;
    for (const std::string_view series : {"_bucket", "_sum", "_count"}) {
      const std::string derived = prom + std::string(series);
      const auto hit = mangled.find(derived);
      if (hit != mangled.end()) {
        findings.push_back(make_finding(
            "prom.series-collision", name->registry_name,
            "histogram series '" + derived + "' collides with metric '" +
                hit->second->registry_name + "' (from " +
                hit->second->origin + ")"));
      }
    }
  }
  return findings;
}

std::vector<Finding> check_real_prom() {
  // The production suffix vocabularies, one per dynamic-suffix family in
  // the catalog.  A new family added without a row here trips
  // prom.family-unlisted, which is the point: the member set must be
  // enumerable at lint time for the mangling guarantee to mean anything.
  static const std::vector<FamilySuffixes> kSuffixes = [] {
    std::vector<FamilySuffixes> out;

    FamilySuffixes diag{"mine.diagnostics.<kind>", {}};
    for (std::size_t i = 0; i < logging::kDiagnosticKindCount; ++i) {
      diag.suffixes.emplace_back(logging::diagnostic_kind_name(
          static_cast<logging::DiagnosticKind>(i)));
    }
    out.push_back(std::move(diag));

    FamilySuffixes backends{"mine.scan.backend.<name>", {}};
    for (const simd::ScanBackend backend :
         {simd::ScanBackend::kScalar, simd::ScanBackend::kSwar,
          simd::ScanBackend::kSse2, simd::ScanBackend::kAvx2}) {
      backends.suffixes.emplace_back(simd::scan_backend_name(backend));
    }
    out.push_back(std::move(backends));

    FamilySuffixes delay{"sdc.delay.<component>", {}};
    for (const checker::DelayComponentSpec& spec :
         checker::delay_component_specs()) {
      constexpr std::string_view kPrefix = "sdc.delay.";
      std::string_view histogram = spec.histogram;
      if (histogram.substr(0, kPrefix.size()) == kPrefix) {
        histogram.remove_prefix(kPrefix.size());
      }
      delay.suffixes.emplace_back(histogram);
    }
    out.push_back(std::move(delay));

    FamilySuffixes endpoints{"obs.http.latency_ms.<endpoint>", {}};
    for (const std::string_view label : obs::kHttpEndpointLabels) {
      endpoints.suffixes.emplace_back(label);
    }
    out.push_back(std::move(endpoints));

    FamilySuffixes errors{"obs.http.errors.<class>", {}};
    for (const std::string_view error_class : obs::kHttpErrorClasses) {
      errors.suffixes.emplace_back(error_class);
    }
    out.push_back(std::move(errors));

    return out;
  }();

  PromCheckInputs inputs;
  inputs.catalog = obs::metric_catalog();
  inputs.suffixes = kSuffixes;
  return check_prom(inputs);
}

}  // namespace sdc::lint
