#include "sdlint/machine_check.hpp"

#include <algorithm>
#include <deque>
#include <string>

#include "sdchecker/events.hpp"

namespace sdc::lint {
namespace {

std::string state_label(const yarn::MachineDescriptor& machine,
                        std::size_t state) {
  if (state < machine.state_names.size()) {
    return std::string(machine.name) + " state " +
           std::string(machine.state_names[state]);
  }
  return std::string(machine.name) + " state #" + std::to_string(state);
}

std::string edge_label(const yarn::MachineDescriptor& machine,
                       const yarn::MachineDescriptor::Edge& edge) {
  const auto name = [&](std::size_t state) {
    return state < machine.state_names.size()
               ? std::string(machine.state_names[state])
               : "#" + std::to_string(state);
  };
  return std::string(machine.name) + " " + name(edge.from) + " -> " +
         name(edge.to);
}

bool is_terminal(const yarn::MachineDescriptor& machine, std::size_t state) {
  return std::find(machine.terminals.begin(), machine.terminals.end(),
                   state) != machine.terminals.end();
}

}  // namespace

std::vector<Finding> check_machine(const yarn::MachineDescriptor& machine) {
  std::vector<Finding> findings;
  const std::size_t n = machine.state_names.size();

  // Structural sanity: indices must address the state-name table.  Bad
  // edges are reported and skipped by the graph passes below.
  std::vector<yarn::MachineDescriptor::Edge> edges;
  for (const auto& edge : machine.edges) {
    if (edge.from >= n || edge.to >= n) {
      findings.push_back(make_finding(
          "machine.bad-state-index", edge_label(machine, edge),
          "transition references a state index outside the state table (" +
              std::to_string(n) + " states)"));
      continue;
    }
    edges.push_back(edge);
  }
  if (machine.initial >= n) {
    findings.push_back(make_finding(
        "machine.bad-state-index", std::string(machine.name),
        "initial state index " + std::to_string(machine.initial) +
            " is outside the state table"));
    return findings;
  }
  for (const std::size_t terminal : machine.terminals) {
    if (terminal >= n) {
      findings.push_back(make_finding(
          "machine.bad-state-index", std::string(machine.name),
          "terminal state index " + std::to_string(terminal) +
              " is outside the state table"));
    }
  }

  // Reachability from the initial state.
  std::vector<bool> reachable(n, false);
  std::deque<std::size_t> frontier{machine.initial};
  reachable[machine.initial] = true;
  while (!frontier.empty()) {
    const std::size_t state = frontier.front();
    frontier.pop_front();
    for (const auto& edge : edges) {
      if (edge.from == state && !reachable[edge.to]) {
        reachable[edge.to] = true;
        frontier.push_back(edge.to);
      }
    }
  }
  for (std::size_t state = 0; state < n; ++state) {
    if (!reachable[state]) {
      findings.push_back(make_finding(
          "machine.unreachable", state_label(machine, state),
          "not reachable from initial state " +
              std::string(machine.state_names[machine.initial])));
    }
  }

  // A transition out of an unreachable state can never fire.
  for (const auto& edge : edges) {
    if (!reachable[edge.from]) {
      findings.push_back(
          make_finding("machine.dead-transition", edge_label(machine, edge),
                       "source state is unreachable, so this transition "
                       "can never fire"));
    }
  }

  // Duplicates and nondeterminism.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i].from != edges[j].from) continue;
      if (edges[i].to == edges[j].to) {
        findings.push_back(make_finding(
            "machine.duplicate-transition", edge_label(machine, edges[i]),
            "transition is declared more than once"));
      } else if (!edges[i].event.empty() &&
                 edges[i].event == edges[j].event) {
        findings.push_back(make_finding(
            "machine.nondeterministic", edge_label(machine, edges[i]),
            "event " + std::string(edges[i].event) +
                " also leads to " +
                std::string(machine.state_names[edges[j].to]) +
                " from the same state"));
      }
    }
  }

  // Terminals are terminal; everything else has a way forward.
  for (std::size_t state = 0; state < n; ++state) {
    const bool has_outgoing =
        std::any_of(edges.begin(), edges.end(),
                    [state](const auto& e) { return e.from == state; });
    if (is_terminal(machine, state) && has_outgoing) {
      findings.push_back(
          make_finding("machine.terminal-outgoing", state_label(machine, state),
                       "declared terminal but has outgoing transitions"));
    }
    if (!is_terminal(machine, state) && !has_outgoing && reachable[state]) {
      findings.push_back(
          make_finding("machine.dead-end", state_label(machine, state),
                       "non-terminal state with no outgoing transitions"));
    }
  }

  // Every emits annotation must name a real miner event.
  for (const auto& edge : edges) {
    if (!edge.emits.empty() && !checker::event_from_name(edge.emits)) {
      findings.push_back(make_finding(
          "machine.unknown-event", edge_label(machine, edge),
          "emits \"" + std::string(edge.emits) +
              "\", which is not a known miner event name"));
    }
  }
  return findings;
}

std::vector<Finding> check_all_machines() {
  std::vector<Finding> findings;
  for (const yarn::MachineDescriptor& machine : yarn::machine_descriptors()) {
    append_findings(findings, check_machine(machine));
  }
  return findings;
}

}  // namespace sdc::lint
