// Check (c): graph coverage through the real miner.
//
// From the declared tables alone, sdlint composes a synthetic log corpus
// — per-machine edge-coverage walks (a BFS path from INIT to every
// transition, fresh canonical ids per walk) plus every milestone spec in
// emission order — and runs the *production* LogMiner over it.  All 14
// Table-I event kinds must be mined, and every declared `emits` must
// materialize on its stream.  This catches protocol breaks the per-line
// contract check cannot see: classification failures, stream binding,
// FIRST_LOG synthesis preconditions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/log_contract.hpp"
#include "sdlint/findings.hpp"
#include "yarn/state_machine.hpp"

namespace sdc::lint {

/// A synthetic log stream composed from the declared tables.
struct ComposedStream {
  std::string name;
  std::vector<std::string> lines;
};

/// Composes the corpus: one stream per daemon role, machine walks merged
/// into the daemon streams their logger classes classify to.
std::vector<ComposedStream> compose_corpus(
    std::span<const yarn::MachineDescriptor> machines,
    std::span<const std::span<const contract::MilestoneSpec>> milestone_groups,
    std::vector<Finding>& findings);

/// Mines the corpus with the production miner and reports missing
/// Table-I kinds and declared-but-unmined events.
std::vector<Finding> check_coverage(
    std::span<const yarn::MachineDescriptor> machines,
    std::span<const std::span<const contract::MilestoneSpec>> milestone_groups);

/// check_coverage over the real tables.
std::vector<Finding> check_real_coverage();

}  // namespace sdc::lint
