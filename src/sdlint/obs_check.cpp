#include "sdlint/obs_check.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_check.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::lint {
namespace {

using checker::AppTimeline;
using checker::ContainerTimeline;
using checker::DelayComponentSpec;
using checker::EventKind;

/// A fully-populated synthetic application — every Table-I anchor plus an
/// AM and two worker containers, laid out so all 15 components decompose
/// to strictly positive spans.  Driving this through the *production*
/// finalize_analysis/trace path (rather than hand-built expectations) is
/// the point: the check observes what the pipeline actually emits.
AppTimeline full_timeline() {
  constexpr std::int64_t kT0 = 1499100000000;
  AppTimeline timeline;
  timeline.app = ApplicationId{kT0, 1};

  const auto app_event = [&](EventKind kind, std::int64_t offset_ms) {
    timeline.first_ts[kind] = kT0 + offset_ms;
    timeline.counts[kind] = 1;
  };
  app_event(EventKind::kAppSubmitted, 0);
  app_event(EventKind::kAppAccepted, 10);
  app_event(EventKind::kAttemptRegistered, 200);
  app_event(EventKind::kDriverFirstLog, 300);
  app_event(EventKind::kDriverRegister, 400);
  app_event(EventKind::kStartAllo, 450);
  app_event(EventKind::kEndAllo, 500);

  const auto add_container = [&](std::int64_t seq,
                                 std::int64_t offset_ms) -> ContainerTimeline& {
    const ContainerId id{timeline.app, 1, seq};
    ContainerTimeline& container = timeline.containers[id];
    container.id = id;
    const auto event = [&](EventKind kind, std::int64_t at_ms) {
      container.first_ts[kind] = kT0 + offset_ms + at_ms;
      container.counts[kind] = 1;
    };
    event(EventKind::kContainerAllocated, 0);
    event(EventKind::kContainerAcquired, 20);
    event(EventKind::kNmLocalizing, 40);
    event(EventKind::kNmScheduled, 60);
    event(EventKind::kNmRunning, 100);
    return container;
  };

  // AM container (seq 1): launching anchors at the driver's first log.
  add_container(1, 50);
  // Two workers with staggered starts so cf < cl.
  for (const std::int64_t seq : {std::int64_t{2}, std::int64_t{3}}) {
    ContainerTimeline& container = add_container(seq, 500 + (seq - 2) * 100);
    container.first_ts[EventKind::kExecutorFirstLog] =
        kT0 + 500 + (seq - 2) * 100 + 200;
    container.counts[EventKind::kExecutorFirstLog] = 1;
    container.first_ts[EventKind::kExecutorFirstTask] =
        kT0 + 500 + (seq - 2) * 100 + 300;
    container.counts[EventKind::kExecutorFirstTask] = 1;
  }
  return timeline;
}

bool has_spec_for_metric(std::span<const DelayComponentSpec> specs,
                         std::string_view metric) {
  return std::any_of(specs.begin(), specs.end(),
                     [&](const DelayComponentSpec& spec) {
                       return spec.metric == metric;
                     });
}

}  // namespace

std::vector<Finding> check_obs_vocabulary(
    std::span<const DelayComponentSpec> specs) {
  std::vector<Finding> findings;

  const AppTimeline timeline = full_timeline();
  std::map<ApplicationId, AppTimeline> timelines;
  timelines.emplace(timeline.app, timeline);
  const checker::AnalysisResult result =
      checker::finalize_analysis(std::move(timelines));

  // (a) Both directions between AggregateReport::metrics() and the
  // catalog.  A metric without a spec has no histogram name and no trace
  // slice; a spec without a metric is a stale catalog row.
  const auto metrics = result.aggregate.metrics();
  for (const auto& [name, samples] : metrics) {
    if (!has_spec_for_metric(specs, name)) {
      findings.push_back(make_finding(
          "obs.missing-metric", name,
          "AggregateReport reports delay component '" + name +
              "' but the delay component catalog "
              "(checker::delay_component_specs) has no entry for it, so it "
              "gets neither a registered histogram nor a trace slice"));
    }
  }
  for (const DelayComponentSpec& spec : specs) {
    const bool known =
        std::any_of(metrics.begin(), metrics.end(), [&](const auto& entry) {
          return entry.first == spec.metric;
        });
    if (!known) {
      findings.push_back(make_finding(
          "obs.stale-spec", std::string(spec.metric),
          "delay component catalog entry '" + std::string(spec.metric) +
              "' matches no AggregateReport metric — the decomposition no "
              "longer produces it"));
    }
  }

  // (b) Folding the synthetic decomposition must have registered every
  // catalog histogram (report.cpp observes through the same catalog).
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  for (const DelayComponentSpec& spec : specs) {
    if (!snapshot.has_histogram(spec.histogram)) {
      findings.push_back(make_finding(
          "obs.missing-histogram", std::string(spec.metric),
          "no histogram named '" + std::string(spec.histogram) +
              "' was registered after aggregating a fully-populated "
              "application — AggregateReport::add does not observe this "
              "component"));
    }
  }

  // (c) The production trace exporter must materialize every catalog
  // slice (and the --check contract's required app slices) for the same
  // fully-populated application.
  const std::string trace = checker::scheduling_trace_json(result);
  obs::TraceCheckOptions structural;
  structural.required_process_prefix = "application_";
  const obs::TraceCheckResult base = obs::check_trace_json(trace, structural);
  if (!base.ok) {
    for (const std::string& error : base.errors) {
      findings.push_back(make_finding("obs.trace-invalid",
                                      timeline.app.str(), error));
    }
    return findings;
  }

  obs::TraceCheckOptions strict = structural;
  std::set<std::string> wanted;
  for (const DelayComponentSpec& spec : specs) {
    wanted.insert(std::string(spec.slice));
  }
  for (const std::string_view slice : checker::required_app_slices()) {
    wanted.insert(std::string(slice));
  }
  strict.required_slices.assign(wanted.begin(), wanted.end());
  const obs::TraceCheckResult sliced = obs::check_trace_json(trace, strict);
  for (const std::string& error : sliced.errors) {
    findings.push_back(
        make_finding("obs.missing-slice", timeline.app.str(), error));
  }
  return findings;
}

std::vector<Finding> check_real_obs_vocabulary() {
  return check_obs_vocabulary(checker::delay_component_specs());
}

}  // namespace sdc::lint
