// Check (f): the diagnostic-kind vocabulary is closed (ISSUE 8).
//
// Every logging::DiagnosticKind must (1) render — a real short name and
// an in-range severity, i.e. no "?"/sentinel fallthrough branch left
// unhandled; (2) be documented — one row in the marker-delimited kinds
// table of docs/INTERNALS.md, with the severity and fuzz-coverage
// columns matching the code; (3) be *reachable* — either some corpus-
// mutator damage class is expected to surface it
// (checker::mutation_classes_for), or it carries an explicit
// runtime-only exemption (checker::runtime_only_reason).  A kind in
// neither set is a vocabulary hole the fuzz harness can never exercise;
// a kind in both is a stale exemption.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sdlint/findings.hpp"

namespace sdc::lint {

/// Marker lines bracketing the kinds table in docs/INTERNALS.md.
inline constexpr std::string_view kDiagTableBegin =
    "<!-- BEGIN DIAGNOSTIC KIND TABLE (checked by sdlint diag.*) -->";
inline constexpr std::string_view kDiagTableEnd =
    "<!-- END DIAGNOSTIC KIND TABLE -->";

/// One diagnostic kind as the checks see it — fixtures seed broken rows.
struct DiagKindRow {
  /// diagnostic_kind_name ("?" models a missing renderer branch).
  std::string name;
  /// diagnostic_severity (the sentinel >= 3 models a missing branch).
  std::size_t severity = 0;
  /// Mutation-class names expected to surface this kind.
  std::vector<std::string> mutation_classes;
  /// Runtime-only exemption reason (nullopt = mutator must cover it).
  std::optional<std::string> runtime_only;
};

struct DiagCheckInputs {
  std::span<const DiagKindRow> kinds;
  /// The marker-delimited doc table (markdown).
  std::string_view doc_table;
  /// False turns every doc comparison into diag.doc-missing.
  bool doc_found = true;
};

std::vector<Finding> check_diagnostics(const DiagCheckInputs& inputs);

/// check_diagnostics over the real DiagnosticKind enum, the corpus
/// mutator's mappings and the committed docs/INTERNALS.md table.
std::vector<Finding> check_real_diagnostics();

/// The real kinds, one row per DiagnosticKind (exposed for tests).
std::vector<DiagKindRow> real_diag_kind_rows();

}  // namespace sdc::lint
