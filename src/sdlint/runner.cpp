#include "sdlint/runner.hpp"

#include "sdlint/contract_check.hpp"
#include "sdlint/coverage_check.hpp"
#include "sdlint/diag_check.hpp"
#include "sdlint/machine_check.hpp"
#include "sdlint/metrics_check.hpp"
#include "sdlint/obs_check.hpp"
#include "sdlint/prom_check.hpp"

namespace sdc::lint {

Report run_all_checks() {
  Report report;
  append_findings(report.findings, check_all_machines());
  append_findings(report.findings, check_real_contract());
  append_findings(report.findings, check_real_coverage());
  append_findings(report.findings, check_real_obs_vocabulary());
  append_findings(report.findings, check_real_metrics());
  append_findings(report.findings, check_real_prom());
  append_findings(report.findings, check_real_diagnostics());
  return report;
}

}  // namespace sdc::lint
