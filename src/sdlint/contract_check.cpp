#include "sdlint/contract_check.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "sdchecker/events.hpp"
#include "spark/log_contract.hpp"
#include "workloads/log_contract.hpp"
#include "yarn/log_contract.hpp"

namespace sdc::lint {
namespace {

/// Canonical placeholder values: well-formed IDs the extractor's id
/// parsers accept, and innocuous literals for everything else.
struct CanonicalEntry {
  std::string_view name;
  std::string_view value;
};

constexpr CanonicalEntry kCanonicalValues[] = {
    {"app", "application_1499100000000_0001"},
    {"container", "container_1499100000000_0001_01_000001"},
    {"attempt", "appattempt_1499100000000_0001_000001"},
    {"host", "node-0001"},
    {"count", "4"},
    {"resource", "<memory:1024, vCores:1>"},
    {"tid", "0"},
    {"executor_id", "1"},
    {"pid", "20001"},
    {"files", "2"},
    {"parallel", "true"},
    {"index", "0"},
    {"stage", "0"},
    {"task_kind", "map"},
    {"key", "spark-pkg-500"},
    {"seq", "1"},
};

}  // namespace

std::string_view canonical_value(std::string_view placeholder,
                                 std::string_view id_kind) {
  if (placeholder == "id") {
    // Machine line formats use the generic {id}; the descriptor says
    // which global id the machine is keyed on.
    if (id_kind == "application") return canonical_value("app");
    if (id_kind == "container") return canonical_value("container");
    return {};
  }
  for (const CanonicalEntry& entry : kCanonicalValues) {
    if (entry.name == placeholder) return entry.value;
  }
  return {};
}

std::string render_canonical(std::string_view format, std::string_view subject,
                             std::string_view id_kind,
                             std::vector<Finding>& findings) {
  std::vector<contract::Placeholder> values;
  for (const std::string_view name : contract::collect_placeholders(format)) {
    // {from}/{to}/{event} are machine-renderer slots, never canonical.
    const std::string_view value = canonical_value(name, id_kind);
    if (value.empty()) {
      findings.push_back(make_finding(
          "contract.unknown-placeholder", std::string(subject),
          "format references {" + std::string(name) +
              "}, which has no canonical value declared in sdlint"));
      continue;
    }
    values.push_back({name, value});
  }
  return contract::render_template(format, values);
}

void declare_machine_lines(const yarn::MachineDescriptor& machine,
                           std::vector<DeclaredLine>& lines,
                           std::vector<Finding>& findings) {
  const std::string_view id =
      canonical_value("id", machine.id_kind);
  if (id.empty()) {
    findings.push_back(make_finding(
        "contract.unknown-placeholder", std::string(machine.name),
        "machine id_kind \"" + std::string(machine.id_kind) +
            "\" has no canonical id value"));
    return;
  }
  for (const auto& edge : machine.edges) {
    if (edge.from >= machine.state_names.size() ||
        edge.to >= machine.state_names.size()) {
      continue;  // reported by the machine check
    }
    DeclaredLine line;
    line.name = std::string(machine.name) + " " +
                std::string(machine.state_names[edge.from]) + " -> " +
                std::string(machine.state_names[edge.to]);
    line.logger = std::string(machine.logger_class);
    line.message = contract::render_template(
        machine.line_format,
        {{"id", id},
         {"from", machine.state_names[edge.from]},
         {"to", machine.state_names[edge.to]},
         {"event", edge.event}});
    line.emits = std::string(edge.emits);
    lines.push_back(std::move(line));
  }
}

void declare_milestone_lines(std::span<const contract::MilestoneSpec> specs,
                             std::vector<DeclaredLine>& lines,
                             std::vector<Finding>& findings) {
  for (const contract::MilestoneSpec& spec : specs) {
    DeclaredLine line;
    line.name = std::string(spec.name);
    line.logger = std::string(spec.logger_class);
    line.message = render_canonical(spec.format, spec.name, "", findings);
    line.emits = std::string(spec.emits);
    lines.push_back(std::move(line));
  }
}

std::vector<DeclaredLine> declared_lines(std::vector<Finding>& findings) {
  std::vector<DeclaredLine> lines;
  for (const yarn::MachineDescriptor& machine : yarn::machine_descriptors()) {
    declare_machine_lines(machine, lines, findings);
  }
  declare_milestone_lines(yarn::yarn_milestones(), lines, findings);
  declare_milestone_lines(spark::spark_milestones(), lines, findings);
  declare_milestone_lines(workloads::mr_milestones(), lines, findings);
  return lines;
}

std::vector<Finding> check_contract(
    std::span<const DeclaredLine> lines,
    std::span<const checker::ExtractorRule> rules,
    std::span<const checker::ClassKind> classes) {
  std::vector<Finding> findings;
  const auto class_known = [&](std::string_view klass) {
    return std::any_of(classes.begin(), classes.end(),
                       [&](const auto& c) { return c.klass == klass; });
  };

  std::vector<bool> rule_hit(rules.size(), false);
  for (const DeclaredLine& line : lines) {
    const std::string_view klass = checker::short_class_name(line.logger);
    if (!class_known(klass)) {
      findings.push_back(make_finding(
          "contract.unknown-class", line.name,
          "logger class " + std::string(klass) +
              " is not in the miner's classifier table — lines from it "
              "would not classify their stream"));
    }
    std::vector<std::size_t> matches;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].klass == klass &&
          checker::rule_matches(rules[i], line.message)) {
        matches.push_back(i);
        rule_hit[i] = true;
      }
    }
    if (line.emits.empty()) {
      // Informational lines must stay silent.
      for (const std::size_t i : matches) {
        findings.push_back(make_finding(
            "contract.noisy", line.name,
            "informational line \"" + line.message +
                "\" matches extractor rule " + std::string(rules[i].klass) +
                "/" + std::string(rules[i].token) + " (emits " +
                std::string(
                    checker::event_name(rules[i].emits)) +
                ") — it would masquerade as a scheduling milestone"));
      }
      continue;
    }
    const auto expected = checker::event_from_name(line.emits);
    if (!expected) {
      findings.push_back(make_finding(
          "contract.unknown-event", line.name,
          "declares emits \"" + line.emits +
              "\", which is not a known miner event name"));
      continue;
    }
    if (matches.empty()) {
      findings.push_back(make_finding(
          "contract.no-match", line.name,
          "emitter line \"" + line.message +
              "\" (class " + std::string(klass) +
              ") matches no extractor rule — the miner would drop " +
              line.emits));
      continue;
    }
    if (matches.size() > 1) {
      std::string which;
      for (const std::size_t i : matches) {
        if (!which.empty()) which += ", ";
        which += std::string(rules[i].klass) + "/" +
                 std::string(rules[i].token);
      }
      findings.push_back(make_finding(
          "contract.ambiguous", line.name,
          "emitter line matches " + std::to_string(matches.size()) +
              " extractor rules (" + which + ")"));
      continue;
    }
    const checker::ExtractorRule& rule = rules[matches.front()];
    if (rule.emits != *expected) {
      findings.push_back(make_finding(
          "contract.wrong-event", line.name,
          "emitter declares " + line.emits + " but the matching rule " +
              std::string(rule.klass) + "/" + std::string(rule.token) +
              " produces " + std::string(checker::event_name(rule.emits))));
      continue;
    }
    // End-to-end: the rule must actually extract (id parsing included).
    checker::ParsedLine parsed;
    parsed.epoch_ms = 1499100000123;
    parsed.level = "INFO";
    parsed.logger = line.logger;
    parsed.message = line.message;
    const auto event = checker::apply_rule(rule, parsed, "sdlint", 1);
    if (!event) {
      findings.push_back(make_finding(
          "contract.no-id", line.name,
          "rule " + std::string(rule.klass) + "/" + std::string(rule.token) +
              " matches but fails to extract its required id from \"" +
              line.message + "\""));
    } else if (event->kind != *expected) {
      findings.push_back(make_finding(
          "contract.wrong-event", line.name,
          "extraction produced " +
              std::string(checker::event_name(event->kind)) + " instead of " +
              line.emits));
    }
  }

  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!class_known(rules[i].klass)) {
      findings.push_back(make_finding(
          "contract.rule-unknown-class",
          std::string(rules[i].klass) + "/" + std::string(rules[i].token),
          "rule's logger class is not in the classifier table"));
    }
    if (!rule_hit[i]) {
      findings.push_back(make_finding(
          "contract.dead-rule",
          std::string(rules[i].klass) + "/" + std::string(rules[i].token),
          "no declared emitter line matches this extractor rule — it is "
          "dead weight (emits " +
              std::string(checker::event_name(rules[i].emits)) + ")"));
    }
  }
  return findings;
}

std::vector<Finding> check_real_contract() {
  std::vector<Finding> findings;
  const std::vector<DeclaredLine> lines = declared_lines(findings);
  append_findings(findings,
                  check_contract(lines, checker::extractor_rules(),
                                 checker::class_kinds()));
  return findings;
}

}  // namespace sdc::lint
