// Check (d): the observability vocabulary covers the decomposition.
//
// Every delay component the analyzer reports (AggregateReport::metrics())
// must appear in the shared component catalog
// (checker::delay_component_specs()), carry a registered metrics
// histogram, and materialize as a trace slice when a fully-populated
// synthetic timeline is rendered through the production trace exporter.
// This pins the three surfaces — decomposition, metrics registry, trace
// export — to one vocabulary; adding a component to one without the
// others is a finding, not a silent gap.
#pragma once

#include <span>
#include <vector>

#include "sdchecker/trace_export.hpp"
#include "sdlint/findings.hpp"

namespace sdc::lint {

/// Runs the vocabulary check against an arbitrary catalog (fixtures pass
/// deliberately truncated ones).
std::vector<Finding> check_obs_vocabulary(
    std::span<const checker::DelayComponentSpec> specs);

/// check_obs_vocabulary over the real catalog.
std::vector<Finding> check_real_obs_vocabulary();

}  // namespace sdc::lint
