#include "sdlint/fixtures.hpp"

#include "sdlint/contract_check.hpp"
#include "yarn/log_contract.hpp"
#include "sdlint/coverage_check.hpp"
#include "sdlint/machine_check.hpp"
#include "sdlint/obs_check.hpp"
#include "sdlint/runner.hpp"

namespace sdc::lint {
namespace {

using yarn::MachineDescriptor;

// --- broken state machines ---------------------------------------------------
// A tiny three-state machine (INIT, MID, END) broken a different way per
// fixture.  State names and edges are static so the descriptors can hand
// out string_views/spans safely.

constexpr std::string_view kTinyStates[] = {"INIT", "MID", "END"};
constexpr std::size_t kTinyTerminals[] = {2};
constexpr std::string_view kTinyFormat =
    "{id} State change from {from} to {to} on event = {event}";
constexpr std::string_view kTinyLogger = "sdlint.fixture.TinyMachine";

// INIT -> END only: MID is unreachable, and its outgoing edge is dead.
constexpr MachineDescriptor::Edge kUnreachableEdges[] = {
    {0, 2, "FINISH", ""},
    {1, 2, "NEVER", ""},
};
constexpr MachineDescriptor kUnreachableMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kUnreachableEdges};

// Same (from, event) pair leads to two different states.
constexpr MachineDescriptor::Edge kNondetEdges[] = {
    {0, 1, "GO", ""},
    {0, 2, "GO", ""},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kNondetMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kNondetEdges};

// The same edge declared twice.
constexpr MachineDescriptor::Edge kDuplicateEdges[] = {
    {0, 1, "GO", ""},
    {0, 1, "GO_AGAIN", ""},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kDuplicateMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kDuplicateEdges};

// END is declared terminal but has a way out.
constexpr MachineDescriptor::Edge kTerminalOutEdges[] = {
    {0, 1, "GO", ""},
    {1, 2, "FINISH", ""},
    {2, 1, "ZOMBIE", ""},
};
constexpr MachineDescriptor kTerminalOutMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kTerminalOutEdges};

// MID is reachable but has no outgoing edge and is not terminal.
constexpr MachineDescriptor::Edge kDeadEndEdges[] = {
    {0, 1, "GO", ""},
    {0, 2, "FINISH", ""},
};
constexpr MachineDescriptor kDeadEndMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kDeadEndEdges};

// An emits annotation naming an event the miner does not know.
constexpr MachineDescriptor::Edge kBadEmitEdges[] = {
    {0, 1, "GO", "NOT_A_REAL_EVENT"},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kBadEmitMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kBadEmitEdges};

// --- broken emitter/extractor contracts --------------------------------------

std::vector<Finding> contract_with_lines(std::vector<DeclaredLine> lines) {
  return check_contract(lines, checker::extractor_rules(),
                        checker::class_kinds());
}

/// Format drift: the emitter renamed its marker, the rule still expects
/// the old one — the miner would silently drop START_ALLO.
std::vector<Finding> run_contract_drift() {
  return contract_with_lines(
      {{"fixture.start-allo-drift",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC BEGIN_ALLO requesting 4 executor containers", "START_ALLO"}});
}

/// Ambiguity: one line matches two rules of its class.
std::vector<Finding> run_contract_ambiguous() {
  return contract_with_lines(
      {{"fixture.allo-ambiguous",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC START_ALLO after END_ALLO replay", "START_ALLO"}});
}

/// Wrong event: the only matching rule produces a different kind than
/// the emitter declares.
std::vector<Finding> run_contract_wrong_event() {
  return contract_with_lines(
      {{"fixture.allo-wrong-kind",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC START_ALLO requesting 4 executor containers", "END_ALLO"}});
}

/// Missing id: a transition line without the application id the rule
/// must extract.
std::vector<Finding> run_contract_no_id() {
  return contract_with_lines(
      {{"fixture.submitted-no-id",
        "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl",
        "State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED",
        "SUBMITTED"}});
}

/// Noisy informational line: declared silent but trips an extractor rule.
std::vector<Finding> run_contract_noisy() {
  return contract_with_lines(
      {{"fixture.noisy-info-line",
        "org.apache.spark.executor.CoarseGrainedExecutorBackend",
        "Heartbeat mentions Got assigned task 7 casually", ""}});
}

/// Orphan rule: with no declared emitter lines at all, every real rule
/// is dead — the check must notice.
std::vector<Finding> run_contract_dead_rule() {
  return contract_with_lines({});
}

/// Unknown logger class: the emitter logs under a class the classifier
/// has never heard of.
std::vector<Finding> run_contract_unknown_class() {
  return contract_with_lines(
      {{"fixture.unknown-class", "org.example.NewFangledService",
        "Something scheduling-critical happened", ""}});
}

// --- broken coverage ---------------------------------------------------------

/// Dropping the Spark milestones loses REGISTER/START_ALLO/END_ALLO/
/// FIRST_TASK and both FIRST_LOG anchors.
std::vector<Finding> run_coverage_missing() {
  const std::span<const contract::MilestoneSpec> groups[] = {
      yarn::yarn_milestones(),
  };
  return check_coverage(yarn::machine_descriptors(), groups);
}

// --- broken observability vocabulary -----------------------------------------

/// A catalog missing the "alloc" component: the decomposition still
/// reports it, so the vocabulary check must flag the hole.
std::vector<Finding> run_obs_missing_spec() {
  static constexpr checker::DelayComponentSpec kTruncated[] = {
      {"total", "sdc.delay.total", "total", false},
      {"am", "sdc.delay.am", "am", false},
      {"cf", "sdc.delay.cf", "cf", false},
      {"cl", "sdc.delay.cl", "cl", false},
      {"cl-cf", "sdc.delay.cl-cf", "cl-cf", false},
      {"driver", "sdc.delay.driver", "driver", false},
      {"executor", "sdc.delay.executor", "executor", false},
      {"in-app", "sdc.delay.in-app", "in-app", false},
      {"out-app", "sdc.delay.out-app", "out-app", false},
      {"acquisition", "sdc.delay.acquisition", "acquisition", true},
      {"localization", "sdc.delay.localization", "localization", true},
      {"queuing", "sdc.delay.queuing", "queuing", true},
      {"launching", "sdc.delay.launching", "launching", true},
      {"exec-idle", "sdc.delay.exec-idle", "exec-idle", true},
  };
  return check_obs_vocabulary(kTruncated);
}

/// A catalog row for a component the decomposition never produces.
std::vector<Finding> run_obs_stale_spec() {
  static constexpr checker::DelayComponentSpec kStale[] = {
      {"total", "sdc.delay.total", "total", false},
      {"am", "sdc.delay.am", "am", false},
      {"cf", "sdc.delay.cf", "cf", false},
      {"cl", "sdc.delay.cl", "cl", false},
      {"cl-cf", "sdc.delay.cl-cf", "cl-cf", false},
      {"driver", "sdc.delay.driver", "driver", false},
      {"executor", "sdc.delay.executor", "executor", false},
      {"in-app", "sdc.delay.in-app", "in-app", false},
      {"out-app", "sdc.delay.out-app", "out-app", false},
      {"alloc", "sdc.delay.alloc", "alloc", false},
      {"acquisition", "sdc.delay.acquisition", "acquisition", true},
      {"localization", "sdc.delay.localization", "localization", true},
      {"queuing", "sdc.delay.queuing", "queuing", true},
      {"launching", "sdc.delay.launching", "launching", true},
      {"exec-idle", "sdc.delay.exec-idle", "exec-idle", true},
      {"teleportation", "sdc.delay.teleportation", "teleportation", false},
  };
  return check_obs_vocabulary(kStale);
}

// --- fixture table -----------------------------------------------------------

std::vector<Finding> run_machine_unreachable() {
  return check_machine(kUnreachableMachine);
}
std::vector<Finding> run_machine_dead_transition() {
  return check_machine(kUnreachableMachine);
}
std::vector<Finding> run_machine_nondeterministic() {
  return check_machine(kNondetMachine);
}
std::vector<Finding> run_machine_duplicate() {
  return check_machine(kDuplicateMachine);
}
std::vector<Finding> run_machine_terminal_outgoing() {
  return check_machine(kTerminalOutMachine);
}
std::vector<Finding> run_machine_dead_end() {
  return check_machine(kDeadEndMachine);
}
std::vector<Finding> run_machine_unknown_event() {
  return check_machine(kBadEmitMachine);
}

constexpr Fixture kFixtures[] = {
    {"machine-unreachable-state", "machine.unreachable",
     &run_machine_unreachable},
    {"machine-dead-transition", "machine.dead-transition",
     &run_machine_dead_transition},
    {"machine-nondeterministic", "machine.nondeterministic",
     &run_machine_nondeterministic},
    {"machine-duplicate-transition", "machine.duplicate-transition",
     &run_machine_duplicate},
    {"machine-terminal-outgoing", "machine.terminal-outgoing",
     &run_machine_terminal_outgoing},
    {"machine-dead-end", "machine.dead-end", &run_machine_dead_end},
    {"machine-unknown-event", "machine.unknown-event",
     &run_machine_unknown_event},
    {"contract-format-drift", "contract.no-match", &run_contract_drift},
    {"contract-ambiguous-line", "contract.ambiguous",
     &run_contract_ambiguous},
    {"contract-wrong-event", "contract.wrong-event",
     &run_contract_wrong_event},
    {"contract-missing-id", "contract.no-id", &run_contract_no_id},
    {"contract-noisy-info-line", "contract.noisy", &run_contract_noisy},
    {"contract-orphan-rule", "contract.dead-rule", &run_contract_dead_rule},
    {"contract-unknown-class", "contract.unknown-class",
     &run_contract_unknown_class},
    {"coverage-missing-kind", "coverage.missing-kind",
     &run_coverage_missing},
    {"obs-missing-spec", "obs.missing-metric", &run_obs_missing_spec},
    {"obs-stale-spec", "obs.stale-spec", &run_obs_stale_spec},
};

}  // namespace

std::span<const Fixture> fixtures() { return kFixtures; }

std::vector<Finding> run_selftest() {
  std::vector<Finding> findings;
  for (const Fixture& fixture : fixtures()) {
    const std::vector<Finding> fired = fixture.run();
    if (!any_with_prefix(fired, fixture.expect_check)) {
      findings.push_back(make_finding(
          "selftest.silent", std::string(fixture.name),
          "seeded violation did not trigger " +
              std::string(fixture.expect_check) + " (got " +
              std::to_string(fired.size()) + " findings)"));
    }
  }
  // The linter must also pass the real tree, or the gate is useless.
  const std::vector<Finding> real = run_all_checks().findings;
  for (const Finding& finding : real) {
    findings.push_back(make_finding("selftest.dirty", finding.subject,
                                    "[" + finding.check + "] " +
                                        finding.detail));
  }
  return findings;
}

}  // namespace sdc::lint
