#include "sdlint/fixtures.hpp"

#include "obs/metric_catalog.hpp"
#include "sdlint/contract_check.hpp"
#include "yarn/log_contract.hpp"
#include "sdlint/coverage_check.hpp"
#include "sdlint/diag_check.hpp"
#include "sdlint/machine_check.hpp"
#include "sdlint/metrics_check.hpp"
#include "sdlint/obs_check.hpp"
#include "sdlint/prom_check.hpp"
#include "sdlint/runner.hpp"

namespace sdc::lint {
namespace {

using yarn::MachineDescriptor;

// --- broken state machines ---------------------------------------------------
// A tiny three-state machine (INIT, MID, END) broken a different way per
// fixture.  State names and edges are static so the descriptors can hand
// out string_views/spans safely.

constexpr std::string_view kTinyStates[] = {"INIT", "MID", "END"};
constexpr std::size_t kTinyTerminals[] = {2};
constexpr std::string_view kTinyFormat =
    "{id} State change from {from} to {to} on event = {event}";
constexpr std::string_view kTinyLogger = "sdlint.fixture.TinyMachine";

// INIT -> END only: MID is unreachable, and its outgoing edge is dead.
constexpr MachineDescriptor::Edge kUnreachableEdges[] = {
    {0, 2, "FINISH", ""},
    {1, 2, "NEVER", ""},
};
constexpr MachineDescriptor kUnreachableMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kUnreachableEdges};

// Same (from, event) pair leads to two different states.
constexpr MachineDescriptor::Edge kNondetEdges[] = {
    {0, 1, "GO", ""},
    {0, 2, "GO", ""},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kNondetMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kNondetEdges};

// The same edge declared twice.
constexpr MachineDescriptor::Edge kDuplicateEdges[] = {
    {0, 1, "GO", ""},
    {0, 1, "GO_AGAIN", ""},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kDuplicateMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kDuplicateEdges};

// END is declared terminal but has a way out.
constexpr MachineDescriptor::Edge kTerminalOutEdges[] = {
    {0, 1, "GO", ""},
    {1, 2, "FINISH", ""},
    {2, 1, "ZOMBIE", ""},
};
constexpr MachineDescriptor kTerminalOutMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kTerminalOutEdges};

// MID is reachable but has no outgoing edge and is not terminal.
constexpr MachineDescriptor::Edge kDeadEndEdges[] = {
    {0, 1, "GO", ""},
    {0, 2, "FINISH", ""},
};
constexpr MachineDescriptor kDeadEndMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kDeadEndEdges};

// An emits annotation naming an event the miner does not know.
constexpr MachineDescriptor::Edge kBadEmitEdges[] = {
    {0, 1, "GO", "NOT_A_REAL_EVENT"},
    {1, 2, "FINISH", ""},
};
constexpr MachineDescriptor kBadEmitMachine{
    "TinyMachine", kTinyLogger, kTinyFormat, "application",
    kTinyStates,   0,           kTinyTerminals, kBadEmitEdges};

// --- broken emitter/extractor contracts --------------------------------------

std::vector<Finding> contract_with_lines(std::vector<DeclaredLine> lines) {
  return check_contract(lines, checker::extractor_rules(),
                        checker::class_kinds());
}

/// Format drift: the emitter renamed its marker, the rule still expects
/// the old one — the miner would silently drop START_ALLO.
std::vector<Finding> run_contract_drift() {
  return contract_with_lines(
      {{"fixture.start-allo-drift",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC BEGIN_ALLO requesting 4 executor containers", "START_ALLO"}});
}

/// Ambiguity: one line matches two rules of its class.
std::vector<Finding> run_contract_ambiguous() {
  return contract_with_lines(
      {{"fixture.allo-ambiguous",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC START_ALLO after END_ALLO replay", "START_ALLO"}});
}

/// Wrong event: the only matching rule produces a different kind than
/// the emitter declares.
std::vector<Finding> run_contract_wrong_event() {
  return contract_with_lines(
      {{"fixture.allo-wrong-kind",
        "org.apache.spark.deploy.yarn.YarnAllocator",
        "SDC START_ALLO requesting 4 executor containers", "END_ALLO"}});
}

/// Missing id: a transition line without the application id the rule
/// must extract.
std::vector<Finding> run_contract_no_id() {
  return contract_with_lines(
      {{"fixture.submitted-no-id",
        "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl",
        "State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED",
        "SUBMITTED"}});
}

/// Noisy informational line: declared silent but trips an extractor rule.
std::vector<Finding> run_contract_noisy() {
  return contract_with_lines(
      {{"fixture.noisy-info-line",
        "org.apache.spark.executor.CoarseGrainedExecutorBackend",
        "Heartbeat mentions Got assigned task 7 casually", ""}});
}

/// Orphan rule: with no declared emitter lines at all, every real rule
/// is dead — the check must notice.
std::vector<Finding> run_contract_dead_rule() {
  return contract_with_lines({});
}

/// Unknown logger class: the emitter logs under a class the classifier
/// has never heard of.
std::vector<Finding> run_contract_unknown_class() {
  return contract_with_lines(
      {{"fixture.unknown-class", "org.example.NewFangledService",
        "Something scheduling-critical happened", ""}});
}

// --- broken coverage ---------------------------------------------------------

/// Dropping the Spark milestones loses REGISTER/START_ALLO/END_ALLO/
/// FIRST_TASK and both FIRST_LOG anchors.
std::vector<Finding> run_coverage_missing() {
  const std::span<const contract::MilestoneSpec> groups[] = {
      yarn::yarn_milestones(),
  };
  return check_coverage(yarn::machine_descriptors(), groups);
}

// --- broken observability vocabulary -----------------------------------------

/// A catalog missing the "alloc" component: the decomposition still
/// reports it, so the vocabulary check must flag the hole.
std::vector<Finding> run_obs_missing_spec() {
  static constexpr checker::DelayComponentSpec kTruncated[] = {
      {"total", "sdc.delay.total", "total", false},
      {"am", "sdc.delay.am", "am", false},
      {"cf", "sdc.delay.cf", "cf", false},
      {"cl", "sdc.delay.cl", "cl", false},
      {"cl-cf", "sdc.delay.cl-cf", "cl-cf", false},
      {"driver", "sdc.delay.driver", "driver", false},
      {"executor", "sdc.delay.executor", "executor", false},
      {"in-app", "sdc.delay.in-app", "in-app", false},
      {"out-app", "sdc.delay.out-app", "out-app", false},
      {"acquisition", "sdc.delay.acquisition", "acquisition", true},
      {"localization", "sdc.delay.localization", "localization", true},
      {"queuing", "sdc.delay.queuing", "queuing", true},
      {"launching", "sdc.delay.launching", "launching", true},
      {"exec-idle", "sdc.delay.exec-idle", "exec-idle", true},
  };
  return check_obs_vocabulary(kTruncated);
}

/// A catalog row for a component the decomposition never produces.
std::vector<Finding> run_obs_stale_spec() {
  static constexpr checker::DelayComponentSpec kStale[] = {
      {"total", "sdc.delay.total", "total", false},
      {"am", "sdc.delay.am", "am", false},
      {"cf", "sdc.delay.cf", "cf", false},
      {"cl", "sdc.delay.cl", "cl", false},
      {"cl-cf", "sdc.delay.cl-cf", "cl-cf", false},
      {"driver", "sdc.delay.driver", "driver", false},
      {"executor", "sdc.delay.executor", "executor", false},
      {"in-app", "sdc.delay.in-app", "in-app", false},
      {"out-app", "sdc.delay.out-app", "out-app", false},
      {"alloc", "sdc.delay.alloc", "alloc", false},
      {"acquisition", "sdc.delay.acquisition", "acquisition", true},
      {"localization", "sdc.delay.localization", "localization", true},
      {"queuing", "sdc.delay.queuing", "queuing", true},
      {"launching", "sdc.delay.launching", "launching", true},
      {"exec-idle", "sdc.delay.exec-idle", "exec-idle", true},
      {"teleportation", "sdc.delay.teleportation", "teleportation", false},
  };
  return check_obs_vocabulary(kStale);
}

// --- broken metric catalogs --------------------------------------------------
// A tiny two-row catalog (one counter, the sdc.delay histogram family),
// broken a different way per fixture.  The happy-path doc table is
// *generated* from the catalog, so only the seeded violation fires.

using obs::MetricKind;
using obs::MetricSpec;

constexpr MetricSpec kTinyCounter{"fixture.lines", MetricKind::kCounter,
                                  "lines", "fixture lines mined"};
constexpr MetricSpec kTinyDelay{"sdc.delay.<component>",
                                MetricKind::kHistogram, "ms",
                                "fixture delay samples"};
constexpr MetricSpec kTinyCatalog[] = {kTinyCounter, kTinyDelay};

constexpr checker::DelayComponentSpec kTinyDelaySpecs[] = {
    {"total", "sdc.delay.total", "total", false},
};

/// Inputs that pass every metrics.* check: catalog-generated doc table,
/// bound delay spec, a snapshot holding only cataloged instruments.
MetricsCheckInputs tiny_metrics_inputs(const std::string& doc_table,
                                       const obs::MetricsSnapshot* snapshot) {
  MetricsCheckInputs inputs;
  inputs.catalog = kTinyCatalog;
  inputs.delay_specs = kTinyDelaySpecs;
  inputs.snapshot = snapshot;
  inputs.doc_table = doc_table;
  return inputs;
}

/// Two catalog rows with one name.
std::vector<Finding> run_metrics_duplicate_spec() {
  static constexpr MetricSpec kDuplicated[] = {kTinyCounter, kTinyCounter,
                                               kTinyDelay};
  static const std::string doc = obs::render_metric_table(kDuplicated);
  MetricsCheckInputs inputs = tiny_metrics_inputs(doc, nullptr);
  inputs.catalog = kDuplicated;
  return check_metrics(inputs);
}

/// A catalog row the committed doc table does not carry (the acceptance
/// fixture: an undocumented metric must make sdlint exit nonzero).
std::vector<Finding> run_metrics_undocumented() {
  static const std::string doc =
      obs::render_metric_table(std::span<const MetricSpec>(kTinyCatalog, 1));
  return check_metrics(tiny_metrics_inputs(doc, nullptr));
}

/// A doc table row for a metric the catalog does not declare.
std::vector<Finding> run_metrics_stale_doc() {
  static const std::string doc =
      obs::render_metric_table(kTinyCatalog) +
      "| `fixture.ghost` | counter | lines | documented but undeclared |\n";
  return check_metrics(tiny_metrics_inputs(doc, nullptr));
}

/// Doc row present but its kind cell drifted from the catalog.
std::vector<Finding> run_metrics_doc_drift() {
  static const std::string doc = [] {
    std::string table = obs::render_metric_table(kTinyCatalog);
    const std::size_t at = table.find("| counter |");
    return table.replace(at, 11, "| gauge |");
  }();
  return check_metrics(tiny_metrics_inputs(doc, nullptr));
}

/// The registry carries an instrument no catalog row matches.
std::vector<Finding> run_metrics_unknown_instrument() {
  static const std::string doc = obs::render_metric_table(kTinyCatalog);
  obs::MetricsSnapshot snapshot;
  snapshot.counters["fixture.rogue"] = 1;
  return check_metrics(tiny_metrics_inputs(doc, &snapshot));
}

/// A cataloged counter registered as a gauge.
std::vector<Finding> run_metrics_kind_mismatch() {
  static const std::string doc = obs::render_metric_table(kTinyCatalog);
  obs::MetricsSnapshot snapshot;
  snapshot.gauges["fixture.lines"] = 1;
  return check_metrics(tiny_metrics_inputs(doc, &snapshot));
}

/// An sdc.delay.* histogram with no delay-component catalog row.
std::vector<Finding> run_metrics_delay_unbound() {
  static const std::string doc = obs::render_metric_table(kTinyCatalog);
  obs::MetricsSnapshot snapshot;
  snapshot.histograms["sdc.delay.teleportation"] = {};
  return check_metrics(tiny_metrics_inputs(doc, &snapshot));
}

/// The doc table cannot be located at all.
std::vector<Finding> run_metrics_doc_missing() {
  MetricsCheckInputs inputs = tiny_metrics_inputs({}, nullptr);
  inputs.doc_found = false;
  return check_metrics(inputs);
}

// --- broken Prometheus mappings ----------------------------------------------
// Tiny catalogs handed to check_prom, each seeding one way the
// mechanical name mangling ('.'/'-' -> '_') stops being total or
// injective.

/// A name with a character the mangling has no mapping for.
std::vector<Finding> run_prom_invalid_name() {
  static constexpr MetricSpec kBadName[] = {
      {"fixture.bad%char", MetricKind::kCounter, "lines", "fixture"}};
  PromCheckInputs inputs;
  inputs.catalog = kBadName;
  return check_prom(inputs);
}

/// Two distinct registry names that collapse onto one Prometheus name.
std::vector<Finding> run_prom_duplicate_name() {
  static constexpr MetricSpec kColliding[] = {
      {"fixture.scrape-total", MetricKind::kCounter, "scrapes", "fixture"},
      {"fixture.scrape.total", MetricKind::kCounter, "scrapes", "fixture"}};
  PromCheckInputs inputs;
  inputs.catalog = kColliding;
  return check_prom(inputs);
}

/// A counter shadowing a histogram's implied `_count` series.
std::vector<Finding> run_prom_series_collision() {
  static constexpr MetricSpec kShadowed[] = {
      {"fixture.lat", MetricKind::kHistogram, "ms", "fixture"},
      {"fixture.lat.count", MetricKind::kCounter, "samples", "fixture"}};
  PromCheckInputs inputs;
  inputs.catalog = kShadowed;
  return check_prom(inputs);
}

constexpr MetricSpec kPromFamily[] = {
    {"fixture.errors.<class>", MetricKind::kCounter, "occurrences",
     "fixture family"}};

/// A family member whose suffix cannot be mangled (embedded space).
std::vector<Finding> run_prom_suffix_unsafe() {
  static const std::vector<FamilySuffixes> kUnsafe = {
      {"fixture.errors.<class>", {"bad class"}}};
  PromCheckInputs inputs;
  inputs.catalog = kPromFamily;
  inputs.suffixes = kUnsafe;
  return check_prom(inputs);
}

/// A family the check has no member vocabulary for.
std::vector<Finding> run_prom_family_unlisted() {
  PromCheckInputs inputs;
  inputs.catalog = kPromFamily;
  return check_prom(inputs);
}

// --- broken diagnostic vocabularies ------------------------------------------
// One healthy kind row (plus per-fixture damage) and the doc table that
// matches it.

const DiagKindRow kHealthyKind{"fixture-garbage", 1, {"garbage-bytes"}, {}};
constexpr std::string_view kHealthyDiagDoc =
    "| kind | severity | trigger | fuzz coverage |\n"
    "|---|---|---|---|\n"
    "| `fixture-garbage` | 1 | seeded garbage | `garbage-bytes` |\n";

std::vector<Finding> check_diag_rows(std::span<const DiagKindRow> rows,
                                     std::string_view doc_table,
                                     bool doc_found = true) {
  DiagCheckInputs inputs;
  inputs.kinds = rows;
  inputs.doc_table = doc_table;
  inputs.doc_found = doc_found;
  return check_diagnostics(inputs);
}

/// A kind whose renderer falls through to the "?" sentinel.
std::vector<Finding> run_diag_unnamed() {
  const DiagKindRow rows[] = {kHealthyKind, {"?", 1, {"clock-skew"}, {}}};
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// Two kinds sharing one short name.
std::vector<Finding> run_diag_duplicate_name() {
  const DiagKindRow rows[] = {kHealthyKind, kHealthyKind};
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// diagnostic_severity falling through to the sentinel.
std::vector<Finding> run_diag_bad_severity() {
  const DiagKindRow rows[] = {
      kHealthyKind,
      {"fixture-odd", 3, {"clock-skew"}, {}},
  };
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// A kind no mutation class surfaces and no exemption covers (the
/// acceptance fixture: an unmapped diagnostic kind must make sdlint
/// exit nonzero).
std::vector<Finding> run_diag_unmapped_kind() {
  const DiagKindRow rows[] = {kHealthyKind, {"fixture-orphan", 1, {}, {}}};
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// A runtime-only exemption the mutator has since made stale.
std::vector<Finding> run_diag_stale_exemption() {
  const DiagKindRow rows[] = {
      kHealthyKind,
      {"fixture-covered", 1, {"clock-skew"}, "legacy exemption"},
  };
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// A kind missing its doc table row.
std::vector<Finding> run_diag_undocumented() {
  const DiagKindRow rows[] = {
      kHealthyKind,
      {"fixture-undocumented", 1, {"clock-skew"}, {}},
  };
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// A doc row for a kind the code does not declare.
std::vector<Finding> run_diag_stale_doc() {
  const DiagKindRow rows[] = {kHealthyKind};
  const std::string doc =
      std::string(kHealthyDiagDoc) +
      "| `fixture-ghost` | 1 | documented but undeclared | `clock-skew` |\n";
  return check_diag_rows(rows, doc);
}

/// Doc severity column drifted from diagnostic_severity.
std::vector<Finding> run_diag_doc_drift() {
  const DiagKindRow rows[] = {{"fixture-garbage", 2, {"garbage-bytes"}, {}}};
  return check_diag_rows(rows, kHealthyDiagDoc);
}

/// The doc table cannot be located at all.
std::vector<Finding> run_diag_doc_missing() {
  const DiagKindRow rows[] = {kHealthyKind};
  return check_diag_rows(rows, {}, /*doc_found=*/false);
}

// --- fixture table -----------------------------------------------------------

std::vector<Finding> run_machine_unreachable() {
  return check_machine(kUnreachableMachine);
}
std::vector<Finding> run_machine_dead_transition() {
  return check_machine(kUnreachableMachine);
}
std::vector<Finding> run_machine_nondeterministic() {
  return check_machine(kNondetMachine);
}
std::vector<Finding> run_machine_duplicate() {
  return check_machine(kDuplicateMachine);
}
std::vector<Finding> run_machine_terminal_outgoing() {
  return check_machine(kTerminalOutMachine);
}
std::vector<Finding> run_machine_dead_end() {
  return check_machine(kDeadEndMachine);
}
std::vector<Finding> run_machine_unknown_event() {
  return check_machine(kBadEmitMachine);
}

constexpr Fixture kFixtures[] = {
    {"machine-unreachable-state", "machine.unreachable",
     &run_machine_unreachable},
    {"machine-dead-transition", "machine.dead-transition",
     &run_machine_dead_transition},
    {"machine-nondeterministic", "machine.nondeterministic",
     &run_machine_nondeterministic},
    {"machine-duplicate-transition", "machine.duplicate-transition",
     &run_machine_duplicate},
    {"machine-terminal-outgoing", "machine.terminal-outgoing",
     &run_machine_terminal_outgoing},
    {"machine-dead-end", "machine.dead-end", &run_machine_dead_end},
    {"machine-unknown-event", "machine.unknown-event",
     &run_machine_unknown_event},
    {"contract-format-drift", "contract.no-match", &run_contract_drift},
    {"contract-ambiguous-line", "contract.ambiguous",
     &run_contract_ambiguous},
    {"contract-wrong-event", "contract.wrong-event",
     &run_contract_wrong_event},
    {"contract-missing-id", "contract.no-id", &run_contract_no_id},
    {"contract-noisy-info-line", "contract.noisy", &run_contract_noisy},
    {"contract-orphan-rule", "contract.dead-rule", &run_contract_dead_rule},
    {"contract-unknown-class", "contract.unknown-class",
     &run_contract_unknown_class},
    {"coverage-missing-kind", "coverage.missing-kind",
     &run_coverage_missing},
    {"obs-missing-spec", "obs.missing-metric", &run_obs_missing_spec},
    {"obs-stale-spec", "obs.stale-spec", &run_obs_stale_spec},
    {"metrics-duplicate-spec", "metrics.duplicate-spec",
     &run_metrics_duplicate_spec},
    {"metrics-undocumented", "metrics.undocumented",
     &run_metrics_undocumented},
    {"metrics-stale-doc", "metrics.stale-doc", &run_metrics_stale_doc},
    {"metrics-doc-drift", "metrics.doc-drift", &run_metrics_doc_drift},
    {"metrics-unknown-instrument", "metrics.unknown-instrument",
     &run_metrics_unknown_instrument},
    {"metrics-kind-mismatch", "metrics.kind-mismatch",
     &run_metrics_kind_mismatch},
    {"metrics-delay-unbound", "metrics.delay-unbound",
     &run_metrics_delay_unbound},
    {"metrics-doc-missing", "metrics.doc-missing",
     &run_metrics_doc_missing},
    {"prom-invalid-name", "prom.invalid-name", &run_prom_invalid_name},
    {"prom-duplicate-name", "prom.duplicate-name",
     &run_prom_duplicate_name},
    {"prom-series-collision", "prom.series-collision",
     &run_prom_series_collision},
    {"prom-suffix-unsafe", "prom.suffix-unsafe", &run_prom_suffix_unsafe},
    {"prom-family-unlisted", "prom.family-unlisted",
     &run_prom_family_unlisted},
    {"diag-unnamed", "diag.unnamed", &run_diag_unnamed},
    {"diag-duplicate-name", "diag.duplicate-name",
     &run_diag_duplicate_name},
    {"diag-bad-severity", "diag.bad-severity", &run_diag_bad_severity},
    {"diag-unmapped-kind", "diag.unmapped-kind", &run_diag_unmapped_kind},
    {"diag-stale-exemption", "diag.stale-exemption",
     &run_diag_stale_exemption},
    {"diag-undocumented", "diag.undocumented", &run_diag_undocumented},
    {"diag-stale-doc", "diag.stale-doc", &run_diag_stale_doc},
    {"diag-doc-drift", "diag.doc-drift", &run_diag_doc_drift},
    {"diag-doc-missing", "diag.doc-missing", &run_diag_doc_missing},
};

}  // namespace

std::span<const Fixture> fixtures() { return kFixtures; }

std::vector<Finding> run_selftest() {
  std::vector<Finding> findings;
  for (const Fixture& fixture : fixtures()) {
    const std::vector<Finding> fired = fixture.run();
    if (!any_with_prefix(fired, fixture.expect_check)) {
      findings.push_back(make_finding(
          "selftest.silent", std::string(fixture.name),
          "seeded violation did not trigger " +
              std::string(fixture.expect_check) + " (got " +
              std::to_string(fired.size()) + " findings)"));
    }
  }
  // The linter must also pass the real tree, or the gate is useless.
  const std::vector<Finding> real = run_all_checks().findings;
  for (const Finding& finding : real) {
    findings.push_back(make_finding("selftest.dirty", finding.subject,
                                    "[" + finding.check + "] " +
                                        finding.detail));
  }
  return findings;
}

}  // namespace sdc::lint
