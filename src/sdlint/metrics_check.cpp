#include "sdlint/metrics_check.hpp"

#include <map>
#include <string>

#include "common/sim_time.hpp"
#include "harness/scenario.hpp"
#include "sdchecker/sdchecker.hpp"
#include "sdlint/doc_sources.hpp"
#include "workloads/tpch.hpp"

namespace sdc::lint {
namespace {

const obs::MetricSpec* find_spec(std::span<const obs::MetricSpec> catalog,
                                 std::string_view instrument) {
  for (const obs::MetricSpec& row : catalog) {
    if (row.matches(instrument)) return &row;
  }
  return nullptr;
}

/// One registered instrument against the catalog: unknown name or
/// wrong-kind row, each a finding.
void check_instrument(std::span<const obs::MetricSpec> catalog,
                      std::string_view name, obs::MetricKind kind,
                      std::vector<Finding>& findings) {
  const obs::MetricSpec* row = find_spec(catalog, name);
  if (row == nullptr) {
    findings.push_back(make_finding(
        "metrics.unknown-instrument", std::string(name),
        "registered " + std::string(obs::metric_kind_name(kind)) +
            " has no metric-catalog row (register through "
            "obs::catalog_* with a spec, and add the row)"));
    return;
  }
  if (row->kind != kind) {
    findings.push_back(make_finding(
        "metrics.kind-mismatch", std::string(name),
        "registered as a " + std::string(obs::metric_kind_name(kind)) +
            " but catalog row '" + std::string(row->name) + "' declares a " +
            std::string(obs::metric_kind_name(row->kind))));
  }
}

struct DocRow {
  std::string kind;
  std::string unit;
  std::string doc;
};

/// Catalog rows vs the committed doc table, both directions plus
/// cell-level drift.
void check_doc_parity(const MetricsCheckInputs& inputs,
                      std::vector<Finding>& findings) {
  if (!inputs.doc_found) {
    findings.push_back(make_finding(
        "metrics.doc-missing", "docs/OBSERVABILITY.md",
        "metric-catalog table (between the BEGIN/END markers) not found; "
        "regenerate with `build/tools/sdlint --metric-table`"));
    return;
  }
  std::map<std::string, DocRow, std::less<>> documented;
  for (const std::vector<std::string>& cells :
       parse_markdown_table(inputs.doc_table)) {
    if (cells.empty()) continue;
    const std::string name = strip_backticks(cells[0]);
    if (name == "name") continue;  // header row
    documented[name] = DocRow{cells.size() > 1 ? cells[1] : "",
                              cells.size() > 2 ? cells[2] : "",
                              cells.size() > 3 ? cells[3] : ""};
  }
  for (const obs::MetricSpec& row : inputs.catalog) {
    const auto it = documented.find(row.name);
    if (it == documented.end()) {
      findings.push_back(make_finding(
          "metrics.undocumented", std::string(row.name),
          "catalog row has no docs/OBSERVABILITY.md table row; regenerate "
          "with `build/tools/sdlint --metric-table`"));
      continue;
    }
    if (it->second.kind != obs::metric_kind_name(row.kind) ||
        it->second.unit != row.unit || it->second.doc != row.doc) {
      findings.push_back(make_finding(
          "metrics.doc-drift", std::string(row.name),
          "doc table row disagrees with the catalog (kind/unit/meaning); "
          "regenerate with `build/tools/sdlint --metric-table`"));
    }
  }
  for (const auto& [name, row] : documented) {
    bool in_catalog = false;
    for (const obs::MetricSpec& spec : inputs.catalog) {
      if (spec.name == name) in_catalog = true;
    }
    if (!in_catalog) {
      findings.push_back(make_finding(
          "metrics.stale-doc", name,
          "doc table documents a metric the catalog does not declare"));
    }
  }
}

/// The sdc.delay.* histogram family and the delay-component catalog must
/// name exactly the same instruments, in both directions.
void check_delay_binding(const MetricsCheckInputs& inputs,
                         std::vector<Finding>& findings) {
  constexpr std::string_view kDelayPrefix = "sdc.delay.";
  const obs::MetricSpec* family = nullptr;
  for (const obs::MetricSpec& row : inputs.catalog) {
    if (row.is_family() && row.family_prefix() == kDelayPrefix) family = &row;
  }
  if (family == nullptr) {
    if (!inputs.delay_specs.empty()) {
      findings.push_back(make_finding(
          "metrics.delay-unbound", std::string(kDelayPrefix) + "<component>",
          "the delay-component catalog exists but the metric catalog has "
          "no sdc.delay.<component> family row"));
    }
    return;
  }
  if (family->kind != obs::MetricKind::kHistogram) {
    findings.push_back(make_finding(
        "metrics.delay-unbound", std::string(family->name),
        "the sdc.delay family row must be a histogram (delay components "
        "are sampled distributions)"));
  }
  for (const checker::DelayComponentSpec& spec : inputs.delay_specs) {
    if (!family->matches(spec.histogram)) {
      findings.push_back(make_finding(
          "metrics.delay-unbound", std::string(spec.metric),
          "delay component histogram '" + std::string(spec.histogram) +
              "' is outside the " + std::string(family->name) + " family"));
    }
  }
  if (inputs.snapshot == nullptr) return;
  for (const auto& [name, value] : inputs.snapshot->histograms) {
    if (!family->matches(name)) continue;
    bool bound = false;
    for (const checker::DelayComponentSpec& spec : inputs.delay_specs) {
      if (spec.histogram == name) bound = true;
    }
    if (!bound) {
      findings.push_back(make_finding(
          "metrics.delay-unbound", name,
          "registered sdc.delay.* histogram matches no delay-component "
          "catalog row (checker::delay_component_specs())"));
    }
  }
}

}  // namespace

std::vector<Finding> check_metrics(const MetricsCheckInputs& inputs) {
  std::vector<Finding> findings;

  // Catalog self-consistency: no row may shadow another.
  for (std::size_t i = 0; i < inputs.catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < inputs.catalog.size(); ++j) {
      const obs::MetricSpec& a = inputs.catalog[i];
      const obs::MetricSpec& b = inputs.catalog[j];
      if (a.name == b.name || a.matches(b.name) || b.matches(a.name)) {
        findings.push_back(make_finding(
            "metrics.duplicate-spec", std::string(a.name),
            "catalog row overlaps row '" + std::string(b.name) +
                "' (same name, or one family matches the other)"));
      }
    }
  }

  check_doc_parity(inputs, findings);
  check_delay_binding(inputs, findings);

  if (inputs.snapshot != nullptr) {
    for (const auto& [name, value] : inputs.snapshot->counters) {
      check_instrument(inputs.catalog, name, obs::MetricKind::kCounter,
                       findings);
    }
    for (const auto& [name, value] : inputs.snapshot->gauges) {
      check_instrument(inputs.catalog, name, obs::MetricKind::kGauge,
                       findings);
    }
    for (const auto& [name, value] : inputs.snapshot->histograms) {
      check_instrument(inputs.catalog, name, obs::MetricKind::kHistogram,
                       findings);
    }
  }
  return findings;
}

std::vector<Finding> check_real_metrics() {
  // Populate the registry with the production instruments before
  // snapshotting: a micro scenario registers the sim.* family; analyzing
  // its bundle registers mine.* / analyze.* and (through the aggregate
  // report it builds) every sdc.delay.* histogram.  Cached: the checks
  // are pure over the snapshot.
  static const obs::MetricsSnapshot snapshot = [] {
    harness::ScenarioConfig scenario;
    scenario.seed = 7;
    harness::SparkSubmissionPlan plan;
    plan.at = seconds(1);
    plan.app = workloads::make_tpch_query(1, 512, 2);
    scenario.spark_jobs.push_back(plan);
    const harness::ScenarioResult run = harness::run_scenario(scenario);

    const checker::SdChecker checker;
    (void)checker.analyze(run.logs);
    return obs::MetricsRegistry::global().snapshot();
  }();

  const DocSection section =
      load_doc_section("OBSERVABILITY.md", kMetricTableBegin, kMetricTableEnd);
  MetricsCheckInputs inputs;
  inputs.catalog = obs::metric_catalog();
  inputs.delay_specs = checker::delay_component_specs();
  inputs.snapshot = &snapshot;
  inputs.doc_table = section.text;
  inputs.doc_found = section.file_found && section.section_found;
  return check_metrics(inputs);
}

}  // namespace sdc::lint
