// Minimal JSON value + recursive-descent parser.
//
// The repo's JSON layer is writer-only by design (the tool consumes
// logs); this is the one reader we need — for validating our *own*
// emitted documents (trace-event JSON, the follow watch stream) in
// tests, `--check` CLI paths and CI.  Full escape handling, doubles for
// all numbers, depth-limited.  Not a general-purpose parser: no
// surrogate pairs (non-ASCII \u escapes become '?'), no SAX interface.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sdc::obs {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::unique_ptr<JsonArray>, std::unique_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    const auto* p = std::get_if<std::unique_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    const auto* p = std::get_if<std::unique_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const std::string* string() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
  [[nodiscard]] const bool* boolean() const { return std::get_if<bool>(&v); }
};

/// Parses one complete JSON document (trailing content is an error).
/// Returns false and fills `error` (with a byte offset) on malformed
/// input.  Never throws.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string& error);

/// Object member lookup; nullptr when absent.
[[nodiscard]] const JsonValue* json_find(const JsonObject& object,
                                         const std::string& key);

}  // namespace sdc::obs
