#include "obs/trace_check.hpp"

#include <map>
#include <set>
#include <utility>

#include "obs/json_parse.hpp"

namespace sdc::obs {
namespace {

const JsonValue* find(const JsonObject& object, const std::string& key) {
  return json_find(object, key);
}

}  // namespace

TraceCheckResult check_trace_json(std::string_view text,
                                  const TraceCheckOptions& options) {
  TraceCheckResult result;
  JsonValue root;
  std::string error;
  if (!parse_json(text, root, error)) {
    result.fail("parse error: " + error);
    return result;
  }
  const JsonObject* top = root.object();
  if (top == nullptr) {
    result.fail("top level is not an object");
    return result;
  }
  const JsonValue* events_value = find(*top, "traceEvents");
  const JsonArray* events =
      events_value != nullptr ? events_value->array() : nullptr;
  if (events == nullptr) {
    result.fail("missing \"traceEvents\" array");
    return result;
  }

  // Per-(pid,tid) last slice timestamp for the monotonicity check; per-pid
  // process names and slice-name sets for the required-slice check.
  std::map<std::pair<double, double>, double> last_ts;
  std::map<double, std::string> process_names;
  std::map<double, std::set<std::string>> slices_by_pid;

  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonObject* event = (*events)[i].object();
    const std::string at = "event #" + std::to_string(i);
    if (event == nullptr) {
      result.fail(at + ": not an object");
      continue;
    }
    ++result.events;
    const JsonValue* name = find(*event, "name");
    const JsonValue* ph = find(*event, "ph");
    const JsonValue* pid = find(*event, "pid");
    const JsonValue* tid = find(*event, "tid");
    if (name == nullptr || name->string() == nullptr) {
      result.fail(at + ": missing string \"name\"");
      continue;
    }
    if (ph == nullptr || ph->string() == nullptr || ph->string()->size() != 1) {
      result.fail(at + ": missing one-char \"ph\"");
      continue;
    }
    if (pid == nullptr || pid->number() == nullptr || tid == nullptr ||
        tid->number() == nullptr) {
      result.fail(at + ": missing numeric \"pid\"/\"tid\"");
      continue;
    }
    const char phase = (*ph->string())[0];
    if (phase == 'M') {
      if (*name->string() == "process_name") {
        const JsonValue* args = find(*event, "args");
        const JsonObject* args_object =
            args != nullptr ? args->object() : nullptr;
        const JsonValue* pname =
            args_object != nullptr ? find(*args_object, "name") : nullptr;
        if (pname == nullptr || pname->string() == nullptr) {
          result.fail(at + ": process_name without args.name");
        } else {
          process_names[*pid->number()] = *pname->string();
        }
      }
      continue;
    }
    if (phase != 'X' && phase != 'i' && phase != 'I') {
      result.fail(at + ": unsupported phase '" + std::string(1, phase) + "'");
      continue;
    }
    const JsonValue* ts = find(*event, "ts");
    if (ts == nullptr || ts->number() == nullptr) {
      result.fail(at + ": missing numeric \"ts\"");
      continue;
    }
    if (phase == 'X') {
      const JsonValue* dur = find(*event, "dur");
      if (dur == nullptr || dur->number() == nullptr) {
        result.fail(at + ": complete slice without numeric \"dur\"");
        continue;
      }
      if (*dur->number() < 0) {
        result.fail(at + " (" + *name->string() + "): negative dur");
      }
      const auto track = std::make_pair(*pid->number(), *tid->number());
      const auto it = last_ts.find(track);
      if (it != last_ts.end() && *ts->number() < it->second) {
        result.fail(at + " (" + *name->string() +
                    "): slice ts goes backwards on its track");
      }
      last_ts[track] = *ts->number();
      slices_by_pid[*pid->number()].insert(*name->string());
    }
  }

  result.processes = process_names.size();
  if (!options.required_process_prefix.empty() &&
      !options.required_slices.empty()) {
    for (const auto& [pid, pname] : process_names) {
      if (pname.rfind(options.required_process_prefix, 0) != 0) continue;
      const auto it = slices_by_pid.find(pid);
      for (const std::string& required : options.required_slices) {
        if (it == slices_by_pid.end() ||
            it->second.find(required) == it->second.end()) {
          result.fail("process \"" + pname + "\": missing required slice \"" +
                      required + "\"");
        }
      }
    }
  }
  return result;
}

}  // namespace sdc::obs
