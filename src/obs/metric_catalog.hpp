// The metric catalog: one constexpr row per instrument the tree is
// allowed to register (ISSUE 8).
//
// PR 4 fixed delay-component drift with a single-source-of-truth
// catalog (checker::DelayComponentSpec); this generalizes the pattern
// to *every* metric.  Each `MetricSpec` carries the instrument's name,
// kind, unit and one-line doc string; instrumentation points register
// through `catalog_counter`/`catalog_gauge`/`catalog_histogram`
// (passing the named spec, never a loose string), and sdlint's
// `metrics.*` checks hold three surfaces to the catalog:
//
//   - the registry: every instrument registered at runtime must match a
//     catalog row (name and kind);
//   - docs/OBSERVABILITY.md: the metric table is *generated* from this
//     catalog (`sdlint --metric-table`) and checked for parity in both
//     directions;
//   - the delay vocabulary: the `sdc.delay.<component>` family stays
//     bound to checker::delay_component_specs().
//
// Families: a name ending in `.<placeholder>` (literally, e.g.
// "mine.diagnostics.<kind>") declares a dynamic-suffix family; any
// instrument under the prefix belongs to that row.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace sdc::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

/// One catalog row.  All fields reference static storage (the catalog
/// is constexpr data), so specs are freely copyable string_view bags.
struct MetricSpec {
  std::string_view name;  // doc-facing; families end with ".<placeholder>"
  MetricKind kind = MetricKind::kCounter;
  std::string_view unit;  // what one increment / sample measures
  std::string_view doc;   // one-line meaning, rendered into the doc table

  /// True when this row declares a dynamic-suffix family.
  [[nodiscard]] constexpr bool is_family() const {
    return !name.empty() && name.back() == '>';
  }
  /// The literal prefix a family matches ("mine.diagnostics."); the
  /// full name for plain rows.
  [[nodiscard]] constexpr std::string_view family_prefix() const {
    const std::size_t lt = name.rfind('<');
    return lt == std::string_view::npos ? name : name.substr(0, lt);
  }
  /// Does a registered instrument name belong to this row?
  [[nodiscard]] constexpr bool matches(std::string_view instrument) const {
    if (!is_family()) return instrument == name;
    const std::string_view prefix = family_prefix();
    return instrument.size() > prefix.size() &&
           instrument.substr(0, prefix.size()) == prefix;
  }
};

namespace metric {

// --- simulator ---------------------------------------------------------------
inline constexpr MetricSpec kSimEngineEventsExecuted{
    "sim.engine.events_executed", MetricKind::kCounter, "events",
    "simulation events popped and run"};
inline constexpr MetricSpec kSimEngineTimersScheduled{
    "sim.engine.timers_scheduled", MetricKind::kCounter, "timers",
    "`schedule_at`/`schedule_after` calls"};
inline constexpr MetricSpec kSimRmAppsSubmitted{
    "sim.rm.apps_submitted", MetricKind::kCounter, "apps",
    "applications submitted to the RM"};
inline constexpr MetricSpec kSimRmAppTransitions{
    "sim.rm.app_transitions", MetricKind::kCounter, "transitions",
    "RMAppImpl state-machine transitions"};
inline constexpr MetricSpec kSimRmContainerTransitions{
    "sim.rm.container_transitions", MetricKind::kCounter, "transitions",
    "RMContainerImpl transitions"};
inline constexpr MetricSpec kSimRmContainersAllocated{
    "sim.rm.containers_allocated", MetricKind::kCounter, "containers",
    "containers reaching ALLOCATED"};
inline constexpr MetricSpec kSimRmNodeHeartbeats{
    "sim.rm.node_heartbeats", MetricKind::kCounter, "heartbeats",
    "NM heartbeats processed"};
inline constexpr MetricSpec kSimRmAmHeartbeats{
    "sim.rm.am_heartbeats", MetricKind::kCounter, "heartbeats",
    "AM allocate() heartbeats"};
inline constexpr MetricSpec kSimNmContainerTransitions{
    "sim.nm.container_transitions", MetricKind::kCounter, "transitions",
    "NM-side ContainerImpl transitions"};
inline constexpr MetricSpec kSimSparkExecutorsRegistered{
    "sim.spark.executors_registered", MetricKind::kCounter, "executors",
    "executors registered with drivers"};
inline constexpr MetricSpec kSimSparkTasksAssigned{
    "sim.spark.tasks_assigned", MetricKind::kCounter, "tasks",
    "task assignments to executors"};
inline constexpr MetricSpec kSimYarnAllocPipelineWaitMs{
    "sim.yarn.alloc_pipeline_wait_ms", MetricKind::kHistogram, "ms",
    "grant-to-allocation pipeline wait"};

// --- mining ------------------------------------------------------------------
inline constexpr MetricSpec kMineLines{
    "mine.lines", MetricKind::kCounter, "lines",
    "log lines mined (all chunks)"};
inline constexpr MetricSpec kMineLinesExpected{
    "mine.lines_expected", MetricKind::kGauge, "lines",
    "cumulative lines queued for mining (`expected - mine.lines` = "
    "remaining)"};
inline constexpr MetricSpec kMineEvents{
    "mine.events", MetricKind::kCounter, "events",
    "Table-I events extracted"};
inline constexpr MetricSpec kMineStreams{
    "mine.streams", MetricKind::kCounter, "streams", "streams mined"};
inline constexpr MetricSpec kMineDiagnostics{
    "mine.diagnostics.<kind>", MetricKind::kCounter, "occurrences",
    "per-kind corpus diagnostics (`unreadable-file`, `binary-garbage`, "
    "...)"};
inline constexpr MetricSpec kMineScanPrefilterSkipped{
    "mine.scan.prefilter_skipped", MetricKind::kCounter, "lines",
    "parsed lines rejected by the shortest-rule length pre-filter before "
    "extraction"};
inline constexpr MetricSpec kMineScanBackend{
    "mine.scan.backend.<name>", MetricKind::kCounter, "calls",
    "mine() calls run under each scan backend (`scalar`, `swar`, `sse2`, "
    "`avx2`)"};

// --- incremental / follow ----------------------------------------------------
inline constexpr MetricSpec kIncrementalLines{
    "incremental.lines", MetricKind::kCounter, "lines",
    "lines fed to the incremental analyzer"};
inline constexpr MetricSpec kIncrementalAppsRetired{
    "incremental.apps_retired", MetricKind::kCounter, "apps",
    "terminal applications whose timelines were evicted to a "
    "retired-delays row"};
inline constexpr MetricSpec kFollowPolls{
    "follow.polls", MetricKind::kCounter, "polls",
    "directory polls run by the follow service"};
inline constexpr MetricSpec kFollowBytes{
    "follow.bytes", MetricKind::kCounter, "bytes",
    "appended bytes drained from followed files"};
inline constexpr MetricSpec kFollowStreams{
    "follow.streams", MetricKind::kCounter, "streams",
    "distinct logical streams discovered while following"};
inline constexpr MetricSpec kFollowRotations{
    "follow.rotations", MetricKind::kCounter, "rotations",
    "rotation handoffs observed (`base.log` renamed, fresh base appeared)"};
inline constexpr MetricSpec kFollowAppsRetired{
    "follow.apps_retired", MetricKind::kCounter, "apps",
    "applications retired by follow-mode eviction (mirrors "
    "`incremental.apps_retired` for the service)"};
inline constexpr MetricSpec kFollowPollLastAgeMs{
    "follow.poll.last_age_ms", MetricKind::kGauge, "ms",
    "age of the most recent follow poll, refreshed whenever `/healthz` "
    "is served"};
inline constexpr MetricSpec kFollowPollStall{
    "follow.poll.stall", MetricKind::kCounter, "probes",
    "`/healthz` probes that found the poll loop stalled past the "
    "threshold (the probe answers 503)"};

// --- observability server ----------------------------------------------------
inline constexpr MetricSpec kObsHttpRequests{
    "obs.http.requests", MetricKind::kCounter, "requests",
    "HTTP requests parsed by the embedded observability server"};
inline constexpr MetricSpec kObsHttpBytes{
    "obs.http.bytes", MetricKind::kCounter, "bytes",
    "response bytes written by the observability server"};
inline constexpr MetricSpec kObsHttpLatencyMs{
    "obs.http.latency_ms.<endpoint>", MetricKind::kHistogram, "ms",
    "per-endpoint request service latency (`metrics`, `analysis`, "
    "`healthz`, `varz`, `other`)"};
inline constexpr MetricSpec kObsHttpErrors{
    "obs.http.errors.<class>", MetricKind::kCounter, "occurrences",
    "failed requests by class (`bad-request`, `bad-method`, `overlong`, "
    "`not-found`, `internal`, `io`, `overload`)"};

// --- thread pool -------------------------------------------------------------
inline constexpr MetricSpec kPoolTasks{
    "pool.tasks", MetricKind::kCounter, "tasks",
    "tasks executed by thread-pool workers and help-while-wait helpers "
    "(all pools in the process)"};
inline constexpr MetricSpec kPoolHelpWhileWait{
    "pool.help_while_wait", MetricKind::kCounter, "tasks",
    "queued tasks a blocked `parallel_for` waiter executed inline instead "
    "of sleeping (nested fan-out on one pool)"};
inline constexpr MetricSpec kPoolQueueDepth{
    "pool.queue_depth", MetricKind::kGauge, "tasks",
    "tasks currently queued across all thread pools"};

// --- fleet -------------------------------------------------------------------
inline constexpr MetricSpec kFleetCorpora{
    "fleet.corpora", MetricKind::kCounter, "corpora",
    "corpora analyzed to completion by fleet mode"};
inline constexpr MetricSpec kFleetCorporaFailed{
    "fleet.corpora_failed", MetricKind::kCounter, "corpora",
    "corpora fleet mode could not analyze (unreadable root, I/O failure)"};
inline constexpr MetricSpec kFleetRegressions{
    "fleet.regressions", MetricKind::kCounter, "components",
    "delay components flagged as significant drift by the fleet "
    "regression gate (`fleet --baseline`)"};

// --- analysis ----------------------------------------------------------------
inline constexpr MetricSpec kAnalyzeApps{
    "analyze.apps", MetricKind::kCounter, "apps", "applications finalized"};
inline constexpr MetricSpec kAnalyzeAnomalies{
    "analyze.anomalies", MetricKind::kCounter, "findings",
    "anomaly findings"};
inline constexpr MetricSpec kAnalyzeShards{
    "analyze.shards", MetricKind::kCounter, "shards",
    "analysis shards run by the sharded finalize (`--analyze-shards`)"};
inline constexpr MetricSpec kSdcDelay{
    "sdc.delay.<component>", MetricKind::kHistogram, "ms",
    "per-component delay samples in ms, one per delay-component catalog "
    "row"};

}  // namespace metric

/// Every catalog row, in doc-table order.
[[nodiscard]] std::span<const MetricSpec> metric_catalog();

/// The row an instrument name belongs to (exact or family match);
/// nullptr for an uncataloged instrument.
[[nodiscard]] const MetricSpec* find_metric_spec(std::string_view instrument);

/// Catalog-checked registration: like MetricsRegistry::global().counter()
/// but the spec must be a catalog row of the right kind — a mismatch
/// throws std::logic_error at the registration point instead of letting
/// an uncataloged name drift into the registry.
Counter& catalog_counter(const MetricSpec& spec);
/// Family registration ("mine.diagnostics." + suffix).
Counter& catalog_counter(const MetricSpec& family, std::string_view suffix);
Gauge& catalog_gauge(const MetricSpec& spec);
Histogram& catalog_histogram(const MetricSpec& spec,
                             std::vector<double> upper_edges =
                                 Histogram::default_latency_edges_ms());
Histogram& catalog_histogram(const MetricSpec& family,
                             std::string_view suffix,
                             std::vector<double> upper_edges =
                                 Histogram::default_latency_edges_ms());

/// Registers every non-family catalog row (zero-valued) in the global
/// registry.  The observability server calls this at start so a
/// `/metrics` scrape always carries the full catalog vocabulary, not
/// just the instruments the process happened to touch first.  Also
/// attaches the thread-pool metric sinks (below), so pool activity shows
/// up in the same scrape for free.
void register_catalog_baseline();

/// Points the common-layer thread pool at the `pool.tasks` /
/// `pool.help_while_wait` / `pool.queue_depth` catalog instruments
/// (common cannot depend on obs, so the wiring runs in this direction).
/// Idempotent; called by register_catalog_baseline and by fleet mode.
void attach_thread_pool_metrics();

/// Renders the docs/OBSERVABILITY.md metric table (markdown, including
/// the header row) from the catalog.  The committed table between the
/// BEGIN/END markers is exactly this output — regenerate with
/// `build/tools/sdlint --metric-table`; sdlint fails on any drift.
[[nodiscard]] std::string render_metric_table();
/// Same rendering over an arbitrary spec list (sdlint fixtures pass
/// deliberately broken catalogs).
[[nodiscard]] std::string render_metric_table(
    std::span<const MetricSpec> specs);

}  // namespace sdc::obs
