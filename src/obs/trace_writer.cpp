#include "obs/trace_writer.hpp"

#include <algorithm>
#include <map>

namespace sdc::obs {

TraceEventWriter::TraceEventWriter() {
  writer_.begin_object();
  writer_.field("displayTimeUnit", "ms");
  writer_.key("traceEvents");
  writer_.begin_array();
}

void TraceEventWriter::event_head(std::string_view ph, std::int64_t pid,
                                  std::int64_t tid, std::string_view name,
                                  std::string_view category) {
  writer_.begin_object();
  writer_.field("name", name);
  writer_.field("ph", ph);
  writer_.field("pid", pid);
  writer_.field("tid", tid);
  if (!category.empty()) writer_.field("cat", category);
  ++events_;
}

void TraceEventWriter::process_name(std::int64_t pid, std::string_view name) {
  event_head("M", pid, 0, "process_name", "");
  writer_.key("args").begin_object();
  writer_.field("name", name);
  writer_.end_object();
  writer_.end_object();
}

void TraceEventWriter::thread_name(std::int64_t pid, std::int64_t tid,
                                   std::string_view name) {
  event_head("M", pid, tid, "thread_name", "");
  writer_.key("args").begin_object();
  writer_.field("name", name);
  writer_.end_object();
  writer_.end_object();
}

void TraceEventWriter::complete(
    std::int64_t pid, std::int64_t tid, std::string_view name,
    std::uint64_t ts_us, std::uint64_t dur_us, std::string_view category,
    const std::vector<std::pair<std::string, std::string>>& args) {
  event_head("X", pid, tid, name, category);
  writer_.field("ts", static_cast<std::int64_t>(ts_us));
  writer_.field("dur", static_cast<std::int64_t>(dur_us));
  if (!args.empty()) {
    writer_.key("args").begin_object();
    for (const auto& [key, value] : args) writer_.field(key, value);
    writer_.end_object();
  }
  writer_.end_object();
}

void TraceEventWriter::instant(std::int64_t pid, std::int64_t tid,
                               std::string_view name, std::uint64_t ts_us,
                               std::string_view category) {
  event_head("i", pid, tid, name, category);
  writer_.field("ts", static_cast<std::int64_t>(ts_us));
  writer_.field("s", "t");  // thread-scoped instant
  writer_.end_object();
}

std::string TraceEventWriter::finish() {
  if (!finished_) {
    writer_.end_array();
    writer_.end_object();
    finished_ = true;
  }
  return writer_.take();
}

void append_spans(TraceEventWriter& writer,
                  const std::vector<SpanRecord>& spans,
                  std::string_view process, std::int64_t pid) {
  writer.process_name(pid, process);
  // Group by track and sort each track by start so per-track timestamps
  // are monotonic in file order (span completion order is end-time
  // order, which interleaves).
  std::map<std::uint32_t, std::vector<const SpanRecord*>> tracks;
  for (const SpanRecord& span : spans) tracks[span.track].push_back(&span);
  for (auto& [track, records] : tracks) {
    writer.thread_name(pid, track, "track " + std::to_string(track));
    std::stable_sort(records.begin(), records.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       return a->start_us < b->start_us;
                     });
    for (const SpanRecord* record : records) {
      writer.complete(pid, track, record->name, record->start_us,
                      record->dur_us, "self");
    }
  }
}

std::string spans_trace_json(const std::vector<SpanRecord>& spans,
                             std::string_view process, std::int64_t pid) {
  TraceEventWriter writer;
  append_spans(writer, spans, process, pid);
  return writer.finish();
}

}  // namespace sdc::obs
