// Structural validator for emitted trace-event JSON.
//
// The repo's JSON layer is writer-only by design (the tool consumes
// logs); this file carries the one consumer we do need — a schema check
// over our *own* trace output, used by the round-trip tests, the
// `sdchecker trace --check` flag and the CI trace job.  It verifies:
//
//   - the document parses as JSON at all (balanced, escaped, typed);
//   - top level is an object with a "traceEvents" array;
//   - every event has name/ph/pid/tid, and ts for X/i phases;
//   - complete ("X") slices have dur >= 0;
//   - per (pid, tid) track, slice timestamps are monotonically
//     non-decreasing in file order;
//   - optionally, every process whose process_name matches a prefix
//     carries a required set of slice names (the Table-I delay
//     components for application tracks).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdc::obs {

struct TraceCheckOptions {
  /// Slice names every matching process must contain at least once.
  std::vector<std::string> required_slices;
  /// Processes the requirement applies to: those whose process_name
  /// starts with this prefix ("" disables the requirement).
  std::string required_process_prefix;
};

struct TraceCheckResult {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t events = 0;
  std::size_t processes = 0;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

/// Validates one trace document.  Never throws; malformed input becomes
/// errors in the result.
[[nodiscard]] TraceCheckResult check_trace_json(
    std::string_view text, const TraceCheckOptions& options = {});

}  // namespace sdc::obs
