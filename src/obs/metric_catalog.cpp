#include "obs/metric_catalog.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"

namespace sdc::obs {
namespace {

using namespace metric;

constexpr MetricSpec kCatalog[] = {
    kSimEngineEventsExecuted,
    kSimEngineTimersScheduled,
    kSimRmAppsSubmitted,
    kSimRmAppTransitions,
    kSimRmContainerTransitions,
    kSimRmContainersAllocated,
    kSimRmNodeHeartbeats,
    kSimRmAmHeartbeats,
    kSimNmContainerTransitions,
    kSimSparkExecutorsRegistered,
    kSimSparkTasksAssigned,
    kSimYarnAllocPipelineWaitMs,
    kMineLines,
    kMineLinesExpected,
    kMineEvents,
    kMineStreams,
    kMineDiagnostics,
    kMineScanPrefilterSkipped,
    kMineScanBackend,
    kIncrementalLines,
    kIncrementalAppsRetired,
    kFollowPolls,
    kFollowBytes,
    kFollowStreams,
    kFollowRotations,
    kFollowAppsRetired,
    kFollowPollLastAgeMs,
    kFollowPollStall,
    kObsHttpRequests,
    kObsHttpBytes,
    kObsHttpLatencyMs,
    kObsHttpErrors,
    kPoolTasks,
    kPoolHelpWhileWait,
    kPoolQueueDepth,
    kFleetCorpora,
    kFleetCorporaFailed,
    kFleetRegressions,
    kAnalyzeApps,
    kAnalyzeAnomalies,
    kAnalyzeShards,
    kSdcDelay,
};

/// Registration-time guard: the spec handed to a catalog_* helper must
/// be a catalog row (by name) of the kind the helper registers.  This
/// cannot drift silently — a violation is a std::logic_error thrown the
/// first time the instrumentation point runs, and sdlint's metrics.*
/// checks cross-examine the registry snapshot independently.
void require_cataloged(const MetricSpec& spec, MetricKind kind,
                       bool family_call) {
  if (spec.kind != kind) {
    throw std::logic_error("metric catalog: '" + std::string(spec.name) +
                           "' is a " +
                           std::string(metric_kind_name(spec.kind)) +
                           ", registered as a " +
                           std::string(metric_kind_name(kind)));
  }
  if (spec.is_family() != family_call) {
    throw std::logic_error(
        "metric catalog: '" + std::string(spec.name) +
        (family_call ? "' is not a dynamic-suffix family"
                     : "' is a family; registration needs a suffix"));
  }
  for (const MetricSpec& row : kCatalog) {
    if (row.name == spec.name) return;
  }
  throw std::logic_error("metric catalog: '" + std::string(spec.name) +
                         "' is not a catalog row");
}

}  // namespace

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::span<const MetricSpec> metric_catalog() { return kCatalog; }

const MetricSpec* find_metric_spec(std::string_view instrument) {
  for (const MetricSpec& row : kCatalog) {
    if (row.matches(instrument)) return &row;
  }
  return nullptr;
}

Counter& catalog_counter(const MetricSpec& spec) {
  require_cataloged(spec, MetricKind::kCounter, /*family_call=*/false);
  return MetricsRegistry::global().counter(spec.name);
}

Counter& catalog_counter(const MetricSpec& family, std::string_view suffix) {
  require_cataloged(family, MetricKind::kCounter, /*family_call=*/true);
  return MetricsRegistry::global().counter(
      std::string(family.family_prefix()) + std::string(suffix));
}

Gauge& catalog_gauge(const MetricSpec& spec) {
  require_cataloged(spec, MetricKind::kGauge, /*family_call=*/false);
  return MetricsRegistry::global().gauge(spec.name);
}

Histogram& catalog_histogram(const MetricSpec& spec,
                             std::vector<double> upper_edges) {
  require_cataloged(spec, MetricKind::kHistogram, /*family_call=*/false);
  return MetricsRegistry::global().histogram(spec.name,
                                             std::move(upper_edges));
}

Histogram& catalog_histogram(const MetricSpec& family,
                             std::string_view suffix,
                             std::vector<double> upper_edges) {
  require_cataloged(family, MetricKind::kHistogram, /*family_call=*/true);
  return MetricsRegistry::global().histogram(
      std::string(family.family_prefix()) + std::string(suffix),
      std::move(upper_edges));
}

void attach_thread_pool_metrics() {
  ThreadPoolMetricSinks sinks;
  sinks.tasks = &catalog_counter(metric::kPoolTasks).raw();
  sinks.help_while_wait = &catalog_counter(metric::kPoolHelpWhileWait).raw();
  sinks.queue_depth = &catalog_gauge(metric::kPoolQueueDepth).raw();
  set_thread_pool_metric_sinks(sinks);
}

void register_catalog_baseline() {
  attach_thread_pool_metrics();
  for (const MetricSpec& row : kCatalog) {
    if (row.is_family()) continue;  // members appear as they occur
    switch (row.kind) {
      case MetricKind::kCounter:
        catalog_counter(row);
        break;
      case MetricKind::kGauge:
        catalog_gauge(row);
        break;
      case MetricKind::kHistogram:
        catalog_histogram(row);
        break;
    }
  }
}

std::string render_metric_table() { return render_metric_table(kCatalog); }

std::string render_metric_table(std::span<const MetricSpec> specs) {
  std::string out =
      "| name | kind | unit | meaning |\n|---|---|---|---|\n";
  for (const MetricSpec& row : specs) {
    out += "| `";
    out += row.name;
    out += "` | ";
    out += metric_kind_name(row.kind);
    out += " | ";
    out += row.unit;
    out += " | ";
    out += row.doc;
    out += " |\n";
  }
  return out;
}

}  // namespace sdc::obs
