#include "obs/metrics.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace sdc::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), buckets_(edges_.size() + 1) {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  if (buckets_.size() != edges_.size() + 1) {
    // Duplicate edges were collapsed; atomics are not movable, rebuild.
    std::vector<std::atomic<std::uint64_t>> rebuilt(edges_.size() + 1);
    buckets_.swap(rebuilt);
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  const auto index = static_cast<std::size_t>(it - edges_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) is C++20 but not universally lowered; CAS loop is
  // portable and uncontended in practice (observations dominate reads).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    out.push_back(bucket.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_edges_ms() {
  std::vector<double> edges;
  for (double decade = 1.0; decade <= 100'000.0; decade *= 10.0) {
    edges.push_back(decade);
    edges.push_back(decade * 2);
    edges.push_back(decade * 5);
  }
  return edges;
}

bool MetricsSnapshot::has_counter(std::string_view name) const {
  return counters.find(std::string(name)) != counters.end();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

bool MetricsSnapshot::has_histogram(std::string_view name) const {
  return histograms.find(std::string(name)) != histograms.end();
}

std::string MetricsSnapshot::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    w.field(name, static_cast<std::int64_t>(value));
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.field(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms) {
    w.key(name).begin_object();
    w.field("count", static_cast<std::int64_t>(histogram.count));
    w.field("sum", histogram.sum);
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      w.begin_object();
      if (i < histogram.upper_edges.size()) {
        w.field("le", histogram.upper_edges[i]);
      } else {
        w.field("le", "+inf");
      }
      w.field("count", static_cast<std::int64_t>(histogram.bucket_counts[i]));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const sdc::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const sdc::MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_edges) {
  const sdc::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(upper_edges)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const sdc::MutexLock lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.upper_edges = histogram->upper_edges();
    value.bucket_counts = histogram->bucket_counts();
    out.histograms.emplace(name, std::move(value));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  const sdc::MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace sdc::obs
