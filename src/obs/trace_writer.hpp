// Chrome trace-event / Perfetto JSON writer.
//
// Emits the JSON object format (`{"traceEvents":[...]}`) that both
// chrome://tracing and ui.perfetto.dev load directly.  Event vocabulary
// used here:
//
//   ph "M"  metadata      process_name / thread_name labels
//   ph "X"  complete      one slice: ts (us) + dur (us) on (pid, tid)
//   ph "i"  instant       a point marker on (pid, tid)
//
// Two producers share this writer: the self-profiling export (spans from
// obs::Tracer, one process, one tid per tracer track) and the
// scheduling-graph export in src/sdchecker/trace_export.* (one process
// per application, Fig. 3 rendered as slices).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/tracer.hpp"

namespace sdc::obs {

/// Streaming builder for one trace file.  Events are appended in call
/// order; Perfetto does not require global ordering, but keep per-track
/// slices in ascending ts so the validator's monotonicity check holds.
class TraceEventWriter {
 public:
  TraceEventWriter();

  /// Names the process row in the UI ("application_..._0007").
  void process_name(std::int64_t pid, std::string_view name);
  /// Names a thread (track) row within a process.
  void thread_name(std::int64_t pid, std::int64_t tid, std::string_view name);

  /// One complete slice.  `args` are optional key/value annotations shown
  /// in the UI's detail pane.
  void complete(std::int64_t pid, std::int64_t tid, std::string_view name,
                std::uint64_t ts_us, std::uint64_t dur_us,
                std::string_view category = "",
                const std::vector<std::pair<std::string, std::string>>& args =
                    {});

  /// One instant marker (thread scope).
  void instant(std::int64_t pid, std::int64_t tid, std::string_view name,
               std::uint64_t ts_us, std::string_view category = "");

  /// Closes the event array and returns the document.  The writer is
  /// spent afterwards.
  [[nodiscard]] std::string finish();

  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }

 private:
  void event_head(std::string_view ph, std::int64_t pid, std::int64_t tid,
                  std::string_view name, std::string_view category);

  json::Writer writer_;
  std::size_t events_ = 0;
  bool finished_ = false;
};

/// Renders tracer spans as one self-profiling process: pid `pid`, one
/// tid per tracer track.  `process` labels the process row.
[[nodiscard]] std::string spans_trace_json(
    const std::vector<SpanRecord>& spans,
    std::string_view process = "sdchecker self-profile", std::int64_t pid = 0);

/// Appends tracer spans onto an existing writer (used when the
/// scheduling graph and the self-profile share one file).
void append_spans(TraceEventWriter& writer, const std::vector<SpanRecord>& spans,
                  std::string_view process, std::int64_t pid);

}  // namespace sdc::obs
