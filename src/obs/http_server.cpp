#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"

namespace sdc::obs {
namespace {

struct HttpCounters {
  Counter& requests;
  Counter& bytes;
  static const HttpCounters& get() {
    static const HttpCounters counters{
        catalog_counter(metric::kObsHttpRequests),
        catalog_counter(metric::kObsHttpBytes)};
    return counters;
  }
};

void count_error(std::string_view error_class) {
  // One instrument per class; the vocabulary is the constexpr
  // kHttpErrorClasses list, so lookups after the first are map hits.
  catalog_counter(metric::kObsHttpErrors, error_class).add(1);
}

/// The latency-histogram suffix for a request path: the route's name
/// without its leading '/', when that is a known endpoint label;
/// `other` for everything else (unknown paths, future routes), keeping
/// the family's cardinality fixed.
std::string_view endpoint_label(std::string_view path) {
  if (!path.empty() && path.front() == '/') path.remove_prefix(1);
  for (const std::string_view label : kHttpEndpointLabels) {
    if (path == label) return label;
  }
  return "other";
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Writes the whole buffer; false on a closed/failed socket.
/// MSG_NOSIGNAL: a client that closed early must surface as an error
/// return, not a process-killing SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serializes status + headers + (unless HEAD) body and sends it.
bool send_response(int fd, const HttpResponse& response, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(status_reason(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  const bool ok = send_all(fd, out);
  if (ok) HttpCounters::get().bytes.add(out.size());
  return ok;
}

HttpResponse plain_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  if (!response.body.empty() && response.body.back() != '\n') {
    response.body += '\n';
  }
  return response;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool HttpServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.host + ":" +
                std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  listener_ = std::thread([this] { listener_loop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!started_) return;
  started_ = false;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  // Unblock the listener's accept(); close happens after the join so the
  // fd number cannot be recycled under it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  cv_conn_.notify_all();
  listener_.join();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    // Anything still queued is closed unanswered — stop() is teardown.
    MutexLock lock(mu_);
    while (!pending_.empty()) {
      ::close(pending_.front());
      pending_.pop_front();
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::string HttpServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

void HttpServer::listener_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      MutexLock lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd >= 0) {
        if (pending_.size() >= options_.max_pending_connections) {
          // Bounded queue: shed load here rather than let connections
          // pile up.  Best-effort answer; never blocks the listener
          // beyond one buffered send.
          count_error("overload");
          send_response(fd, plain_response(503, "overloaded"),
                        /*head_only=*/false);
          ::close(fd);
          continue;
        }
        pending_.push_back(fd);
      }
    }
    if (fd >= 0) {
      cv_conn_.notify_one();
    } else if (errno != EINTR && errno != ECONNABORTED) {
      // Listener socket gone bad (or shut down without the flag set
      // yet); re-check stopping_ on the next pass via accept's failure.
      MutexLock lock(mu_);
      if (stopping_) return;
    }
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (!stopping_ && pending_.empty()) cv_conn_.wait(lock);
      if (pending_.empty()) return;  // stopping_ and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.recv_timeout_ms / 1000;
  timeout.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the request head; body-carrying methods are
  // rejected later, so nothing past the head is ever needed.
  std::string head;
  bool have_head = false;
  bool overlong = false;
  while (true) {
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // closed early or timed out
    head.append(buf, static_cast<std::size_t>(n));
    const std::size_t terminator =
        std::min(head.find("\r\n\r\n"), head.find("\n\n"));
    if (terminator != std::string::npos) {
      // A head whose terminator lands past the cap is overlong even if
      // one recv() happened to deliver the whole thing.
      have_head = terminator < options_.max_request_bytes;
      overlong = !have_head;
      break;
    }
    if (head.size() >= options_.max_request_bytes) {
      overlong = true;
      break;
    }
  }
  if (!have_head) {
    if (overlong) {
      count_error("overlong");
      send_response(fd, plain_response(431, "request head too large"),
                    /*head_only=*/false);
    } else {
      // Closed (or stalled past the timeout) before a full head: nothing
      // to answer.
      count_error("io");
    }
    return;
  }

  const auto started = std::chrono::steady_clock::now();
  HttpCounters::get().requests.add(1);

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string_view request_line =
      std::string_view(head).substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    count_error("bad-request");
    send_response(fd, plain_response(400, "malformed request line"),
                  /*head_only=*/false);
    return;
  }
  const std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  if (method != "GET" && method != "HEAD") {
    count_error("bad-method");
    send_response(fd, plain_response(405, "only GET and HEAD are served"),
                  /*head_only=*/false);
    return;
  }
  const bool head_only = method == "HEAD";

  HttpResponse response;
  const auto route = routes_.find(target);
  if (route == routes_.end()) {
    count_error("not-found");
    response = plain_response(404, "unknown path; try /metrics /analysis "
                                   "/healthz /varz");
  } else {
    try {
      response = route->second();
    } catch (const std::exception& e) {
      count_error("internal");
      response = plain_response(500, std::string("handler failed: ") +
                                         e.what());
    } catch (...) {
      count_error("internal");
      response = plain_response(500, "handler failed");
    }
  }
  if (!send_response(fd, response, head_only)) count_error("io");

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  catalog_histogram(metric::kObsHttpLatencyMs, endpoint_label(target))
      .observe(elapsed_ms);
}

}  // namespace sdc::obs
