// Span tracer: RAII scoped spans with explicit per-thread track ids,
// near-zero cost when disabled.
//
// Usage at an instrumentation point:
//
//   { auto span = obs::Tracer::global().span("mine.chunk"); ...work... }
//
// When tracing is disabled (the default) `span()` is one relaxed atomic
// load and the returned object is inert.  When enabled, the span records
// a wall-clock start on construction and appends one SpanRecord under a
// mutex on destruction — instrumentation sits at chunk/stage granularity
// (thousands of spans per run, not millions), so the lock is cold.
//
// Track ids: every thread gets a small dense id (0, 1, 2, ...) on its
// first span, cached thread-locally.  Spans therefore nest correctly per
// track by construction (RAII), and the Perfetto export maps track ->
// tid without depending on opaque OS thread ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sdc::obs {

/// One completed span on one track.  Times are microseconds relative to
/// the tracer's epoch (its construction, or the last `clear()`).
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t track = 0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer used by library instrumentation points.
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// RAII span: records on destruction.  Movable so spans can be returned
  /// from helpers; copies are disabled.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept
        : tracer_(other.tracer_), name_(std::move(other.name_)),
          start_us_(other.start_us_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        name_ = std::move(other.name_);
        start_us_ = other.start_us_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// True when the span will record (tracing was enabled at creation).
    [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string_view name);
    void finish() noexcept;

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::uint64_t start_us_ = 0;
  };

  /// Starts a scoped span; inert when tracing is disabled.
  [[nodiscard]] Span span(std::string_view name) {
    return Span(enabled() ? this : nullptr, name);
  }

  /// Dense per-thread track id (assigned on the calling thread's first
  /// use, stable for the thread's lifetime).
  [[nodiscard]] static std::uint32_t current_track() noexcept;

  /// Microseconds since the tracer's epoch.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Copies all recorded spans (completed ones only).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const SDC_EXCLUDES(mutex_);

  /// Drops recorded spans and restarts the epoch.
  void clear() SDC_EXCLUDES(mutex_);

 private:
  void record(SpanRecord span) SDC_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable Mutex mutex_;
  std::vector<SpanRecord> spans_ SDC_GUARDED_BY(mutex_);
};

}  // namespace sdc::obs
