// Prometheus text-exposition writer over the metrics registry (ISSUE 9).
//
// The embedded observability server's `/metrics` endpoint renders a
// `MetricsSnapshot` in the Prometheus text exposition format (version
// 0.0.4): one `# HELP` / `# TYPE` pair per exposed metric, counters and
// gauges as single samples, fixed-bucket histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` / `_count`.
//
// Name mangling is mechanical and catalog-driven: the registry's dotted
// lowercase names map onto the Prometheus grammar by replacing `.` and
// `-` with `_` — `sdc.delay.overall` -> `sdc_delay_overall`,
// `mine.diagnostics.unreadable-file` -> `mine_diagnostics_unreadable_file`.
// HELP and TYPE text comes from the constexpr `obs::MetricSpec` catalog
// row the instrument belongs to, so the exposition carries the same
// one-line docs as docs/OBSERVABILITY.md.  sdlint's `prom.*` checks
// prove at lint time that every catalog row (and every known
// dynamic-suffix family member) mangles to a unique, valid Prometheus
// name, so the renderer never has to resolve a collision at scrape time.
//
// `check_prom_text` is the matching writer-independent validator
// (mirroring `check_trace_json` / `check_watch_json`): it parses an
// exposition document from scratch and enforces the format contract —
// CI's serve smoke and the unit tests gate `/metrics` bodies through it.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"

namespace sdc::obs {

/// True when `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
[[nodiscard]] bool is_valid_prom_name(std::string_view name);

/// Mechanical registry-name -> Prometheus-name mangling: `.` and `-`
/// become `_`, everything else passes through unchanged.  Returns
/// nullopt when the result would not satisfy `is_valid_prom_name`
/// (empty name, leading digit, or a character with no defined mapping)
/// — the renderer falls back to `prom_name` for such strays, but
/// sdlint's `prom.invalid-name` check fails the catalog first.
[[nodiscard]] std::optional<std::string> prom_name_strict(
    std::string_view name);

/// Lenient variant used at render time: like `prom_name_strict`, but any
/// unmappable character also becomes `_` and a leading digit gains a
/// `_` prefix, so the renderer always produces a grammar-valid name even
/// for an instrument the catalog checks never saw.
[[nodiscard]] std::string prom_name(std::string_view name);

/// Renders `snapshot` as a Prometheus text-exposition document.  HELP /
/// TYPE metadata is looked up per instrument in `catalog` (the real
/// `metric_catalog()` in production; tests pass tailored spans).
/// Deterministic: counters, then gauges, then histograms, each in the
/// snapshot's name order.  Histogram `_bucket` series are cumulative,
/// always end with `le="+Inf"`, and `_count` equals the `+Inf` sample,
/// so the document is self-consistent even when writers raced the
/// snapshot.
[[nodiscard]] std::string render_prom_text(const MetricsSnapshot& snapshot,
                                           std::span<const MetricSpec> catalog);
/// `render_prom_text` over the production catalog.
[[nodiscard]] std::string render_prom_text(const MetricsSnapshot& snapshot);

/// Result of validating one exposition document.
struct PromCheckResult {
  bool ok = true;
  std::vector<std::string> errors;
  /// Samples parsed (one per value line).
  std::size_t samples = 0;
  /// Distinct metric names carrying a TYPE line.
  std::size_t families = 0;

  void fail(std::size_t line_no, std::string message);
};

/// Validates a Prometheus text-exposition document, independently of the
/// writer: line grammar (HELP/TYPE/comment/sample), metric-name and
/// label syntax, float values, no duplicate samples, HELP/TYPE declared
/// at most once and before their samples, every sample TYPE-declared,
/// and for each histogram: cumulative `_bucket` counts non-decreasing
/// over increasing `le`, a `+Inf` bucket present, and `_count` equal to
/// it.  Never throws.
[[nodiscard]] PromCheckResult check_prom_text(std::string_view text);

}  // namespace sdc::obs
