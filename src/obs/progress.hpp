// Progress reporting for the mining path.
//
// ProgressMeter is the pure, testable part: it turns (lines done, lines
// expected, elapsed seconds) samples into a rate + ETA line.  The CLI
// owns the impure part — polling the metrics registry on a ticker and
// writing `\r`-terminated lines to stderr only when stderr is a TTY.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sdc::obs {

class ProgressMeter {
 public:
  /// `expected` may be 0 when the total is unknown; the line then shows
  /// rate only, no percentage or ETA.
  explicit ProgressMeter(std::uint64_t expected = 0) : expected_(expected) {}

  void set_expected(std::uint64_t expected) noexcept { expected_ = expected; }

  /// Feeds a cumulative sample.  `elapsed_s` is seconds since the work
  /// started; samples must be fed in non-decreasing elapsed order.
  void sample(std::uint64_t done, double elapsed_s) noexcept;

  /// Smoothed lines/second over the sampled window (0 until two samples).
  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// Seconds remaining at the current rate; empty when unknown (no
  /// expected total, rate still 0, or already past the total).
  [[nodiscard]] std::optional<double> eta_s() const noexcept;

  /// One display line, e.g.
  ///   "mining 12.3% | 1234567/10000000 lines | 2.1M lines/s | ETA 4s"
  /// No trailing newline; the caller picks '\r' vs '\n'.
  [[nodiscard]] std::string render() const;

 private:
  std::uint64_t expected_ = 0;
  std::uint64_t done_ = 0;
  double elapsed_s_ = 0.0;
  double rate_ = 0.0;
  bool have_sample_ = false;
};

/// "1234" -> "1.2k", "2500000" -> "2.5M"; exact below 1000.
[[nodiscard]] std::string humanize_count(double value);

/// "125" -> "2m05s", "4.2" -> "4s", "3700" -> "1h01m".
[[nodiscard]] std::string humanize_seconds(double seconds);

}  // namespace sdc::obs
