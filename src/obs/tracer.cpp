#include "obs/tracer.hpp"

#include <chrono>

namespace sdc::obs {
namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<std::uint32_t> next_track{0};

}  // namespace

Tracer::Tracer() { epoch_ns_.store(steady_ns(), std::memory_order_relaxed); }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint32_t Tracer::current_track() noexcept {
  thread_local const std::uint32_t track =
      next_track.fetch_add(1, std::memory_order_relaxed);
  return track;
}

std::uint64_t Tracer::now_us() const noexcept {
  const std::int64_t ns =
      steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns / 1000);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const sdc::MutexLock lock(mutex_);
  return spans_;
}

void Tracer::clear() {
  const sdc::MutexLock lock(mutex_);
  spans_.clear();
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

void Tracer::record(SpanRecord span) {
  const sdc::MutexLock lock(mutex_);
  spans_.push_back(std::move(span));
}

Tracer::Span::Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  name_ = name;
  start_us_ = tracer_->now_us();
}

void Tracer::Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  SpanRecord record;
  record.name = std::move(name_);
  record.start_us = start_us_;
  const std::uint64_t end = tracer_->now_us();
  record.dur_us = end > start_us_ ? end - start_us_ : 0;
  record.track = current_track();
  tracer_->record(std::move(record));
  tracer_ = nullptr;
}

}  // namespace sdc::obs
