#include "obs/json_parse.hpp"

#include <cctype>

namespace sdc::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content after document at byte " +
              std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out.v = std::move(s);
        return true;
      }
      case 't':
        out.v = true;
        return literal("true");
      case 'f':
        out.v = false;
        return literal("false");
      case 'n':
        out.v = nullptr;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    auto object = std::make_unique<JsonObject>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.v = std::move(object);
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      (*object)[std::move(key)] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out.v = std::move(object);
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    auto array = std::make_unique<JsonArray>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.v = std::move(array);
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      array->push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out.v = std::move(array);
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos_ += 4;
            // Validation only — replace non-ASCII code points with '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    try {
      out.v = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      pos_ = start;
      return fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  return Parser(text).parse(out, error);
}

const JsonValue* json_find(const JsonObject& object, const std::string& key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace sdc::obs
