// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms for the simulator, the mining pipeline and the analyzer.
//
// Design goals (ISSUE 4):
//   - lock-free fast path: instruments are found once (mutex-protected
//     name lookup, pointer-stable storage) and then updated with relaxed
//     atomics only — a cached `Counter&` costs one atomic add per bump;
//   - snapshot-on-read: readers copy a consistent-enough view without
//     stopping writers (per-value atomic loads; cross-metric skew is
//     acceptable for monitoring output);
//   - zero configuration: `MetricsRegistry::global()` is always there,
//     instrumentation points cache their instruments in function-local
//     statics.
//
// Naming convention (see docs/OBSERVABILITY.md for the catalogue):
// dotted lowercase paths, layer first — "sim.engine.events_executed",
// "mine.lines", "analyze.apps".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sdc::obs {

/// Monotonically increasing count.  Relaxed atomics: totals are exact,
/// cross-counter ordering is not promised.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  /// The instrument's storage, for cross-layer sinks: lower layers that
  /// cannot depend on obs (the thread pool) are handed this atomic and
  /// update it directly (see obs::attach_thread_pool_metrics).
  [[nodiscard]] std::atomic<std::uint64_t>& raw() noexcept { return value_; }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written signed value (queue depths, expected totals).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  /// The instrument's storage, for cross-layer sinks (see Counter::raw).
  [[nodiscard]] std::atomic<std::int64_t>& raw() noexcept { return value_; }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram.  Bucket bounds are upper edges (inclusive);
/// one implicit overflow bucket catches everything beyond the last edge.
/// Bounds are fixed at construction so `observe` is a binary search plus
/// one relaxed atomic increment — no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& upper_edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket counts; index edges_.size() is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

  /// Default edges for millisecond latencies: 1,2,5 decades from 1 ms to
  /// 100 s.
  static std::vector<double> default_latency_edges_ms();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramValue {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> upper_edges;
    std::vector<std::uint64_t> bucket_counts;  // last entry = overflow
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;

  [[nodiscard]] bool has_counter(std::string_view name) const;
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] bool has_histogram(std::string_view name) const;

  /// Stable JSON rendering: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,buckets:[{le,count}...]}}}.
  [[nodiscard]] std::string to_json() const;
};

/// Name -> instrument registry.  Lookup (get-or-create) takes a mutex;
/// the returned references are pointer-stable for the registry's
/// lifetime, so hot paths look up once and update lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation point uses.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name) SDC_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) SDC_EXCLUDES(mutex_);
  /// First registration fixes the edges; later calls with the same name
  /// return the existing histogram regardless of `upper_edges`.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_edges =
                           Histogram::default_latency_edges_ms())
      SDC_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const SDC_EXCLUDES(mutex_);

  /// Resets every value to zero (instruments stay registered, references
  /// stay valid).  Tests and benches use this to isolate runs.
  void reset_values() SDC_EXCLUDES(mutex_);

 private:
  // The mutex guards the name -> instrument maps only; the instruments
  // themselves are atomics updated lock-free through the pointer-stable
  // references the accessors return.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SDC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SDC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SDC_GUARDED_BY(mutex_);
};

}  // namespace sdc::obs
