// Embedded observability HTTP server (ISSUE 9).
//
// A deliberately small, dependency-free HTTP/1.1 server for scrape-style
// traffic: one listener thread blocking in `accept`, a bounded worker
// pool draining accepted connections, one request per connection
// (`Connection: close`).  It exists so a long-running `sdchecker follow`
// can be monitored the way a production cluster is — Prometheus scraping
// `/metrics`, a health checker probing `/healthz` — without pulling in a
// framework the toolchain does not ship.
//
// Design constraints:
//   - Serving must never block the data path: handlers read published
//     snapshots (strings under a short mutex hold) or the lock-free
//     metrics registry; nothing in this file is called from the follow
//     poll loop.
//   - Bounded everything: worker count, accept backlog, pending-
//     connection queue (overflow answers 503 and closes), request size
//     (oversized heads answer 431), and a receive timeout so a stalled
//     client cannot pin a worker.
//   - Lock discipline is compiler-checked: `common::Mutex` +
//     SDC_GUARDED_BY throughout, so the PR 8 `thread-safety` CI job
//     covers the server like the rest of the threaded core.
//
// The server observes itself through the metric catalog
// (`obs.http.requests`, `obs.http.bytes`, `obs.http.latency_ms.<endpoint>`,
// `obs.http.errors.<class>`), which also makes sdlint's `metrics.*` and
// `prom.*` families police the vocabulary for free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sdc::obs {

/// Latency-histogram suffix vocabulary: the built-in endpoints plus the
/// `other` catch-all every unknown path maps to, keeping the dynamic
/// family's cardinality fixed.  sdlint's `prom.*` checks verify each
/// suffix mangles to a valid Prometheus name.
inline constexpr std::string_view kHttpEndpointLabels[] = {
    "metrics", "analysis", "healthz", "varz", "other"};

/// Error-class suffix vocabulary for `obs.http.errors.<class>`.
inline constexpr std::string_view kHttpErrorClasses[] = {
    "bad-request", "bad-method", "overlong", "not-found",
    "internal",    "io",         "overload"};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A GET/HEAD endpoint.  Runs on a worker thread; must be thread-safe
/// and must not block on the process's data path.
using HttpHandler = std::function<HttpResponse()>;

struct HttpServerOptions {
  /// Dotted-quad address to bind; scrape endpoints default to loopback.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back with `port()`).
  std::uint16_t port = 0;
  std::size_t worker_threads = 4;
  /// Connections queued for workers beyond this answer 503 immediately.
  std::size_t max_pending_connections = 64;
  /// Request head (request line + headers) larger than this answers 431.
  std::size_t max_request_bytes = 8192;
  /// Socket receive timeout; a client that stops sending mid-request
  /// costs a worker at most this long.
  int recv_timeout_ms = 5000;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-path GET/HEAD endpoint ("/metrics").  Call
  /// before `start` — the route table is read-only once serving.
  void handle(std::string path, HttpHandler handler);

  /// Binds, listens and spawns the listener + workers.  False (with
  /// `*error` filled in) when the socket setup fails; the server is
  /// inert afterwards and `stop` is a no-op.
  bool start(std::string* error = nullptr);

  /// Shuts the listener down, drains queued connections and joins every
  /// thread.  Idempotent; also run by the destructor.
  void stop();

  /// The bound port (resolves port 0); valid after a successful start.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// "host:port" of the bound listener.
  [[nodiscard]] std::string address() const;

 private:
  void listener_loop() SDC_EXCLUDES(mu_);
  void worker_loop() SDC_EXCLUDES(mu_);
  /// Reads, parses, dispatches and answers one connection, then closes
  /// it.  All error paths answer with a status line when the socket
  /// still accepts writes.
  void serve_connection(int fd);

  HttpServerOptions options_;
  /// Route table; written by handle() before start, read-only afterwards
  /// (workers never mutate it) — confined, not guarded.
  std::map<std::string, HttpHandler, std::less<>> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::thread listener_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::deque<int> pending_ SDC_GUARDED_BY(mu_);
  bool stopping_ SDC_GUARDED_BY(mu_) = false;
  CondVar cv_conn_;
};

}  // namespace sdc::obs
