#include "obs/progress.hpp"

#include <cmath>
#include <cstdio>

namespace sdc::obs {

void ProgressMeter::sample(std::uint64_t done, double elapsed_s) noexcept {
  if (elapsed_s < elapsed_s_) elapsed_s = elapsed_s_;
  if (!have_sample_) {
    have_sample_ = true;
    done_ = done;
    elapsed_s_ = elapsed_s;
    if (elapsed_s > 0.0) rate_ = static_cast<double>(done) / elapsed_s;
    return;
  }
  const double dt = elapsed_s - elapsed_s_;
  if (dt > 0.0 && done >= done_) {
    const double instant = static_cast<double>(done - done_) / dt;
    // Exponential smoothing keeps the ETA from jittering with per-chunk
    // burstiness while still tracking sustained rate changes.
    rate_ = rate_ == 0.0 ? instant : 0.7 * rate_ + 0.3 * instant;
  }
  done_ = done;
  elapsed_s_ = elapsed_s;
}

std::optional<double> ProgressMeter::eta_s() const noexcept {
  if (expected_ == 0 || rate_ <= 0.0 || done_ >= expected_) return std::nullopt;
  return static_cast<double>(expected_ - done_) / rate_;
}

std::string ProgressMeter::render() const {
  char buf[64];
  std::string line = "mining ";
  if (expected_ > 0) {
    const double pct =
        100.0 * static_cast<double>(done_) / static_cast<double>(expected_);
    std::snprintf(buf, sizeof(buf), "%5.1f%% | ", pct > 100.0 ? 100.0 : pct);
    line += buf;
    line += std::to_string(done_) + "/" + std::to_string(expected_) + " lines";
  } else {
    line += std::to_string(done_) + " lines";
  }
  line += " | " + humanize_count(rate_) + " lines/s";
  if (const auto eta = eta_s()) {
    line += " | ETA " + humanize_seconds(*eta);
  }
  return line;
}

std::string humanize_count(double value) {
  char buf[32];
  if (value < 0.0) value = 0.0;
  if (value < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else if (value < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
  } else if (value < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fM", value / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fG", value / 1e9);
  }
  return buf;
}

std::string humanize_seconds(double seconds) {
  char buf[32];
  if (seconds < 0.0) seconds = 0.0;
  const auto whole = static_cast<std::uint64_t>(std::llround(seconds));
  if (whole < 60) {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(whole));
  } else if (whole < 3600) {
    std::snprintf(buf, sizeof(buf), "%llum%02llus",
                  static_cast<unsigned long long>(whole / 60),
                  static_cast<unsigned long long>(whole % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluh%02llum",
                  static_cast<unsigned long long>(whole / 3600),
                  static_cast<unsigned long long>((whole % 3600) / 60));
  }
  return buf;
}

}  // namespace sdc::obs
