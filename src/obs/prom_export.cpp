#include "obs/prom_export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace sdc::obs {
namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9');
}

/// Full-precision float formatting; `%.17g` round-trips every double and
/// renders integral edges ("1", "100") without a trailing ".0".
std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string format_count(std::uint64_t value) {
  return std::to_string(value);
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The catalog doc line for an instrument; a fixed fallback keeps the
/// exposition well-formed for an uncataloged stray (sdlint's metrics.*
/// checks flag the stray itself).
std::string_view help_for(std::span<const MetricSpec> catalog,
                          std::string_view instrument) {
  for (const MetricSpec& row : catalog) {
    if (row.matches(instrument)) return row.doc;
  }
  return "(not in the metric catalog)";
}

void emit_header(std::string& out, const std::string& prom,
                 std::string_view type, std::string_view help) {
  out += "# HELP ";
  out += prom;
  out += ' ';
  out += escape_help(help);
  out += "\n# TYPE ";
  out += prom;
  out += ' ';
  out += type;
  out += '\n';
}

// --- validator ---------------------------------------------------------------

struct SeriesState {
  bool typed = false;
  std::string type;
  bool help_seen = false;
  bool sampled = false;
};

/// One parsed sample line.
struct Sample {
  std::string name;
  /// Canonical label string ("a=\"x\",b=\"y\"", insertion order).
  std::string labels;
  /// The `le` label when present.
  std::optional<std::string> le;
  double value = 0;
};

/// Parses one sample line; nullopt + error message on bad syntax.
std::optional<Sample> parse_sample(std::string_view line,
                                   std::string& error) {
  Sample sample;
  std::size_t i = 0;
  if (i >= line.size() || !is_name_start(line[i])) {
    error = "sample does not start with a metric name";
    return std::nullopt;
  }
  while (i < line.size() && is_name_char(line[i])) ++i;
  sample.name = std::string(line.substr(0, i));
  if (i < line.size() && line[i] == '{') {
    ++i;
    bool first = true;
    while (true) {
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      if (!first) {
        if (i >= line.size() || line[i] != ',') {
          error = "expected ',' or '}' in label set";
          return std::nullopt;
        }
        ++i;
      }
      first = false;
      const std::size_t label_start = i;
      if (i >= line.size() || !is_name_start(line[i])) {
        error = "label name expected";
        return std::nullopt;
      }
      while (i < line.size() && is_name_char(line[i])) ++i;
      const std::string label =
          std::string(line.substr(label_start, i - label_start));
      if (i >= line.size() || line[i] != '=') {
        error = "label '" + label + "' missing '='";
        return std::nullopt;
      }
      ++i;
      if (i >= line.size() || line[i] != '"') {
        error = "label '" + label + "' value not quoted";
        return std::nullopt;
      }
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size()) break;
          if (line[i] == 'n') {
            value += '\n';
          } else if (line[i] == '\\' || line[i] == '"') {
            value += line[i];
          } else {
            error = "bad escape in label '" + label + "'";
            return std::nullopt;
          }
        } else {
          value += line[i];
        }
        ++i;
      }
      if (i >= line.size()) {
        error = "unterminated label value for '" + label + "'";
        return std::nullopt;
      }
      ++i;  // closing quote
      if (!sample.labels.empty()) sample.labels += ',';
      sample.labels += label;
      sample.labels += "=\"";
      sample.labels += value;
      sample.labels += '"';
      if (label == "le") sample.le = value;
    }
  }
  if (i >= line.size() || (line[i] != ' ' && line[i] != '\t')) {
    error = "missing value";
    return std::nullopt;
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const std::size_t value_start = i;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  const std::string text(line.substr(value_start, i - value_start));
  if (text == "+Inf") {
    sample.value = HUGE_VAL;
  } else if (text == "-Inf") {
    sample.value = -HUGE_VAL;
  } else if (text == "NaN") {
    sample.value = NAN;
  } else {
    char* end = nullptr;
    sample.value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()) {
      error = "value '" + text + "' is not a float";
      return std::nullopt;
    }
  }
  // Optional timestamp: integer milliseconds.
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < line.size()) {
    const std::size_t ts_start = i;
    if (line[i] == '-' || line[i] == '+') ++i;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i != line.size() || i == ts_start) {
      error = "trailing garbage after value";
      return std::nullopt;
    }
  }
  return sample;
}

/// `name` with a histogram-series suffix removed, when `suffix` matches.
std::optional<std::string> strip_suffix(const std::string& name,
                                        std::string_view suffix) {
  if (name.size() <= suffix.size()) return std::nullopt;
  if (std::string_view(name).substr(name.size() - suffix.size()) != suffix) {
    return std::nullopt;
  }
  return name.substr(0, name.size() - suffix.size());
}

}  // namespace

bool is_valid_prom_name(std::string_view name) {
  if (name.empty() || !is_name_start(name.front())) return false;
  for (const char c : name) {
    if (!is_name_char(c)) return false;
  }
  return true;
}

std::optional<std::string> prom_name_strict(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '.' || c == '-') {
      out += '_';
    } else {
      out += c;
    }
  }
  if (!is_valid_prom_name(out)) return std::nullopt;
  return out;
}

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out += is_name_char(c) ? c : '_';
  }
  if (out.empty() || !is_name_start(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string render_prom_text(const MetricsSnapshot& snapshot,
                             std::span<const MetricSpec> catalog) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prom_name(name);
    emit_header(out, prom, "counter", help_for(catalog, name));
    out += prom;
    out += ' ';
    out += format_count(value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_name(name);
    emit_header(out, prom, "gauge", help_for(catalog, name));
    out += prom;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = prom_name(name);
    emit_header(out, prom, "histogram", help_for(catalog, name));
    // Cumulative buckets.  The total is recomputed from the per-bucket
    // counts (not the racing `count` atomic) so `+Inf` == `_count` holds
    // in every document.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upper_edges.size(); ++i) {
      cumulative += i < histogram.bucket_counts.size()
                        ? histogram.bucket_counts[i]
                        : 0;
      out += prom;
      out += "_bucket{le=\"";
      out += format_double(histogram.upper_edges[i]);
      out += "\"} ";
      out += format_count(cumulative);
      out += '\n';
    }
    // The overflow bucket folds into +Inf.
    if (histogram.bucket_counts.size() > histogram.upper_edges.size()) {
      cumulative += histogram.bucket_counts[histogram.upper_edges.size()];
    }
    out += prom;
    out += "_bucket{le=\"+Inf\"} ";
    out += format_count(cumulative);
    out += '\n';
    out += prom;
    out += "_sum ";
    out += format_double(histogram.sum);
    out += '\n';
    out += prom;
    out += "_count ";
    out += format_count(cumulative);
    out += '\n';
  }
  return out;
}

std::string render_prom_text(const MetricsSnapshot& snapshot) {
  return render_prom_text(snapshot, metric_catalog());
}

void PromCheckResult::fail(std::size_t line_no, std::string message) {
  ok = false;
  errors.push_back("line " + std::to_string(line_no) + ": " +
                   std::move(message));
}

PromCheckResult check_prom_text(std::string_view text) {
  PromCheckResult result;
  if (text.empty()) {
    result.fail(0, "empty document");
    return result;
  }
  if (text.back() != '\n') {
    result.fail(0, "document does not end with a newline");
  }

  std::map<std::string, SeriesState> series;
  std::set<std::string> seen_samples;
  /// base name + labels-without-le -> le -> cumulative count.
  std::map<std::string, std::map<double, double>> buckets;
  std::map<std::string, double> counts;
  std::set<std::string> sums;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        nl == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.front() == '#') {
      const bool is_help = line.substr(0, 7) == "# HELP ";
      const bool is_type = line.substr(0, 7) == "# TYPE ";
      if (!is_help && !is_type) continue;  // free-form comment
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      const std::string name(space == std::string_view::npos
                                 ? rest
                                 : rest.substr(0, space));
      if (!is_valid_prom_name(name)) {
        result.fail(line_no, (is_help ? std::string("HELP") : "TYPE") +
                                 " names invalid metric '" + name + "'");
        continue;
      }
      SeriesState& state = series[name];
      if (is_help) {
        if (state.help_seen) {
          result.fail(line_no, "duplicate HELP for '" + name + "'");
        }
        state.help_seen = true;
        continue;
      }
      const std::string type(space == std::string_view::npos
                                 ? ""
                                 : rest.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        result.fail(line_no, "unknown TYPE '" + type + "' for '" + name + "'");
      }
      if (state.typed) {
        result.fail(line_no, "duplicate TYPE for '" + name + "'");
      }
      if (state.sampled) {
        result.fail(line_no, "TYPE for '" + name + "' after its samples");
      }
      state.typed = true;
      state.type = type;
      ++result.families;
      continue;
    }

    std::string error;
    const std::optional<Sample> sample = parse_sample(line, error);
    if (!sample) {
      result.fail(line_no, error);
      continue;
    }
    ++result.samples;
    if (!seen_samples.insert(sample->name + "{" + sample->labels + "}")
             .second) {
      result.fail(line_no, "duplicate sample '" + sample->name + "{" +
                               sample->labels + "}'");
    }

    // A histogram's series hang off its TYPE-declared base name.
    std::string base = sample->name;
    std::string kind = "plain";
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (const auto stripped = strip_suffix(sample->name, suffix)) {
        const auto it = series.find(*stripped);
        if (it != series.end() && it->second.type == "histogram") {
          base = *stripped;
          kind = std::string(suffix.substr(1));
          break;
        }
      }
    }
    SeriesState& state = series[base];
    if (!state.typed) {
      result.fail(line_no, "sample '" + sample->name +
                               "' has no preceding TYPE declaration");
    }
    state.sampled = true;

    if (kind == "bucket") {
      if (!sample->le) {
        result.fail(line_no,
                    "'" + sample->name + "' bucket without an le label");
        continue;
      }
      double le = 0;
      if (*sample->le == "+Inf") {
        le = HUGE_VAL;
      } else {
        char* end = nullptr;
        le = std::strtod(sample->le->c_str(), &end);
        if (sample->le->empty() || end != sample->le->c_str() + sample->le->size()) {
          result.fail(line_no, "le '" + *sample->le + "' is not a float");
          continue;
        }
      }
      std::string labels_without_le;
      // Canonical labels minus le: rebuilt by filtering the joined form.
      std::size_t pos = 0;
      while (pos < sample->labels.size()) {
        std::size_t comma = sample->labels.find("\",", pos);
        const std::size_t end_pos = comma == std::string::npos
                                        ? sample->labels.size()
                                        : comma + 1;
        const std::string_view one =
            std::string_view(sample->labels).substr(pos, end_pos - pos);
        if (one.substr(0, 4) != "le=\"") {
          if (!labels_without_le.empty()) labels_without_le += ',';
          labels_without_le += one;
        }
        pos = comma == std::string::npos ? sample->labels.size() : comma + 2;
      }
      buckets[base + "{" + labels_without_le + "}"][le] = sample->value;
    } else if (kind == "count") {
      counts[base + "{" + sample->labels + "}"] = sample->value;
    } else if (kind == "sum") {
      sums.insert(base + "{" + sample->labels + "}");
    }
  }

  // Histogram cross-checks: cumulative monotonicity, +Inf presence,
  // _count == +Inf.
  for (const auto& [key, by_le] : buckets) {
    double previous = -1;
    bool first = true;
    for (const auto& [le, count] : by_le) {
      if (!first && count < previous) {
        result.fail(0, "histogram '" + key +
                           "' bucket counts decrease at le=" +
                           format_double(le));
      }
      previous = count;
      first = false;
    }
    const auto inf = by_le.find(HUGE_VAL);
    if (inf == by_le.end()) {
      result.fail(0, "histogram '" + key + "' has no le=\"+Inf\" bucket");
      continue;
    }
    const auto count = counts.find(key);
    if (count == counts.end()) {
      result.fail(0, "histogram '" + key + "' has no _count sample");
    } else if (count->second != inf->second) {
      result.fail(0, "histogram '" + key + "' _count " +
                         format_double(count->second) +
                         " != +Inf bucket " + format_double(inf->second));
    }
    if (!sums.contains(key)) {
      result.fail(0, "histogram '" + key + "' has no _sum sample");
    }
  }
  // Histograms must carry buckets (an empty histogram still renders its
  // +Inf bucket).
  for (const auto& [name, state] : series) {
    if (state.type == "histogram" && state.typed &&
        !buckets.contains(name + "{}")) {
      bool any = false;
      for (const auto& [key, by_le] : buckets) {
        if (key.substr(0, name.size() + 1) == name + "{") any = true;
      }
      if (!any) {
        result.fail(0, "histogram '" + name + "' declared but no _bucket "
                       "samples found");
      }
    }
  }
  return result;
}

}  // namespace sdc::obs
