#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace sdc {

Rng Rng::fork(std::uint64_t salt) {
  // splitmix64-style finalizer over (next draw, salt) decorrelates children.
  std::uint64_t x = engine_() ^ (salt * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return Rng(x);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::lognormal(double median, double sigma) {
  return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

double Rng::normal_clamped(double mean, double stddev, double lo) {
  return std::max(lo, std::normal_distribution<double>(mean, stddev)(engine_));
}

bool Rng::chance(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

SimDuration Rng::lognormal_duration(SimDuration median, double sigma) {
  return static_cast<SimDuration>(lognormal(static_cast<double>(median), sigma));
}

}  // namespace sdc
