// Vectorized byte scanning for the mining hot path.
//
// The miner's inner loops are byte hunts: newline splitting in
// `LogView`, the "': '" logger/message separator in `parse_line`, and
// the newline census that sizes the line-slice vector.  This header
// provides `memchr`-style primitives with four backends behind one
// runtime dispatch:
//
//   kScalar  byte-at-a-time reference loop (always available; the
//            semantics the others must reproduce bit for bit)
//   kSwar    8-byte broadcast-compare on plain uint64 loads — portable
//            C++, no intrinsics ("SIMD within a register")
//   kSse2    16-byte _mm_cmpeq_epi8/_mm_movemask_epi8 (x86-64 baseline)
//   kAvx2    32-byte vpcmpeqb, compiled with a target attribute and
//            selected only when the CPU reports AVX2
//
// The active backend defaults to the best one compiled in and supported
// by the running CPU; tests and the ablation bench override it with
// `set_scan_backend` or the `SDC_SCAN_BACKEND` env var
// (scalar|swar|sse2|avx2).  Building with -DSDC_DISABLE_SIMD=ON removes
// every backend but kScalar — the scalar-fallback CI job proves the
// portable path carries the full suite.
//
// All backends read only bytes inside [data, data+size): vector loops
// cover whole blocks and hand the tail to the scalar loop, so the
// primitives are ASan-clean on mmap'd buffers that end mid-page.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace sdc::simd {

enum class ScanBackend {
  kScalar = 0,
  kSwar = 1,
  kSse2 = 2,
  kAvx2 = 3,
};

/// Short stable name ("scalar", "swar", "sse2", "avx2").
std::string_view scan_backend_name(ScanBackend backend);

/// Inverse of scan_backend_name; nullopt-like: returns false on unknown
/// names and leaves `out` untouched.
bool scan_backend_from_name(std::string_view name, ScanBackend& out);

/// Backends compiled into this binary and usable on this CPU, in
/// ascending preference order (best last).  Always contains kScalar.
std::span<const ScanBackend> available_scan_backends();

/// The backend the default entry points dispatch to.  Initialized once
/// to the best available backend, or to $SDC_SCAN_BACKEND when that
/// names an available one.
ScanBackend active_scan_backend();

/// Overrides the active backend (tests, ablation).  Returns false —
/// leaving the active backend unchanged — when `backend` is not in
/// `available_scan_backends()`.
bool set_scan_backend(ScanBackend backend);

/// Index of the first `needle` at or after `from`, or std::string_view::npos.
std::size_t find_byte(std::string_view text, char needle,
                      std::size_t from = 0);
std::size_t find_byte(std::string_view text, char needle, std::size_t from,
                      ScanBackend backend);

/// Number of occurrences of `needle` in `text`.
std::size_t count_byte(std::string_view text, char needle);
std::size_t count_byte(std::string_view text, char needle,
                       ScanBackend backend);

}  // namespace sdc::simd
