// Annotated mutex primitives: `std::mutex`/`std::condition_variable`
// wrapped so Clang Thread Safety Analysis can see them (ISSUE 8).
//
// `common::Mutex` is a capability, `common::MutexLock` the scoped
// acquisition, `common::CondVar` the matching condition variable.  Data
// a mutex protects is declared `SDC_GUARDED_BY(mu_)`; the CI
// `thread-safety` job (clang, `-Werror=thread-safety-analysis`) then
// rejects any access outside a critical section at compile time.
//
// Condition waits: write the predicate as an explicit loop —
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// not as a lambda passed to wait().  The analysis cannot see that a
// lambda body runs with the lock held, so predicate lambdas over
// guarded state would need escape hatches; the explicit loop form needs
// none.  (`CondVar::wait` releases and re-acquires the capability
// internally; to the analysis the lock is simply held throughout, which
// is exactly the invariant predicate loops rely on.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace sdc {

class CondVar;

/// An annotated `std::mutex`: lock discipline is checked at compile
/// time under Clang (see file comment); identical codegen otherwise.
class SDC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDC_ACQUIRE() { mu_.lock(); }
  void unlock() SDC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SDC_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII critical section over a `Mutex` (the only way CondVar waits).
class SDC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SDC_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() SDC_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to `Mutex`/`MutexLock`.  Waits atomically
/// release the lock and re-acquire it before returning, exactly like
/// `std::condition_variable` — callers re-check their predicate in a
/// loop around `wait`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait: returns `std::cv_status::timeout` when `timeout` passed
  /// without a notification.  Help-while-wait loops (thread_pool.cpp)
  /// use this as a backstop so a waiter that raced an enqueue re-checks
  /// the queue instead of sleeping on a notification that already fired.
  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sdc
