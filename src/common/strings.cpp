#include "common/strings.hpp"

#include <cctype>

namespace sdc {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

namespace {
bool is_token_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::string_view find_token_with_prefix(std::string_view text,
                                        std::string_view prefix) {
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string_view::npos) {
    // Must be at a token boundary.
    if (pos > 0 && is_token_char(text[pos - 1])) {
      ++pos;
      continue;
    }
    std::size_t end = pos + prefix.size();
    while (end < text.size() && is_token_char(text[end])) ++end;
    return text.substr(pos, end - pos);
  }
  return {};
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace sdc
