#include "common/simd.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#if !defined(SDC_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define SDC_SCAN_X86 1
#include <immintrin.h>
#else
#define SDC_SCAN_X86 0
#endif

namespace sdc::simd {
namespace {

// --- scalar (reference) -----------------------------------------------------

std::size_t find_scalar(const char* data, std::size_t size, char needle,
                        std::size_t from) {
  for (std::size_t i = from; i < size; ++i) {
    if (data[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t count_scalar(const char* data, std::size_t size, char needle) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size; ++i) n += data[i] == needle;
  return n;
}

#if !defined(SDC_DISABLE_SIMD)

// --- SWAR: 8 bytes per step on plain integer loads --------------------------

constexpr std::uint64_t kOnes = 0x0101010101010101ull;
constexpr std::uint64_t kHighs = 0x8080808080808080ull;

/// 0x80 in every byte of `v` that is zero, 0 elsewhere (Mycroft's
/// has-zero-byte trick; exact because the high bit of a non-zero byte
/// can only survive the subtract when the byte was >= 0x80, and those
/// are cleared by `~v`... the classic formulation below has no false
/// positives for equality scans because we only ask "is there any zero
/// byte", never "which bytes are non-zero").
constexpr std::uint64_t zero_bytes(std::uint64_t v) {
  return (v - kOnes) & ~v & kHighs;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::size_t find_swar(const char* data, std::size_t size, char needle,
                      std::size_t from) {
  const std::uint64_t pattern =
      kOnes * static_cast<std::uint8_t>(needle);
  std::size_t i = from;
  while (i + 8 <= size) {
    const std::uint64_t hit = zero_bytes(load_u64(data + i) ^ pattern);
    if (hit != 0) {
      // Little-endian: lowest set 0x80 marks the first matching byte.
      return i + static_cast<std::size_t>(__builtin_ctzll(hit)) / 8;
    }
    i += 8;
  }
  return find_scalar(data, size, needle, i);
}

std::size_t count_swar(const char* data, std::size_t size, char needle) {
  const std::uint64_t pattern =
      kOnes * static_cast<std::uint8_t>(needle);
  std::size_t n = 0;
  std::size_t i = 0;
  while (i + 8 <= size) {
    n += static_cast<std::size_t>(
        __builtin_popcountll(zero_bytes(load_u64(data + i) ^ pattern)));
    i += 8;
  }
  return n + count_scalar(data + i, size - i, needle);
}

#endif  // !SDC_DISABLE_SIMD

#if SDC_SCAN_X86

// --- SSE2: 16 bytes per step (x86-64 baseline) ------------------------------

std::size_t find_sse2(const char* data, std::size_t size, char needle,
                      std::size_t from) {
  const __m128i pattern = _mm_set1_epi8(needle);
  std::size_t i = from;
  while (i + 16 <= size) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(block, pattern));
    if (mask != 0) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
    i += 16;
  }
  return find_scalar(data, size, needle, i);
}

std::size_t count_sse2(const char* data, std::size_t size, char needle) {
  const __m128i pattern = _mm_set1_epi8(needle);
  std::size_t n = 0;
  std::size_t i = 0;
  while (i + 16 <= size) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    n += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, pattern)))));
    i += 16;
  }
  return n + count_scalar(data + i, size - i, needle);
}

// --- AVX2: 32 bytes per step, gated on runtime CPU support ------------------

__attribute__((target("avx2"))) std::size_t find_avx2(const char* data,
                                                      std::size_t size,
                                                      char needle,
                                                      std::size_t from) {
  const __m256i pattern = _mm256_set1_epi8(needle);
  std::size_t i = from;
  while (i + 32 <= size) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(block, pattern)));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(mask));
    }
    i += 32;
  }
  return find_scalar(data, size, needle, i);
}

__attribute__((target("avx2"))) std::size_t count_avx2(const char* data,
                                                       std::size_t size,
                                                       char needle) {
  const __m256i pattern = _mm256_set1_epi8(needle);
  std::size_t n = 0;
  std::size_t i = 0;
  while (i + 32 <= size) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    n += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(block, pattern)))));
    i += 32;
  }
  return n + count_scalar(data + i, size - i, needle);
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // SDC_SCAN_X86

// --- dispatch ---------------------------------------------------------------

const std::vector<ScanBackend>& available_backends() {
  static const std::vector<ScanBackend> kAvailable = [] {
    std::vector<ScanBackend> out{ScanBackend::kScalar};
#if !defined(SDC_DISABLE_SIMD)
    out.push_back(ScanBackend::kSwar);
#endif
#if SDC_SCAN_X86
    out.push_back(ScanBackend::kSse2);
    if (cpu_has_avx2()) out.push_back(ScanBackend::kAvx2);
#endif
    return out;
  }();
  return kAvailable;
}

std::atomic<ScanBackend>& active_backend_slot() {
  static std::atomic<ScanBackend> active = [] {
    ScanBackend chosen = available_backends().back();
    if (const char* env = std::getenv("SDC_SCAN_BACKEND")) {
      ScanBackend named;
      if (scan_backend_from_name(env, named)) {
        for (const ScanBackend candidate : available_backends()) {
          if (candidate == named) chosen = named;
        }
      }
    }
    return chosen;
  }();
  return active;
}

}  // namespace

std::string_view scan_backend_name(ScanBackend backend) {
  switch (backend) {
    case ScanBackend::kScalar:
      return "scalar";
    case ScanBackend::kSwar:
      return "swar";
    case ScanBackend::kSse2:
      return "sse2";
    case ScanBackend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool scan_backend_from_name(std::string_view name, ScanBackend& out) {
  for (const ScanBackend backend :
       {ScanBackend::kScalar, ScanBackend::kSwar, ScanBackend::kSse2,
        ScanBackend::kAvx2}) {
    if (scan_backend_name(backend) == name) {
      out = backend;
      return true;
    }
  }
  return false;
}

std::span<const ScanBackend> available_scan_backends() {
  return available_backends();
}

ScanBackend active_scan_backend() {
  return active_backend_slot().load(std::memory_order_relaxed);
}

bool set_scan_backend(ScanBackend backend) {
  for (const ScanBackend candidate : available_backends()) {
    if (candidate == backend) {
      active_backend_slot().store(backend, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::size_t find_byte(std::string_view text, char needle, std::size_t from,
                      ScanBackend backend) {
  if (from >= text.size()) return std::string_view::npos;
  switch (backend) {
#if !defined(SDC_DISABLE_SIMD)
    case ScanBackend::kSwar:
      return find_swar(text.data(), text.size(), needle, from);
#endif
#if SDC_SCAN_X86
    case ScanBackend::kSse2:
      return find_sse2(text.data(), text.size(), needle, from);
    case ScanBackend::kAvx2:
      return find_avx2(text.data(), text.size(), needle, from);
#endif
    default:
      return find_scalar(text.data(), text.size(), needle, from);
  }
}

std::size_t find_byte(std::string_view text, char needle, std::size_t from) {
  return find_byte(text, needle, from, active_scan_backend());
}

std::size_t count_byte(std::string_view text, char needle,
                       ScanBackend backend) {
  if (text.empty()) return 0;
  switch (backend) {
#if !defined(SDC_DISABLE_SIMD)
    case ScanBackend::kSwar:
      return count_swar(text.data(), text.size(), needle);
#endif
#if SDC_SCAN_X86
    case ScanBackend::kSse2:
      return count_sse2(text.data(), text.size(), needle);
    case ScanBackend::kAvx2:
      return count_avx2(text.data(), text.size(), needle);
#endif
    default:
      return count_scalar(text.data(), text.size(), needle);
  }
}

std::size_t count_byte(std::string_view text, char needle) {
  return count_byte(text, needle, active_scan_backend());
}

}  // namespace sdc::simd
