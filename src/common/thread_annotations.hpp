// Clang Thread Safety Analysis annotations (ISSUE 8).
//
// These macros expose Clang's `-Wthread-safety` static lock-discipline
// analysis to the codebase: shared state is declared `SDC_GUARDED_BY` a
// capability (a `common::Mutex`), functions declare what they
// `SDC_REQUIRES` / `SDC_ACQUIRE` / `SDC_RELEASE`, and any access that
// the compiler cannot prove consistent with those declarations is a
// *compile error* under `-Werror=thread-safety-analysis` — the CI
// `thread-safety` job builds the whole tree that way.  TSan still runs
// (it catches lock-free races the annotations cannot express); the
// annotations catch the lock-discipline bugs TSan only finds when a
// test happens to interleave them.
//
// Off Clang (GCC, MSVC) every macro expands to nothing, so the
// annotations are free documentation.  The vocabulary deliberately
// mirrors the one documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the names
// mean exactly what the upstream docs say.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define SDC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SDC_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable) type.  The string
/// names the capability kind in diagnostics ("mutex").
#define SDC_CAPABILITY(x) SDC_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define SDC_SCOPED_CAPABILITY SDC_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member may only be accessed while holding the
/// given capability.
#define SDC_GUARDED_BY(x) SDC_THREAD_ANNOTATION_(guarded_by(x))

/// As SDC_GUARDED_BY, but guards the data a pointer member points to.
#define SDC_PT_GUARDED_BY(x) SDC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that the function acquires the capability and does not
/// release it before returning.
#define SDC_ACQUIRE(...) \
  SDC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases a capability the caller holds.
#define SDC_RELEASE(...) \
  SDC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that the caller must hold the capability for the duration of
/// the call (held on entry, still held on exit).
#define SDC_REQUIRES(...) \
  SDC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the capability (the function
/// acquires it itself; calling with it held would deadlock).
#define SDC_EXCLUDES(...) SDC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function tries to acquire the capability and
/// returns `ret` on success.
#define SDC_TRY_ACQUIRE(ret, ...) \
  SDC_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Declares a function that returns a reference to the given capability
/// (accessors handing out the lock itself).
#define SDC_RETURN_CAPABILITY(x) SDC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Use only for
/// code the analysis cannot model (and say why at the use site).
#define SDC_NO_THREAD_SAFETY_ANALYSIS \
  SDC_THREAD_ANNOTATION_(no_thread_safety_analysis)
