// Open-addressing hash map for the analyzer's hot grouping paths.
//
// `std::map` string/ID lookups dominate the post-mining stages on large
// corpora (every mined event pays an O(log n) pointer-chasing tree walk
// to find its application, and every fed line pays one to find its
// stream).  This map stores entries in one contiguous slot array with
// linear probing, a power-of-two capacity and a byte-per-slot occupancy
// vector — one hash, a handful of adjacent probes, no allocations per
// lookup.  Iteration order is the probe order, i.e. *unordered*:
// callers that need the analyzer's deterministic app-ID order sort at
// the merge step (see `finalize_analysis`), never here.
//
// Deliberately minimal: heterogeneous lookup when the hasher publishes
// `is_transparent` (so `std::string` keys probe from `string_view`s
// without allocating), and tombstone-free erase by backward-shift
// deletion (the follow-mode eviction path retires applications from the
// live table; every other grouping stage only inserts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace sdc {

/// Transparent string hasher (FNV-1a) for string-keyed tables.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view text) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Final avalanche of splitmix64 — turns structured integer keys
/// (cluster timestamps, sequence numbers) into well-spread hashes.
constexpr std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

template <class Key, class Value, class Hash = std::hash<Key>,
          class Eq = std::equal_to<>>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, Value>;

  FlatHashMap() = default;

  template <bool Const>
  class basic_iterator {
   public:
    using map_type =
        std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    basic_iterator() = default;
    basic_iterator(map_type* map, std::size_t index)
        : map_(map), index_(index) {
      skip_empty();
    }
    /// iterator -> const_iterator.
    operator basic_iterator<true>() const {  // NOLINT(google-explicit-constructor)
      basic_iterator<true> out;
      out.map_ = map_;
      out.index_ = index_;
      return out;
    }

    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }
    basic_iterator& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    friend bool operator==(const basic_iterator& a, const basic_iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    friend class FlatHashMap;
    template <bool>
    friend class basic_iterator;

    void skip_empty() {
      while (map_ != nullptr && index_ < map_->slots_.size() &&
             map_->occupied_[index_] == 0) {
        ++index_;
      }
    }

    map_type* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = basic_iterator<false>;
  using const_iterator = basic_iterator<true>;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  void clear() {
    slots_.clear();
    occupied_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t capacity = kMinCapacity;
    // Grow until `n` fits under the load-factor ceiling.
    while (capacity * 7 / 8 < n) capacity *= 2;
    if (capacity > slots_.size()) rehash(capacity);
  }

  /// Heterogeneous find: any `q` the hasher/comparator accept.
  template <class Q>
  const_iterator find(const Q& key) const {
    const std::size_t index = find_index(key);
    return index == kNotFound ? end() : const_iterator(this, index);
  }
  template <class Q>
  iterator find(const Q& key) {
    const std::size_t index = find_index(key);
    return index == kNotFound ? end() : iterator(this, index);
  }
  template <class Q>
  [[nodiscard]] bool contains(const Q& key) const {
    return find_index(key) != kNotFound;
  }

  /// Get-or-default-insert, the grouping workhorse.  `key` is only
  /// copied into a `Key` when the entry is new.
  template <class Q>
  Value& operator[](const Q& key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t index = probe_start(key);
    while (occupied_[index] != 0) {
      if (Eq{}(slots_[index].first, key)) return slots_[index].second;
      index = (index + 1) & (slots_.size() - 1);
    }
    occupied_[index] = 1;
    slots_[index].first = Key(key);
    ++size_;
    return slots_[index].second;
  }

  /// Removes `key` if present; returns the number of entries removed
  /// (0 or 1).  Backward-shift deletion: subsequent probe-chain entries
  /// slide back into the hole, so no tombstones accumulate and lookup
  /// cost stays proportional to probe distance.  Invalidates iterators.
  template <class Q>
  std::size_t erase(const Q& key) {
    const std::size_t index = find_index(key);
    if (index == kNotFound) return 0;
    erase_index(index);
    return 1;
  }

 private:
  void erase_index(std::size_t hole) {
    const std::size_t mask = slots_.size() - 1;
    occupied_[hole] = 0;
    slots_[hole] = value_type();
    --size_;
    std::size_t next = (hole + 1) & mask;
    while (occupied_[next] != 0) {
      // An entry may slide into the hole only if its home slot does not
      // lie strictly after the hole on its probe path (otherwise the
      // move would place it before its home and lookups would miss it).
      const std::size_t home = probe_start(slots_[next].first);
      if (((next - home) & mask) >= ((next - hole) & mask)) {
        slots_[hole] = std::move(slots_[next]);
        occupied_[hole] = 1;
        occupied_[next] = 0;
        slots_[next] = value_type();
        hole = next;
      }
      next = (next + 1) & mask;
    }
  }

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  template <class Q>
  std::size_t probe_start(const Q& key) const {
    return Hash{}(key) & (slots_.size() - 1);
  }

  template <class Q>
  std::size_t find_index(const Q& key) const {
    if (slots_.empty()) return kNotFound;
    std::size_t index = probe_start(key);
    while (occupied_[index] != 0) {
      if (Eq{}(slots_[index].first, key)) return index;
      index = (index + 1) & (slots_.size() - 1);
    }
    return kNotFound;
  }

  void rehash(std::size_t capacity) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_occupied = std::move(occupied_);
    slots_ = std::vector<value_type>(capacity);
    occupied_.assign(capacity, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_occupied[i] == 0) continue;
      std::size_t index = probe_start(old_slots[i].first);
      while (occupied_[index] != 0) index = (index + 1) & (capacity - 1);
      occupied_[index] = 1;
      slots_[index] = std::move(old_slots[i]);
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> occupied_;
  std::size_t size_ = 0;
};

}  // namespace sdc
