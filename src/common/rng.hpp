// Deterministic random number generation for the simulator.
//
// Every stochastic cost model draws from an `Rng` that is seeded from the
// scenario seed, so a fixed seed yields byte-identical logs (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <random>

#include "common/sim_time.hpp"

namespace sdc {

/// A seeded pseudo-random source with the distribution shapes the cost
/// models need.  Cheap to copy; derive child streams with `fork`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child stream; mixing in `salt` keeps sibling
  /// streams decorrelated even when created in a loop.
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard exponential with the given mean (> 0).
  double exponential(double mean);

  /// Lognormal parameterized by its *median* and sigma of the underlying
  /// normal.  Latency phases in the simulator are lognormal because real
  /// JVM/daemon phase times are right-skewed and strictly positive.
  double lognormal(double median, double sigma);

  /// Pareto (heavy tail) with scale `xm` and shape `alpha` (> 0).
  double pareto(double xm, double alpha);

  /// Normal clamped below at `lo`.
  double normal_clamped(double mean, double stddev, double lo);

  /// Bernoulli draw.
  bool chance(double p);

  /// Convenience: lognormal duration in microseconds from a median
  /// duration and sigma.
  SimDuration lognormal_duration(SimDuration median, double sigma);

  /// Underlying engine access for std:: distributions in tests.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sdc
