// Simulated-time primitives.
//
// The simulation engine runs at microsecond resolution to avoid tie
// artifacts between events that a millisecond clock would collapse; log
// sinks round down to milliseconds, which is exactly the precision of
// log4j timestamps and therefore of SDchecker (paper §III-A).
#pragma once

#include <cstdint>

namespace sdc {

/// A point in simulated time, in microseconds since the simulation epoch.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

/// Sentinel for "no time recorded".
inline constexpr SimTime kNoTime = -1;

constexpr SimDuration micros(std::int64_t us) noexcept { return us; }
constexpr SimDuration millis(std::int64_t ms) noexcept { return ms * 1000; }
constexpr SimDuration seconds(std::int64_t s) noexcept { return s * 1'000'000; }

/// Converts a microsecond simulation time to whole milliseconds
/// (rounding toward negative infinity), the precision visible in logs.
constexpr std::int64_t to_millis(SimTime t) noexcept {
  return t >= 0 ? t / 1000 : (t - 999) / 1000;
}

/// Converts a microsecond duration to fractional seconds.
constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e6;
}

/// Converts a millisecond value (e.g. parsed from a log line) back to the
/// engine's microsecond scale.
constexpr SimTime from_millis(std::int64_t ms) noexcept { return ms * 1000; }

}  // namespace sdc
