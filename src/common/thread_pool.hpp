// A small fixed-size thread pool used by SDchecker's parallel log miner
// (one shard per log file) and by the benchmark harness for parameter
// sweeps.  Tasks are plain `std::function<void()>`; use `parallel_for`
// for the common chunked-index pattern.
//
// Lock discipline is declared with Clang Thread Safety annotations
// (common/thread_annotations.hpp): every shared member is GUARDED_BY
// `mu_`, so an unguarded access fails the `thread-safety` CI build
// instead of waiting for TSan to catch it racing.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sdc {

/// Fixed-size worker pool.  Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means `hardware_concurrency` (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task) SDC_EXCLUDES(mu_);

  /// Blocks until every submitted task has completed.
  void wait_idle() SDC_EXCLUDES(mu_);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop() SDC_EXCLUDES(mu_);

  /// Written once in the constructor, read-only afterwards (workers
  /// never touch it) — confined, not guarded.
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ SDC_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ SDC_GUARDED_BY(mu_) = 0;
  bool stopping_ SDC_GUARDED_BY(mu_) = false;
};

/// Runs `body(i)` for i in [0, n) across the pool, blocking until done.
/// Exceptions thrown by `body` are rethrown (first one wins) on the caller.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Runs `body(begin, end)` over [0, n) split into contiguous chunks of at
/// least `grain` indices (one chunk per worker share otherwise), blocking
/// until done.  `grain` bounds per-task overhead for cheap loop bodies;
/// grain = 0 means `n / (4 * threads)` rounded up.  Exceptions are
/// rethrown as in `parallel_for`.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace sdc
