// A small fixed-size thread pool used by SDchecker's parallel log miner
// (one shard per log file), the fleet-mode multi-corpus pipeline, and
// the benchmark harness for parameter sweeps.  Tasks are plain
// `std::function<void()>`; use `parallel_for` for the common
// chunked-index pattern.
//
// Nested fan-out (ISSUE 10): a task running on the pool may itself call
// `parallel_for` on the *same* pool.  The waiting side never blocks
// while the queue has work — it pops and executes queued tasks instead
// (help-while-wait, `try_run_one`), so an inner fan-out issued from a
// fully-occupied pool still makes progress where a blocking wait would
// deadlock.  A short timed wait backstops the race between "queue looked
// empty" and "a task was enqueued right after".
//
// Lock discipline is declared with Clang Thread Safety annotations
// (common/thread_annotations.hpp): every shared member is GUARDED_BY
// `mu_`, so an unguarded access fails the `thread-safety` CI build
// instead of waiting for TSan to catch it racing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sdc {

/// Raw atomic sinks the pool mirrors its activity into (`pool.tasks`,
/// `pool.help_while_wait`, `pool.queue_depth` in the metric catalog).
/// The common layer cannot depend on obs, so the obs side installs
/// pointers to its instruments' storage once at process start
/// (`obs::attach_thread_pool_metrics`); null sinks cost one relaxed
/// load per task.  Totals are process-wide across every pool instance.
struct ThreadPoolMetricSinks {
  std::atomic<std::uint64_t>* tasks = nullptr;
  std::atomic<std::uint64_t>* help_while_wait = nullptr;
  std::atomic<std::int64_t>* queue_depth = nullptr;
};

/// Installs the process-wide sinks (idempotent; last call wins).  Safe
/// to call while pools are running — each sink pointer is swapped
/// atomically.
void set_thread_pool_metric_sinks(const ThreadPoolMetricSinks& sinks) noexcept;

/// Fixed-size worker pool.  Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means `hardware_concurrency` (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task) SDC_EXCLUDES(mu_);

  /// Pops one queued task and runs it on the calling thread; returns
  /// false when the queue was empty.  This is the help-while-wait
  /// primitive: a caller that must wait for pool work (parallel_for, a
  /// fleet corpus barrier) drains the queue instead of blocking, so
  /// nested fan-out on one pool cannot deadlock.
  bool try_run_one() SDC_EXCLUDES(mu_);

  /// Blocks until every submitted task has completed.
  void wait_idle() SDC_EXCLUDES(mu_);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop() SDC_EXCLUDES(mu_);

  /// Written once in the constructor, read-only afterwards (workers
  /// never touch it) — confined, not guarded.
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ SDC_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ SDC_GUARDED_BY(mu_) = 0;
  bool stopping_ SDC_GUARDED_BY(mu_) = false;
};

/// Runs `body(i)` for i in [0, n) across the pool, blocking until done.
/// Exceptions thrown by `body` are rethrown (first one wins) on the caller.
/// Safe to call from inside a pool task: the waiter executes queued work
/// (its own shards or anything else pending) instead of blocking.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Runs `body(begin, end)` over [0, n) split into contiguous chunks of at
/// least `grain` indices (one chunk per worker share otherwise), blocking
/// until done.  `grain` bounds per-task overhead for cheap loop bodies;
/// grain = 0 means `n / (4 * threads)` rounded up.  Exceptions are
/// rethrown as in `parallel_for`; nested calls are safe as in
/// `parallel_for`.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace sdc
