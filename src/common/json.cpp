#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace sdc::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') {
      out_ += ',';
    } else {
      stack_.back() = '1';
    }
  }
}

Writer& Writer::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_ += '0';
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_ += '0';
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view text) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  return *this;
}

Writer& Writer::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

Writer& Writer::value(double number) {
  comma_if_needed();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", number);
  out_ += buf;
  return *this;
}

Writer& Writer::value(bool boolean) {
  comma_if_needed();
  out_ += boolean ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

Writer& Writer::value(const std::optional<std::int64_t>& number) {
  if (!number) return null();
  return value(*number);
}

Writer& Writer::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

}  // namespace sdc::json
