#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sdc {

void SampleSet::add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void SampleSet::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double v : samples_) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::out_of_range("SampleSet::min on empty set");
  return sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::out_of_range("SampleSet::max on empty set");
  return sorted_.back();
}

double SampleSet::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty())
    throw std::out_of_range("SampleSet::percentile on empty set");
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> SampleSet::cdf(std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1 == 0 ? 1 : points - 1);
    out.emplace_back(percentile(q * 100.0), q);
  }
  return out;
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

namespace fmt {

std::string secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  return buf;
}

std::string pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace fmt
}  // namespace sdc
