// Sample statistics used by SDchecker reports and the benchmark harness:
// percentiles, CDFs, mean / standard deviation (paper Fig. 4 reports CDF,
// normalized means, and stddev of each delay component).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdc {

/// Aggregates a set of scalar samples and answers distribution queries.
/// Samples are stored; `percentile` sorts lazily on first query.
class SampleSet {
 public:
  SampleSet() = default;

  void add(double v);
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  /// Sample standard deviation (N-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }

  /// Empirical CDF sampled at `points` evenly spaced quantiles, returned
  /// as (value, cumulative probability) pairs suitable for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t points = 100) const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width text rendering helpers for report tables.
namespace fmt {
/// Renders seconds with 2 decimals, e.g. "17.20s".
std::string secs(double seconds);
/// Renders a ratio as a percentage with 1 decimal, e.g. "41.3%".
std::string pct(double ratio);
}  // namespace fmt

}  // namespace sdc
