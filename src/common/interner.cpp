#include "common/interner.hpp"

namespace sdc {

std::uint32_t StringInterner::intern(std::string_view text) {
  const auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(text);
  index_[text] = id;
  return id;
}

std::uint32_t StringInterner::find(std::string_view text) const {
  const auto it = index_.find(text);
  return it == index_.end() ? kInvalidId : it->second;
}

}  // namespace sdc
