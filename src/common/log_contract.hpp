// The emitter side of the simulator/miner log contract.
//
// Every scheduling-relevant log line a simulated daemon emits is declared
// as introspectable `constexpr` data — a message template with named
// `{placeholder}` slots — instead of being assembled ad hoc at the call
// site.  The daemons render the templates at runtime; `sdlint` renders
// the same templates with canonical placeholder values at build/CI time
// and drives them through the real miner extractor, so a drifted format
// string is a lint failure instead of a silent "missing event" in the
// delay decomposition.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sdc::contract {

/// One named value substituted into a message template.
struct Placeholder {
  std::string_view name;
  std::string_view value;
};

/// Renders `format`, replacing each `{name}` with the matching value.
/// Unknown placeholders are left verbatim (sdlint reports them); a `{`
/// with no closing `}` is treated as literal text.
std::string render_template(std::string_view format,
                            std::span<const Placeholder> values);

/// Convenience overload for brace-init call sites.
std::string render_template(std::string_view format,
                            std::initializer_list<Placeholder> values);

/// All `{name}` slots of a template, in order of appearance.
std::vector<std::string_view> collect_placeholders(std::string_view format);

/// Which synthetic log stream a declared line belongs to — sdlint uses
/// this to compose per-daemon sample streams for the Table-I coverage
/// check (the miner classifies streams from content, so the composition
/// must mirror a real bundle's layout).
enum class StreamRole {
  kResourceManager,
  kNodeManager,
  kSparkDriver,
  kSparkExecutor,
  kMrAppMaster,
  kMrTask,
};

/// One declared emitter line that is not a state-machine transition: a
/// milestone (REGISTER, START_ALLO, FIRST_TASK, log banners) or an
/// informational line that the extractor must stay silent on.
struct MilestoneSpec {
  /// Stable identifier, e.g. "spark.driver.start_allo".
  std::string_view name;
  /// Fully qualified logger class, as emitted.
  std::string_view logger_class;
  /// Message template with `{placeholder}` slots.
  std::string_view format;
  /// `event_name()` of the Table-I / auxiliary event the miner extractor
  /// must produce from this line, or "" when the line must stay silent.
  std::string_view emits;
  /// Stream the line appears in (for sdlint's coverage composition).
  StreamRole stream;
};

}  // namespace sdc::contract
