// Append-only string pool with dense uint32 ids.
//
// The columnar event batches store each event's log-stream name as an
// interned id instead of a per-event `std::string` — one copy of every
// stream name per pool, 4 bytes per event, and stream-equality checks
// become integer compares.  Resolution (`name`) is lock-free and safe
// from any thread as long as no `intern` call runs concurrently: the
// miner builds the pool up front from the bundle's stream names and
// then shares it read-only across worker threads.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/flat_hash_map.hpp"

namespace sdc {

class StringInterner {
 public:
  static constexpr std::uint32_t kInvalidId = 0xffffffffu;

  /// Returns the existing id for `text` or assigns the next dense one.
  std::uint32_t intern(std::string_view text);

  /// Id of `text` if already interned, kInvalidId otherwise.
  [[nodiscard]] std::uint32_t find(std::string_view text) const;

  /// The pooled string for a valid id.  The view stays valid for the
  /// pool's lifetime (strings are never moved or freed).
  [[nodiscard]] std::string_view name(std::uint32_t id) const {
    return names_[id];
  }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  [[nodiscard]] bool empty() const { return names_.empty(); }

 private:
  /// Deque so `name` views are pointer-stable across intern calls.
  std::deque<std::string> names_;
  FlatHashMap<std::string, std::uint32_t, StringHash> index_;
};

}  // namespace sdc
