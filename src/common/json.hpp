// Minimal JSON writer (no external dependencies): enough to serialize
// SDchecker reports for dashboards and scripts.  Writer-only by design —
// the tool consumes logs, not JSON.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdc::json {

/// Escapes a string for inclusion inside JSON quotes.
std::string escape(std::string_view text);

/// Streaming JSON builder with explicit begin/end calls.  The caller is
/// responsible for balanced nesting; commas are inserted automatically.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Starts a keyed value inside an object: `"key":` (value follows).
  Writer& key(std::string_view name);

  Writer& value(std::string_view text);
  Writer& value(const char* text) { return value(std::string_view(text)); }
  Writer& value(std::int64_t number);
  Writer& value(double number);
  Writer& value(bool boolean);
  Writer& null();
  /// nullopt -> null, otherwise the number.
  Writer& value(const std::optional<std::int64_t>& number);
  /// Splices an already-serialized JSON value verbatim (no escaping, no
  /// validation) — for embedding sub-documents produced by other writers.
  Writer& raw(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  Writer& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void comma_if_needed();

  std::string out_;
  /// Whether the next emission at the current nesting level needs a
  /// preceding comma; maintained as a stack encoded in a string for
  /// simplicity ('0' = first element pending, '1' = comma needed).
  std::string stack_;
  bool pending_key_ = false;
};

}  // namespace sdc::json
