// Sorted-vector map: `std::map`'s ordered interface on contiguous
// storage.
//
// An application owns a handful-to-hundreds of containers, and the
// analyzer both *looks them up* per mined event and *iterates them in
// container-ID order* when decomposing, exporting and rendering — the
// exact workload where a binary-searched vector beats a red-black tree
// (no per-node allocation, no pointer chasing) while keeping iteration
// deterministically ordered, which the byte-identical-output contract
// of the sharded analysis stage depends on.
//
// Implements the `std::map` subset the codebase uses: `operator[]`,
// `find`, `at`, ordered `begin`/`end`, `size`, `empty`.  `value_type`
// is `std::pair<Key, Value>` (key not const — don't mutate it through
// iterators).  Inserts shift the tail, so this fits many-lookups /
// few-inserts maps, not high-churn ones.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sdc {

template <class Key, class Value>
class FlatOrderedMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  iterator find(const Key& key) {
    const auto it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  const_iterator find(const Key& key) const {
    const auto it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }

  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || !(it->first == key)) {
      it = entries_.insert(it, value_type(key, Value()));
    }
    return it->second;
  }

  Value& at(const Key& key) {
    const auto it = find(key);
    if (it == entries_.end()) throw std::out_of_range("FlatOrderedMap::at");
    return it->second;
  }
  const Value& at(const Key& key) const {
    const auto it = find(key);
    if (it == entries_.end()) throw std::out_of_range("FlatOrderedMap::at");
    return it->second;
  }

 private:
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }
  iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace sdc
