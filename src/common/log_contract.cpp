#include "common/log_contract.hpp"

namespace sdc::contract {
namespace {

/// Finds the `{name}` slot starting at `pos`; returns npos when there is
/// no further well-formed slot.  `*name` receives the slot's name.
std::size_t find_slot(std::string_view format, std::size_t pos,
                      std::string_view* name, std::size_t* end) {
  while (pos < format.size()) {
    const std::size_t open = format.find('{', pos);
    if (open == std::string_view::npos) return std::string_view::npos;
    const std::size_t close = format.find('}', open + 1);
    if (close == std::string_view::npos) return std::string_view::npos;
    *name = format.substr(open + 1, close - open - 1);
    *end = close + 1;
    return open;
  }
  return std::string_view::npos;
}

}  // namespace

std::string render_template(std::string_view format,
                            std::span<const Placeholder> values) {
  std::string out;
  out.reserve(format.size() + 16);
  std::size_t pos = 0;
  while (pos < format.size()) {
    std::string_view name;
    std::size_t end = 0;
    const std::size_t open = find_slot(format, pos, &name, &end);
    if (open == std::string_view::npos) {
      out.append(format.substr(pos));
      break;
    }
    out.append(format.substr(pos, open - pos));
    bool replaced = false;
    for (const Placeholder& value : values) {
      if (value.name == name) {
        out.append(value.value);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      // Unknown slot: keep it verbatim so sdlint can flag it.
      out.append(format.substr(open, end - open));
    }
    pos = end;
  }
  return out;
}

std::string render_template(std::string_view format,
                            std::initializer_list<Placeholder> values) {
  return render_template(format,
                         std::span<const Placeholder>(values.begin(),
                                                      values.size()));
}

std::vector<std::string_view> collect_placeholders(std::string_view format) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < format.size()) {
    std::string_view name;
    std::size_t end = 0;
    const std::size_t open = find_slot(format, pos, &name, &end);
    if (open == std::string_view::npos) break;
    out.push_back(name);
    pos = end;
  }
  return out;
}

}  // namespace sdc::contract
