// YARN-style global identifiers.
//
// SDchecker correlates events across daemon logs purely through the
// textual IDs that YARN embeds in log messages (paper §III-C): an
// application ID such as `application_1499100000000_0007` and container
// IDs such as `container_1499100000000_0007_01_000002`.  These types
// render and parse exactly that format so that the simulator's logs are
// indistinguishable from real YARN logs to the mining code.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdc {

/// Identifies one submitted application within a cluster incarnation.
struct ApplicationId {
  /// Cluster start timestamp (epoch millis), the YARN "cluster timestamp".
  std::int64_t cluster_ts = 0;
  /// Monotonic per-cluster sequence number, starting at 1.
  std::int32_t id = 0;

  auto operator<=>(const ApplicationId&) const = default;

  /// Renders as `application_<clusterTs>_<zero-padded id>`.
  [[nodiscard]] std::string str() const;

  /// Parses the `application_..._...` form; returns nullopt on mismatch.
  static std::optional<ApplicationId> parse(std::string_view text);
};

/// Identifies one container granted to an application attempt.
struct ContainerId {
  ApplicationId app;
  /// Application attempt number (always 1 in this work: no AM restarts).
  std::int32_t attempt = 1;
  /// Per-attempt container sequence; container 1 is by convention the AM.
  std::int64_t id = 0;

  auto operator<=>(const ContainerId&) const = default;

  /// True for the AppMaster container (sequence number 1).
  [[nodiscard]] bool is_am() const noexcept { return id == 1; }

  /// Renders as `container_<clusterTs>_<appId>_<attempt>_<containerId>`.
  [[nodiscard]] std::string str() const;

  /// Parses the `container_...` form; returns nullopt on mismatch.
  static std::optional<ContainerId> parse(std::string_view text);
};

/// Identifies a worker node; rendered as `node<NN>.cluster:45454`.
struct NodeId {
  std::int32_t index = 0;

  auto operator<=>(const NodeId&) const = default;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string hostname() const;
  static std::optional<NodeId> parse(std::string_view text);
};

}  // namespace sdc
