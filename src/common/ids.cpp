#include "common/ids.hpp"

#include <charconv>
#include <cstdio>

namespace sdc {
namespace {

/// Parses a decimal integer span; advances `pos` past it on success.
template <typename Int>
bool parse_int(std::string_view text, std::size_t& pos, Int& out) {
  const char* first = text.data() + pos;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr == first) return false;
  pos += static_cast<std::size_t>(ptr - first);
  return true;
}

/// Consumes a literal prefix; advances `pos` past it on success.
bool consume(std::string_view text, std::size_t& pos, std::string_view lit) {
  if (text.substr(pos, lit.size()) != lit) return false;
  pos += lit.size();
  return true;
}

}  // namespace

std::string ApplicationId::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "application_%lld_%04d",
                static_cast<long long>(cluster_ts), id);
  return buf;
}

std::optional<ApplicationId> ApplicationId::parse(std::string_view text) {
  std::size_t pos = 0;
  ApplicationId out;
  if (!consume(text, pos, "application_")) return std::nullopt;
  if (!parse_int(text, pos, out.cluster_ts)) return std::nullopt;
  if (!consume(text, pos, "_")) return std::nullopt;
  if (!parse_int(text, pos, out.id)) return std::nullopt;
  if (pos != text.size()) return std::nullopt;
  return out;
}

std::string ContainerId::str() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "container_%lld_%04d_%02d_%06lld",
                static_cast<long long>(app.cluster_ts), app.id, attempt,
                static_cast<long long>(id));
  return buf;
}

std::optional<ContainerId> ContainerId::parse(std::string_view text) {
  std::size_t pos = 0;
  ContainerId out;
  if (!consume(text, pos, "container_")) return std::nullopt;
  // Hadoop 2.8+ embeds the RM epoch for work-preserving restarts:
  // `container_e17_<clusterTs>_...`.  The epoch does not participate in
  // identity here (single RM incarnation per analysis) — skip it.
  if (pos < text.size() && text[pos] == 'e') {
    std::size_t epoch_pos = pos + 1;
    std::int32_t epoch = 0;
    if (!parse_int(text, epoch_pos, epoch)) return std::nullopt;
    if (!consume(text, epoch_pos, "_")) return std::nullopt;
    pos = epoch_pos;
  }
  if (!parse_int(text, pos, out.app.cluster_ts)) return std::nullopt;
  if (!consume(text, pos, "_")) return std::nullopt;
  if (!parse_int(text, pos, out.app.id)) return std::nullopt;
  if (!consume(text, pos, "_")) return std::nullopt;
  if (!parse_int(text, pos, out.attempt)) return std::nullopt;
  if (!consume(text, pos, "_")) return std::nullopt;
  if (!parse_int(text, pos, out.id)) return std::nullopt;
  if (pos != text.size()) return std::nullopt;
  return out;
}

std::string NodeId::str() const { return hostname() + ":45454"; }

std::string NodeId::hostname() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "node%02d.cluster", index);
  return buf;
}

std::optional<NodeId> NodeId::parse(std::string_view text) {
  std::size_t pos = 0;
  NodeId out;
  if (!consume(text, pos, "node")) return std::nullopt;
  if (!parse_int(text, pos, out.index)) return std::nullopt;
  if (!consume(text, pos, ".cluster")) return std::nullopt;
  if (pos != text.size() && !consume(text, pos, ":45454")) return std::nullopt;
  if (pos != text.size()) return std::nullopt;
  return out;
}

}  // namespace sdc
