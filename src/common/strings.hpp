// Small string helpers shared by the log formatter and the log miner.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sdc {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Returns the first token in `text` that parses as the given YARN-style
/// prefix ("application_" / "container_"), or an empty view.  Tokens are
/// maximal runs of [A-Za-z0-9_].
std::string_view find_token_with_prefix(std::string_view text,
                                        std::string_view prefix);

/// Joins parts with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace sdc
