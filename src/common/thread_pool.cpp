#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/mutex.hpp"

namespace sdc {
namespace {

/// Process-wide metric sinks (see ThreadPoolMetricSinks).  Each pointer
/// is installed/read atomically so installation can race running pools.
std::atomic<std::atomic<std::uint64_t>*> g_tasks_sink{nullptr};
std::atomic<std::atomic<std::uint64_t>*> g_help_sink{nullptr};
std::atomic<std::atomic<std::int64_t>*> g_depth_sink{nullptr};

inline void sink_add(std::atomic<std::atomic<std::uint64_t>*>& slot,
                     std::uint64_t n) {
  if (auto* sink = slot.load(std::memory_order_relaxed)) {
    sink->fetch_add(n, std::memory_order_relaxed);
  }
}

inline void depth_add(std::int64_t n) {
  if (auto* sink = g_depth_sink.load(std::memory_order_relaxed)) {
    sink->fetch_add(n, std::memory_order_relaxed);
  }
}

}  // namespace

void set_thread_pool_metric_sinks(
    const ThreadPoolMetricSinks& sinks) noexcept {
  g_tasks_sink.store(sinks.tasks, std::memory_order_relaxed);
  g_help_sink.store(sinks.help_while_wait, std::memory_order_relaxed);
  g_depth_sink.store(sinks.queue_depth, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  depth_add(1);
  cv_task_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
  }
  depth_add(-1);
  sink_add(g_tasks_sink, 1);
  sink_add(g_help_sink, 1);
  task();
  {
    MutexLock lock(mu_);
    --in_flight_;
  }
  cv_idle_.notify_all();
  return true;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait(lock);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_task_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    depth_add(-1);
    sink_add(g_tasks_sink, 1);
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  const std::size_t shards = std::min(n, pool.thread_count());
  std::size_t done = 0;
  Mutex done_mu;
  CondVar done_cv;

  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit([&] {
      std::size_t i;
      std::exception_ptr error;
      while ((i = next.fetch_add(1)) < n) {
        try {
          body(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      // Notify while holding the lock: the caller's stack frame — and with
      // it done_cv itself — may be destroyed the instant the caller
      // observes done == shards, so an unlocked notify could land on a
      // dead condition variable.
      MutexLock lock(done_mu);
      if (error && !first_error) first_error = std::move(error);
      ++done;
      done_cv.notify_one();
    });
  }
  // Help-while-wait: the caller may itself be a pool task (nested
  // fan-out), in which case blocking here could deadlock — every worker
  // could be parked in this same loop while the tasks they are waiting
  // on sit in the queue behind them.  Instead the waiter drains queued
  // work (its own shards or anyone else's) until the completion count
  // arrives.  The timed wait backstops the unavoidable race where a
  // task is enqueued right after try_run_one saw an empty queue.
  while (true) {
    {
      MutexLock lock(done_mu);
      if (done == shards) break;
    }
    if (pool.try_run_one()) continue;
    MutexLock lock(done_mu);
    if (done == shards) break;
    done_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) {
    const std::size_t shares = 4 * std::max<std::size_t>(pool.thread_count(), 1);
    grain = (n + shares - 1) / shares;
  }
  if (grain < 1) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  parallel_for(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(begin, end);
  });
}

}  // namespace sdc
