#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/mutex.hpp"

namespace sdc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait(lock);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_task_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  const std::size_t shards = std::min(n, pool.thread_count());
  std::size_t done = 0;
  Mutex done_mu;
  CondVar done_cv;

  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit([&] {
      std::size_t i;
      std::exception_ptr error;
      while ((i = next.fetch_add(1)) < n) {
        try {
          body(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      // Notify while holding the lock: the caller's stack frame — and with
      // it done_cv itself — may be destroyed the instant the caller
      // observes done == shards, so an unlocked notify could land on a
      // dead condition variable.
      MutexLock lock(done_mu);
      if (error && !first_error) first_error = std::move(error);
      ++done;
      done_cv.notify_one();
    });
  }
  {
    MutexLock lock(done_mu);
    while (done != shards) done_cv.wait(lock);
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) {
    const std::size_t shares = 4 * std::max<std::size_t>(pool.thread_count(), 1);
    grain = (n + shares - 1) / shares;
  }
  if (grain < 1) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  parallel_for(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(begin, end);
  });
}

}  // namespace sdc
