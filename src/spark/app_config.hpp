// Per-application configuration of the simulated Spark framework.
//
// The structural knobs are exactly the factors the paper varies: number
// of executors (Fig. 6), extra localized file size (Fig. 8), number of
// files opened during user initialization (Fig. 11-b), Docker (Fig. 9-b),
// the parallel-init code optimization (Fig. 11-b "opt"), and the
// over-request factor that reproduces the SPARK-21562 bug (§V-A).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/resource.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"

namespace sdc::spark {

/// Application flavor; decides defaults and report labels.
enum class AppKind {
  kSparkSql,    // TPC-H query via Spark-SQL (8 tables -> 8 opened files)
  kWordCount,   // Spark wordcount (1 opened file)
  kKmeans,      // HiBench Kmeans, used as CPU interference (§IV-E)
  kMapReduce,   // MapReduce job (load / interference generators)
};

std::string_view app_kind_name(AppKind kind);

/// Ground truth emitted when an application completes, used by the
/// harness to cross-check SDchecker (the tool itself never sees this).
struct JobRecord {
  ApplicationId app;
  std::string name;
  AppKind kind = AppKind::kSparkSql;
  SimTime submitted_at = kNoTime;    // filled by the harness
  SimTime first_task_at = kNoTime;   // first user task assigned
  SimTime finished_at = kNoTime;
  std::int32_t executors_requested = 0;
  std::int32_t executors_launched = 0;
  /// Launches that failed and were replaced (failure injection).
  std::int32_t executors_failed = 0;
};

struct SparkAppConfig {
  std::string name = "tpch-q1";
  AppKind kind = AppKind::kSparkSql;

  std::int32_t num_executors = 4;
  cluster::Resource executor_resource = cluster::kExecutorResource;

  /// Input dataset size (drives execution time and scan I/O).
  double input_mb = 2048.0;

  /// HDFS name of the input dataset; executor container asks carry the
  /// file's replica nodes as locality preferences.  Empty = derived from
  /// the input size ("dataset-<MB>"), so apps over the same dataset share
  /// block placement.
  std::string input_file;

  /// Extra files shipped with `spark-submit -f` and localized to every
  /// *executor* container on top of the ~500 MB default package (Fig. 8;
  /// the driver container localizes only the default package, which is
  /// why some 8 GB-run localizations still finish under a second).
  double extra_localized_mb = 0.0;

  /// Files opened (one RDD + broadcast variable each) during user
  /// initialization; 8 for TPC-H/Spark-SQL, 1 for wordcount (Fig. 11).
  std::int32_t files_opened = 8;

  /// Initialize RDDs/broadcasts concurrently with Scala Futures — the
  /// paper's code optimization (Fig. 11-b "opt").
  bool parallel_init = false;

  /// Launch all containers (AM + executors) inside Docker (Fig. 9-b).
  bool docker = false;

  /// Launch from pre-warmed JVMs and skip cold classloading/JIT — the
  /// paper's proposed "JVM reuse" optimization (§V-B), applicable to
  /// recurring applications.
  bool jvm_reuse = false;

  /// Failure-injection: probability that an executor launch fails (the
  /// driver requests a replacement container, like Spark's
  /// ExecutorAllocationManager does on executor loss).
  double executor_failure_prob = 0.0;

  /// Failure-injection: probability that the *AM* launch fails; YARN then
  /// starts a new application attempt (container ids carry the attempt
  /// number) up to yarn.resourcemanager.am.max-attempts.
  double am_failure_prob = 0.0;

  /// Ask YARN for ceil(num_executors * over_request_factor) containers
  /// but launch only num_executors — reproduces the allocated-but-never-
  /// used container bug (SPARK-21562) under the opportunistic scheduler.
  double over_request_factor = 1.0;

  /// Spark does not schedule tasks until this fraction of requested
  /// executors has registered (spark.scheduler.minRegisteredResourcesRatio;
  /// 0.8 for YARN, §IV-B).
  double min_registered_ratio = 0.8;

  /// AM-RM heartbeat interval.  Spark's YARN allocator polls at 250 ms
  /// (fast path while containers are pending) — which is why Spark's
  /// per-container acquisition delay is ~1% of the total (Table III)
  /// while MapReduce's 1 s heartbeat caps Fig. 7-c at one second.
  SimDuration am_heartbeat = millis(250);

  // --- execution model (filled by the workload generator) ----------------
  /// Median busy time of the query after the first task starts.
  SimDuration execution_median = seconds(18);
  double execution_sigma = 0.45;
  /// Stages in the query plan.  Later stages dispatch further task waves
  /// mid-execution ("Got assigned task" lines keep appearing), which is
  /// why SDchecker keys on the *first* task only — the paper explicitly
  /// omits in-execution scheduling, as it overlaps task runtime (§IV-B).
  std::int32_t num_stages = 2;
  /// Cluster-wide I/O *control* units added while the input scan is in
  /// flight (self-interference of large inputs, Fig. 5: `in` degrades
  /// strongly with huge inputs).
  double scan_io_units = 0.6;
  /// I/O *transfer* units of the scan — small, because replicated reads
  /// spread over the cluster rarely collide with a given localization
  /// download (Fig. 5: `out` degrades only mildly).
  double scan_transfer_units = 0.03;
  /// Duration of the scan phase.
  SimDuration scan_duration = seconds(8);
  /// CPU interference units this app exerts while running (Kmeans > 0).
  double cpu_units_while_running = 0.0;

  /// Completion callback (ground truth for the harness).
  std::function<void(const JobRecord&)> on_complete;
};

}  // namespace sdc::spark
