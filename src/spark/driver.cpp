#include "spark/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log_contract.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "spark/log_contract.hpp"

namespace sdc::spark {
namespace {

using contract::render_template;

std::string driver_stream_name(const ApplicationId& app) {
  return "driver-" + app.str() + ".log";
}

std::string attempt_id(const ApplicationId& app) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "appattempt_%lld_%04d_000001",
                static_cast<long long>(app.cluster_ts), app.id);
  return buf;
}

}  // namespace

std::string_view app_kind_name(AppKind kind) {
  switch (kind) {
    case AppKind::kSparkSql:
      return "spark-sql";
    case AppKind::kWordCount:
      return "wordcount";
    case AppKind::kKmeans:
      return "kmeans";
    case AppKind::kMapReduce:
      return "mapreduce";
  }
  return "?";
}

SparkDriver::SparkDriver(cluster::Cluster& cluster, yarn::ResourceManager& rm,
                         logging::LogBundle& logs, SparkAppConfig config,
                         ApplicationId app, ContainerId am_container,
                         NodeId node, SimTime first_log_time, Rng rng,
                         const SparkCostModel* cost_model)
    : cluster_(cluster),
      rm_(rm),
      logs_(logs),
      config_(std::move(config)),
      default_cost_model_(),
      cost_(cost_model ? *cost_model : default_cost_model_),
      app_(app),
      am_container_(am_container),
      node_(node),
      logger_(&logs, driver_stream_name(app), cluster.config().epoch_base_ms),
      rng_(rng) {
  record_.app = app_;
  record_.name = config_.name;
  record_.kind = config_.kind;
  record_.executors_requested = config_.num_executors;
  // FIRST_LOG (Table I message 9): the first lines of the driver's log.
  logger_.info(first_log_time, std::string(kAmClass),
               std::string(kDriverSignalBanner.format));
  logger_.info(first_log_time, std::string(kAmClass),
               render_template(kDriverAttemptId.format,
                               {{"attempt", attempt_id(app_)}}));
  // Driver initialization (SparkContext, AM setup) — the driver delay.
  // Under JVM reuse (§V-B) the warm-up share of the init is already paid.
  SimDuration init = cost_.driver_init(cluster_.interference(), rng_);
  if (config_.jvm_reuse) {
    init = static_cast<SimDuration>(static_cast<double>(init) *
                                    cost_.config().warm_init_factor);
  }
  cluster_.engine().schedule_after(init, [this] { register_with_rm(); });
}

void SparkDriver::register_with_rm() {
  // REGISTER (Table I message 10): fires ACCEPTED -> RUNNING at the RM.
  logger_.info(cluster_.engine().now(), std::string(kAmClass),
               std::string(kDriverRegisterLine.format));
  rm_.register_attempt(app_, this);
  // Allocator thread spins up shortly after registration...
  cluster_.engine().schedule_after(cost_.register_to_alloc(rng_),
                                   [this] { request_executors(); });
  // ...while the driver's main thread runs the *user* program's
  // initialization concurrently (paper Fig. 10).
  begin_user_init();
}

void SparkDriver::request_executors() {
  containers_requested_ = static_cast<std::int32_t>(std::ceil(
      static_cast<double>(config_.num_executors) * config_.over_request_factor));
  // START_ALLO (Table I message 11) — one of the two log lines the paper
  // added to Spark to expose the aggregated allocation delay.
  logger_.info(cluster_.engine().now(), std::string(kAllocatorClass),
               render_template(kDriverStartAllo.format,
                               {{"count", std::to_string(containers_requested_)},
                                {"resource", config_.executor_resource.str()}}));
  yarn::ContainerAsk ask{config_.executor_resource, containers_requested_,
                         yarn::InstanceType::kSparkExecutor,
                         /*preferred_nodes=*/{}};
  // Locality preferences from the input dataset's block placement
  // (registering is idempotent; apps over the same dataset share it).
  if (config_.input_mb > 0) {
    const std::string file =
        config_.input_file.empty()
            ? "dataset-" + std::to_string(
                               static_cast<long long>(config_.input_mb))
            : config_.input_file;
    auto& blocks = cluster_.blocks();
    blocks.register_file(file, cluster_.hdfs().block_count(config_.input_mb));
    ask.preferred_nodes = blocks.nodes_with_replicas(file);
  }
  rm_.request_containers(app_, std::move(ask));
}

void SparkDriver::begin_user_init() {
  const SimDuration init = cost_.user_init(
      config_.files_opened, config_.parallel_init, cluster_.interference(), rng_);
  cluster_.engine().schedule_after(init, [this] {
    if (finished_) return;
    user_init_done_ = true;
    logger_.info(cluster_.engine().now(), std::string(kContextClass),
                 render_template(
                     kDriverUserInit.format,
                     {{"files", std::to_string(config_.files_opened)},
                      {"parallel", config_.parallel_init ? "true" : "false"}}));
    maybe_schedule_tasks();
  });
}

void SparkDriver::on_containers_acquired(
    const std::vector<yarn::Allocation>& acquired) {
  if (finished_) return;
  for (const yarn::Allocation& allocation : acquired) {
    ++containers_acquired_;
    logger_.info(cluster_.engine().now(), std::string(kAllocatorClass),
                 render_template(kDriverReceivedContainer.format,
                                 {{"container", allocation.id.str()},
                                  {"host", allocation.node.hostname()}}));
    if (executors_launched_ < config_.num_executors) {
      launch_executor(allocation);
    }
    // Surplus containers (over_request_factor > 1) are silently ignored —
    // they stay ACQUIRED at the RM with no NM/executor activity, which is
    // precisely the log signature SDchecker's anomaly detector keys on
    // (SPARK-21562).
  }
  if (!end_allo_logged_ && containers_acquired_ >= containers_requested_) {
    end_allo_logged_ = true;
    // END_ALLO (Table I message 12).
    logger_.info(
        cluster_.engine().now(), std::string(kAllocatorClass),
        render_template(kDriverEndAllo.format,
                        {{"count", std::to_string(containers_requested_)}}));
  }
}

void SparkDriver::launch_executor(const yarn::Allocation& allocation) {
  const std::int32_t executor_id = ++executors_launched_;
  logger_.info(cluster_.engine().now(), std::string(kAllocatorClass),
               render_template(kDriverLaunchExecutor.format,
                               {{"container", allocation.id.str()},
                                {"host", allocation.node.hostname()},
                                {"executor_id", std::to_string(executor_id)}}));
  launched_.push_back(allocation);
  yarn::LaunchSpec spec;
  spec.id = allocation.id;
  spec.resource = allocation.resource;
  spec.type = yarn::InstanceType::kSparkExecutor;
  spec.localization_mb = 500.0 + config_.extra_localized_mb;
  // Same Spark + app jars for every executor of apps with the same extra
  // payload — the localization-cache key.
  spec.package_key =
      "spark-pkg-" + std::to_string(static_cast<long long>(
                         500.0 + config_.extra_localized_mb));
  spec.docker = config_.docker;
  spec.warm_jvm = config_.jvm_reuse;
  spec.opportunistic = allocation.opportunistic;
  spec.failure_probability = config_.executor_failure_prob;
  spec.on_process_started = [this, allocation](SimTime at) {
    on_executor_started(allocation, at);
  };
  spec.on_launch_failed = [this, allocation](SimTime at) {
    on_executor_failed(allocation, at);
  };
  yarn::NodeManager& nm = rm_.node_manager(allocation.node);
  cluster_.engine().schedule_after(
      rm_.sample_rpc(), [&nm, spec = std::move(spec)] {
        nm.start_container(spec);
      });
}

void SparkDriver::on_executor_started(const yarn::Allocation& allocation,
                                      SimTime at) {
  if (finished_) return;
  executors_.push_back(std::make_unique<SparkExecutor>(
      cluster_, logs_, *this, allocation.id, allocation.node,
      static_cast<std::int32_t>(executors_.size()) + 1, at,
      rng_.fork(static_cast<std::uint64_t>(allocation.id.id))));
}

void SparkDriver::on_executor_failed(const yarn::Allocation& allocation,
                                     SimTime at) {
  (void)at;
  if (finished_) return;
  ++executors_failed_;
  record_.executors_failed = executors_failed_;
  logger_.warn(cluster_.engine().now(), std::string(kAllocatorClass),
               render_template(kDriverExecutorFailed.format,
                               {{"container", allocation.id.str()}}));
  // The failed container never produced an executor; make room for the
  // replacement in the launch budget and ask YARN for one more.
  --executors_launched_;
  for (auto it = launched_.begin(); it != launched_.end(); ++it) {
    if (it->id == allocation.id) {
      launched_.erase(it);
      break;
    }
  }
  rm_.request_containers(
      app_, yarn::ContainerAsk{config_.executor_resource, 1,
                               yarn::InstanceType::kSparkExecutor,
                               /*preferred_nodes=*/{}});
}

SimDuration SparkDriver::registration_delay(Rng& rng) const {
  SimDuration delay = cost_.executor_registration(cluster_.interference(), rng);
  if (config_.jvm_reuse) {
    delay = static_cast<SimDuration>(static_cast<double>(delay) *
                                     cost_.config().warm_init_factor);
  }
  return delay;
}

void SparkDriver::on_executor_registered(SparkExecutor& executor) {
  if (finished_) return;
  static obs::Counter& registered =
      obs::catalog_counter(obs::metric::kSimSparkExecutorsRegistered);
  registered.add(1);
  ++executors_registered_;
  logger_.info(
      cluster_.engine().now(), std::string(kSchedulerBackendClass),
      render_template(
          kDriverExecutorRegistered.format,
          {{"executor_id", std::to_string(executor.executor_id())},
           {"container", executor.container().str()}}));
  maybe_schedule_tasks();
}

void SparkDriver::maybe_schedule_tasks() {
  if (tasks_scheduled_ || finished_ || !user_init_done_) return;
  const auto needed = static_cast<std::int32_t>(
      std::ceil(config_.min_registered_ratio *
                static_cast<double>(config_.num_executors)));
  const std::int32_t gate = std::clamp(needed, 1, config_.num_executors);
  if (executors_registered_ < gate) return;
  tasks_scheduled_ = true;
  const SimDuration dispatch = cost_.task_dispatch(
      executors_registered_, cluster_.interference(), rng_);
  cluster_.engine().schedule_after(dispatch, [this] {
    if (finished_) return;
    dispatch_first_tasks();
  });
}

void SparkDriver::dispatch_first_tasks() {
  next_tid_ = dispatch_stage_tasks(0, next_tid_);
  start_execution();
}

std::int64_t SparkDriver::dispatch_stage_tasks(std::int32_t stage,
                                               std::int64_t first_tid) {
  std::int64_t tid = first_tid;
  for (const auto& executor : executors_) {
    if (!executor->registered()) continue;
    logger_.info(
        cluster_.engine().now(), std::string(kTaskSetClass),
        render_template(
            kDriverTaskStart.format,
            {{"index", std::to_string(tid - first_tid)},
             {"stage", std::to_string(stage)},
             {"tid", std::to_string(tid)},
             {"host", executor->node().hostname()},
             {"executor_id", std::to_string(executor->executor_id())}}));
    SparkExecutor* target = executor.get();
    const std::int64_t this_tid = tid;
    cluster_.engine().schedule_after(
        rm_.sample_rpc(), [this, target, this_tid] {
          if (finished_) return;
          if (first_task_time_ == kNoTime) {
            first_task_time_ = cluster_.engine().now();
            record_.first_task_at = first_task_time_;
          }
          target->assign_task(this_tid);
        });
    ++tid;
  }
  return tid;
}

void SparkDriver::start_execution() {
  auto& interference = cluster_.interference();
  const double exec_mult = interference.execution_multiplier();
  const SimDuration busy = static_cast<SimDuration>(
      static_cast<double>(rng_.lognormal_duration(config_.execution_median,
                                                  config_.execution_sigma)) *
      exec_mult);
  // Input scan phase: this application's own HDFS reads add cluster I/O
  // load (the Fig. 5 self-interference mechanism).
  if (config_.scan_io_units > 0 || config_.scan_transfer_units > 0) {
    const SimDuration scan = std::min(busy, config_.scan_duration);
    interference.add_scan_units(config_.scan_io_units,
                                config_.scan_transfer_units);
    const double control = config_.scan_io_units;
    const double transfer = config_.scan_transfer_units;
    cluster_.engine().schedule_after(scan, [this, control, transfer] {
      cluster_.interference().remove_scan_units(control, transfer);
    });
  }
  if (config_.cpu_units_while_running > 0) {
    interference.add_cpu_units(config_.cpu_units_while_running);
  }
  // Later stages dispatch mid-execution; these task assignments overlap
  // task runtime and must not affect the scheduling-delay decomposition
  // (SDchecker keys on the first occurrence per container).
  for (std::int32_t stage = 1; stage < config_.num_stages; ++stage) {
    const SimDuration at =
        busy * stage / std::max<std::int32_t>(1, config_.num_stages);
    cluster_.engine().schedule_after(at, [this, stage] {
      if (finished_) return;
      next_tid_ = dispatch_stage_tasks(stage, next_tid_);
    });
  }
  cluster_.engine().schedule_after(busy, [this] { finish_job(); });
}

void SparkDriver::finish_job() {
  if (finished_) return;
  finished_ = true;
  if (config_.cpu_units_while_running > 0) {
    cluster_.interference().remove_cpu_units(config_.cpu_units_while_running);
  }
  logger_.info(cluster_.engine().now(), std::string(kAmClass),
               std::string(kDriverFinalStatus.format));
  // Tear down executors' containers, then unregister, then the AM's own
  // container exits.
  for (const yarn::Allocation& allocation : launched_) {
    rm_.node_manager(allocation.node).finish_container(allocation.id);
  }
  rm_.unregister_attempt(app_);
  record_.executors_launched = executors_launched_;
  record_.finished_at = cluster_.engine().now();
  const ContainerId am = am_container_;
  const NodeId node = node_;
  auto& rm = rm_;
  cluster_.engine().schedule_after(millis(30), [&rm, am, node] {
    rm.node_manager(node).finish_container(am);
  });
  if (config_.on_complete) config_.on_complete(record_);
}

}  // namespace sdc::spark
