// The simulated Spark driver (YARN AppMaster, paper Fig. 1).
//
// Lifecycle, with the Table-I log messages it emits:
//   boot (FIRST_LOG, msg 9) -> driver init -> REGISTER with RM (msg 10,
//   fires RMAppImpl ACCEPTED->RUNNING) -> START_ALLO (msg 11) -> batched
//   container requests -> launches executors as containers are acquired
//   -> END_ALLO when every requested container arrived (msg 12).
// Concurrently the *user* program initializes (RDDs + broadcast variables,
// one per opened file); tasks are not scheduled until user init is done
// AND >= 80% of executors registered (paper §IV-B) — the executor-delay
// anatomy of Fig. 10.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "logging/logger.hpp"
#include "spark/app_config.hpp"
#include "spark/cost_model.hpp"
#include "spark/executor.hpp"
#include "yarn/resource_manager.hpp"

namespace sdc::spark {

class SparkDriver final : public yarn::AmProtocol {
 public:
  /// Created by the submission's on_am_started callback at the driver
  /// process's boot instant; logs FIRST_LOG immediately.
  SparkDriver(cluster::Cluster& cluster, yarn::ResourceManager& rm,
              logging::LogBundle& logs, SparkAppConfig config,
              ApplicationId app, ContainerId am_container, NodeId node,
              SimTime first_log_time, Rng rng,
              const SparkCostModel* cost_model = nullptr);

  SparkDriver(const SparkDriver&) = delete;
  SparkDriver& operator=(const SparkDriver&) = delete;

  // yarn::AmProtocol
  void on_containers_acquired(
      const std::vector<yarn::Allocation>& acquired) override;

  /// Executor-facing: backend registered with the scheduler.
  void on_executor_registered(SparkExecutor& executor);

  /// Executor-facing: samples the registration delay from the shared cost
  /// model (keeps all in-application calibration points in one place).
  [[nodiscard]] SimDuration registration_delay(Rng& rng) const;

  [[nodiscard]] const ApplicationId& app() const noexcept { return app_; }
  [[nodiscard]] const SparkAppConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::int32_t executors_launched() const noexcept {
    return executors_launched_;
  }
  [[nodiscard]] std::int32_t executors_registered() const noexcept {
    return executors_registered_;
  }
  [[nodiscard]] std::int32_t containers_requested() const noexcept {
    return containers_requested_;
  }

 private:
  void register_with_rm();
  void request_executors();
  void begin_user_init();
  void launch_executor(const yarn::Allocation& allocation);
  void on_executor_started(const yarn::Allocation& allocation, SimTime at);
  void on_executor_failed(const yarn::Allocation& allocation, SimTime at);
  void maybe_schedule_tasks();
  void dispatch_first_tasks();
  /// Assigns one task per registered executor for `stage`; returns the
  /// next free task id.
  std::int64_t dispatch_stage_tasks(std::int32_t stage, std::int64_t first_tid);
  void start_execution();
  void finish_job();

  cluster::Cluster& cluster_;
  yarn::ResourceManager& rm_;
  logging::LogBundle& logs_;
  SparkAppConfig config_;
  SparkCostModel default_cost_model_;
  const SparkCostModel& cost_;
  ApplicationId app_;
  ContainerId am_container_;
  NodeId node_;
  logging::Logger logger_;
  Rng rng_;

  std::vector<std::unique_ptr<SparkExecutor>> executors_;
  std::vector<yarn::Allocation> launched_;
  std::int32_t containers_requested_ = 0;
  std::int32_t containers_acquired_ = 0;
  std::int32_t executors_launched_ = 0;
  std::int32_t executors_registered_ = 0;
  std::int32_t executors_failed_ = 0;
  bool end_allo_logged_ = false;
  bool user_init_done_ = false;
  bool tasks_scheduled_ = false;
  bool finished_ = false;
  SimTime first_task_time_ = kNoTime;
  std::int64_t next_tid_ = 0;
  JobRecord record_;
};

}  // namespace sdc::spark
