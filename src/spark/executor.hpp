// A simulated Spark executor backend: boots inside a YARN container, logs
// its first line (Table I message 13), registers with the driver, idles
// until the first task arrives (message 14), then runs its task slice.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "logging/logger.hpp"

namespace sdc::spark {

class SparkDriver;

class SparkExecutor {
 public:
  /// Created by the driver at the instant the executor process boots
  /// (`first_log_time`); writes the FIRST_LOG lines immediately and starts
  /// the registration timer.
  SparkExecutor(cluster::Cluster& cluster, logging::LogBundle& logs,
                SparkDriver& driver, ContainerId container, NodeId node,
                std::int32_t executor_id, SimTime first_log_time, Rng rng);

  SparkExecutor(const SparkExecutor&) = delete;
  SparkExecutor& operator=(const SparkExecutor&) = delete;

  /// Driver-facing: a task arrived (already RPC-delayed by the driver).
  /// Logs "Got assigned task <tid>" — the end of the total scheduling
  /// delay when this is the application's first task.
  void assign_task(std::int64_t tid);

  [[nodiscard]] const ContainerId& container() const noexcept {
    return container_;
  }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::int32_t executor_id() const noexcept {
    return executor_id_;
  }
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] SimTime first_log_time() const noexcept {
    return first_log_time_;
  }

 private:
  cluster::Cluster& cluster_;
  SparkDriver& driver_;
  ContainerId container_;
  NodeId node_;
  std::int32_t executor_id_;
  SimTime first_log_time_;
  logging::Logger logger_;
  Rng rng_;
  bool registered_ = false;
};

}  // namespace sdc::spark
