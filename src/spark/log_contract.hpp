// Log lines the simulated Spark driver and executors emit, declared as
// introspectable `constexpr` templates (see common/log_contract.hpp).
// The Table-I milestones the paper keys on — REGISTER (10), START_ALLO
// (11), END_ALLO (12), FIRST_TASK (14), and the FIRST_LOG banners that
// anchor messages 9/13 — live here; sdlint renders each template with
// canonical placeholder values and verifies the miner's extractor
// produces exactly the declared event (or stays silent).
#pragma once

#include <span>

#include "common/log_contract.hpp"

namespace sdc::spark {

inline constexpr std::string_view kAmClass =
    "org.apache.spark.deploy.yarn.ApplicationMaster";
inline constexpr std::string_view kAllocatorClass =
    "org.apache.spark.deploy.yarn.YarnAllocator";
inline constexpr std::string_view kContextClass = "org.apache.spark.SparkContext";
inline constexpr std::string_view kTaskSetClass =
    "org.apache.spark.scheduler.TaskSetManager";
inline constexpr std::string_view kSchedulerBackendClass =
    "org.apache.spark.scheduler.cluster.YarnSchedulerBackend";
inline constexpr std::string_view kExecutorBackendClass =
    "org.apache.spark.executor.CoarseGrainedExecutorBackend";
inline constexpr std::string_view kExecutorClass =
    "org.apache.spark.executor.Executor";

// --- driver stream, in emission order ---------------------------------------

/// FIRST_LOG (Table I message 9) is synthesized by the miner from the
/// stream's first parseable line — this banner anchors it.
inline constexpr contract::MilestoneSpec kDriverSignalBanner{
    "spark.driver.signal_banner", kAmClass,
    "Registered signal handlers for [TERM, HUP, INT]", "",
    contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverAttemptId{
    "spark.driver.attempt_id", kAmClass, "ApplicationAttemptId: {attempt}", "",
    contract::StreamRole::kSparkDriver};
/// REGISTER (Table I message 10).
inline constexpr contract::MilestoneSpec kDriverRegisterLine{
    "spark.driver.register", kAmClass,
    "Registering the ApplicationMaster with the ResourceManager",
    "DRV_REGISTER", contract::StreamRole::kSparkDriver};
/// START_ALLO (Table I message 11) — one of the two lines the paper added
/// to Spark to expose the aggregated allocation delay.
inline constexpr contract::MilestoneSpec kDriverStartAllo{
    "spark.driver.start_allo", kAllocatorClass,
    "SDC START_ALLO requesting {count} executor containers, each {resource}",
    "START_ALLO", contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverReceivedContainer{
    "spark.driver.received_container", kAllocatorClass,
    "Received container {container} on host {host}", "",
    contract::StreamRole::kSparkDriver};
/// END_ALLO (Table I message 12).
inline constexpr contract::MilestoneSpec kDriverEndAllo{
    "spark.driver.end_allo", kAllocatorClass,
    "SDC END_ALLO all {count} requested containers allocated", "END_ALLO",
    contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverLaunchExecutor{
    "spark.driver.launch_executor", kAllocatorClass,
    "Launching container {container} on host {host} for executor with ID "
    "{executor_id}",
    "", contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverExecutorFailed{
    "spark.driver.executor_failed", kAllocatorClass,
    "Container {container} exited with failure before registering, requesting "
    "a replacement executor",
    "", contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverUserInit{
    "spark.driver.user_init", kContextClass,
    "User application initialized ({files} input datasets, "
    "parallelInit={parallel})",
    "", contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverExecutorRegistered{
    "spark.driver.executor_registered", kSchedulerBackendClass,
    "Registered executor {executor_id} with container {container}", "",
    contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverTaskStart{
    "spark.driver.task_start", kTaskSetClass,
    "Starting task {index}.0 in stage {stage}.0 (TID {tid}, {host}, executor "
    "{executor_id})",
    "", contract::StreamRole::kSparkDriver};
inline constexpr contract::MilestoneSpec kDriverFinalStatus{
    "spark.driver.final_status", kAmClass,
    "Final app status: SUCCEEDED, exitCode: 0", "",
    contract::StreamRole::kSparkDriver};

// --- executor stream, in emission order -------------------------------------

/// FIRST_LOG (Table I message 13) anchor; the container id on the next
/// line binds the stream.
inline constexpr contract::MilestoneSpec kExecutorDaemonBanner{
    "spark.executor.daemon_banner", kExecutorBackendClass,
    "Started daemon with process name: {pid}@{host}", "",
    contract::StreamRole::kSparkExecutor};
inline constexpr contract::MilestoneSpec kExecutorConnect{
    "spark.executor.connect", kExecutorBackendClass,
    "Connecting to driver for container {container}", "",
    contract::StreamRole::kSparkExecutor};
inline constexpr contract::MilestoneSpec kExecutorRegistered{
    "spark.executor.registered", kExecutorBackendClass,
    "Successfully registered with driver", "",
    contract::StreamRole::kSparkExecutor};
/// FIRST_TASK (Table I message 14) when {tid} is this app's first task.
inline constexpr contract::MilestoneSpec kExecutorGotTask{
    "spark.executor.first_task", kExecutorBackendClass,
    "Got assigned task {tid}", "FIRST_TASK",
    contract::StreamRole::kSparkExecutor};
inline constexpr contract::MilestoneSpec kExecutorRunningTask{
    "spark.executor.running_task", kExecutorClass,
    "Running task 0.0 in stage 0.0 (TID {tid})", "",
    contract::StreamRole::kSparkExecutor};

inline constexpr contract::MilestoneSpec kSparkMilestones[] = {
    kDriverSignalBanner,     kDriverAttemptId,
    kDriverRegisterLine,     kDriverStartAllo,
    kDriverReceivedContainer, kDriverEndAllo,
    kDriverLaunchExecutor,   kDriverExecutorFailed,
    kDriverUserInit,         kDriverExecutorRegistered,
    kDriverTaskStart,        kDriverFinalStatus,
    kExecutorDaemonBanner,   kExecutorConnect,
    kExecutorRegistered,     kExecutorGotTask,
    kExecutorRunningTask,
};

/// The Spark layer's declared log lines, for sdlint.
inline std::span<const contract::MilestoneSpec> spark_milestones() {
  return kSparkMilestones;
}

}  // namespace sdc::spark
