// Spark-side latency cost models (the in-application delay of §IV-D).
//
// Calibration targets, from the paper's idle-cluster runs:
//   driver delay (FIRST_LOG -> REGISTER)   ~3 s median, both workloads
//   executor delay, wordcount               p95 ~6.0 s
//   executor delay, Spark-SQL               p95 ~9.5 s (8 broadcast inits
//                                           on the critical path)
//   parallel-init optimization              ~2 s tail reduction
// Every CPU-bound phase stretches under CPU interference (JVM warm-up,
// JIT) and mildly under I/O interference (classloading, heartbeats) —
// which is exactly why in-application delay shows the largest variance
// (§IV-B, §IV-E).
#pragma once

#include <cstdint>

#include "cluster/interference.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sdc::spark {

struct SparkCostConfig {
  /// Driver (SparkContext + YarnAM) initialization after JVM boot.
  SimDuration driver_init_median = millis(2500);
  double driver_init_sigma = 0.22;
  /// REGISTER -> START_ALLO gap (allocator thread spin-up).
  SimDuration register_to_alloc_median = millis(60);
  /// One RDD-from-file + broadcast-variable creation (user init).
  SimDuration per_file_init_median = millis(700);
  double per_file_init_sigma = 0.38;
  /// Thread-pool width of the Futures-based parallel init.
  std::int32_t parallel_init_width = 8;
  /// Fixed overhead of the parallel-init path (pool startup, joins).
  SimDuration parallel_init_overhead = millis(220);
  /// Executor backend registration with the driver after JVM boot.
  SimDuration executor_register_median = millis(380);
  double executor_register_sigma = 0.45;
  /// DAG construction, closure serialization, first-stage submission —
  /// fixed part plus a per-registered-executor serialization cost (task
  /// binaries broadcast executor by executor), which is what makes the
  /// total delay grow with executor count (Fig. 6-a).
  SimDuration task_dispatch_median = millis(650);
  double task_dispatch_sigma = 0.50;
  SimDuration per_executor_dispatch_median = millis(250);

  /// Exponents coupling each phase to the interference multipliers
  /// (1.0 = full effect, 0.0 = immune).  User init opens HDFS files and
  /// writes broadcast blocks, and the driver's JVM warm-up loads classes
  /// from disk — both genuinely disk-bound under dfsIO saturation
  /// (paper §IV-E's own attribution).
  double driver_init_io_exp = 0.90;
  double user_init_io_exp = 1.00;
  double user_init_cpu_exp = 0.85;
  double executor_register_io_exp = 1.0;
  double task_dispatch_io_exp = 0.50;

  /// Fraction of in-application initialization that remains under JVM
  /// reuse (§V-B): the JVM warm-up share of driver/executor init is gone,
  /// the user-code and protocol shares remain.
  double warm_init_factor = 0.45;
};

class SparkCostModel {
 public:
  explicit SparkCostModel(SparkCostConfig config = {}) : config_(config) {}

  [[nodiscard]] const SparkCostConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] SimDuration driver_init(
      const cluster::InterferenceModel& interference, Rng& rng) const;

  [[nodiscard]] SimDuration register_to_alloc(Rng& rng) const;

  /// Total user-initialization time for `files_opened` RDD/broadcast
  /// creations, serial or Futures-parallel.
  [[nodiscard]] SimDuration user_init(
      std::int32_t files_opened, bool parallel,
      const cluster::InterferenceModel& interference, Rng& rng) const;

  [[nodiscard]] SimDuration executor_registration(
      const cluster::InterferenceModel& interference, Rng& rng) const;

  /// Dispatch cost for the first task wave across `registered_executors`.
  [[nodiscard]] SimDuration task_dispatch(
      std::int32_t registered_executors,
      const cluster::InterferenceModel& interference, Rng& rng) const;

 private:
  SparkCostConfig config_;
};

}  // namespace sdc::spark
