#include "spark/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sdc::spark {
namespace {

/// interference_multiplier^exponent, the standard coupling shape.
double coupled(double multiplier, double exponent) {
  return std::pow(multiplier, exponent);
}

SimDuration stretch(SimDuration d, double factor) {
  return static_cast<SimDuration>(static_cast<double>(d) * factor);
}

}  // namespace

SimDuration SparkCostModel::driver_init(
    const cluster::InterferenceModel& interference, Rng& rng) const {
  const double factor =
      interference.cpu_multiplier() *
      coupled(interference.io_control_multiplier(), config_.driver_init_io_exp);
  return stretch(
      rng.lognormal_duration(config_.driver_init_median, config_.driver_init_sigma),
      factor);
}

SimDuration SparkCostModel::register_to_alloc(Rng& rng) const {
  return rng.lognormal_duration(config_.register_to_alloc_median, 0.4);
}

SimDuration SparkCostModel::user_init(
    std::int32_t files_opened, bool parallel,
    const cluster::InterferenceModel& interference, Rng& rng) const {
  if (files_opened <= 0) return 0;
  const double factor =
      coupled(interference.cpu_multiplier(), config_.user_init_cpu_exp) *
      coupled(interference.io_control_multiplier(), config_.user_init_io_exp);
  std::vector<SimDuration> costs;
  costs.reserve(static_cast<std::size_t>(files_opened));
  for (std::int32_t i = 0; i < files_opened; ++i) {
    costs.push_back(stretch(
        rng.lognormal_duration(config_.per_file_init_median,
                               config_.per_file_init_sigma),
        factor));
  }
  if (!parallel) {
    SimDuration total = 0;
    for (SimDuration c : costs) total += c;
    return total;
  }
  // Futures on a width-W pool: greedy longest-processing-time makespan is
  // a good model of the actual thread pool's behaviour.
  const auto width = static_cast<std::size_t>(
      std::max<std::int32_t>(1, config_.parallel_init_width));
  std::vector<SimDuration> lanes(std::min(width, costs.size()), 0);
  std::sort(costs.rbegin(), costs.rend());
  for (SimDuration c : costs) {
    auto shortest = std::min_element(lanes.begin(), lanes.end());
    *shortest += c;
  }
  const SimDuration makespan = *std::max_element(lanes.begin(), lanes.end());
  return makespan + config_.parallel_init_overhead;
}

SimDuration SparkCostModel::executor_registration(
    const cluster::InterferenceModel& interference, Rng& rng) const {
  const double factor = interference.cpu_multiplier() *
                        coupled(interference.io_control_multiplier(),
                                config_.executor_register_io_exp);
  return stretch(rng.lognormal_duration(config_.executor_register_median,
                                        config_.executor_register_sigma),
                 factor);
}

SimDuration SparkCostModel::task_dispatch(
    std::int32_t registered_executors,
    const cluster::InterferenceModel& interference, Rng& rng) const {
  const double factor =
      interference.cpu_multiplier() *
      coupled(interference.io_control_multiplier(), config_.task_dispatch_io_exp);
  SimDuration total = rng.lognormal_duration(config_.task_dispatch_median,
                                             config_.task_dispatch_sigma);
  for (std::int32_t i = 0; i < registered_executors; ++i) {
    total += rng.lognormal_duration(config_.per_executor_dispatch_median, 0.35);
  }
  return stretch(total, factor);
}

}  // namespace sdc::spark
