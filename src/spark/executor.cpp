#include "spark/executor.hpp"

#include "common/log_contract.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "spark/driver.hpp"
#include "spark/log_contract.hpp"

namespace sdc::spark {
namespace {

using contract::render_template;

std::string executor_stream_name(const ContainerId& id) {
  return "executor-" + id.str() + ".log";
}

}  // namespace

SparkExecutor::SparkExecutor(cluster::Cluster& cluster,
                             logging::LogBundle& logs, SparkDriver& driver,
                             ContainerId container, NodeId node,
                             std::int32_t executor_id, SimTime first_log_time,
                             Rng rng)
    : cluster_(cluster),
      driver_(driver),
      container_(container),
      node_(node),
      executor_id_(executor_id),
      first_log_time_(first_log_time),
      logger_(&logs, executor_stream_name(container),
              cluster.config().epoch_base_ms),
      rng_(rng) {
  // FIRST_LOG (Table I message 13): the very first line of the executor's
  // log file; SDchecker binds the stream to the container via the id
  // embedded in the second line.
  logger_.info(first_log_time_, std::string(kExecutorBackendClass),
               render_template(kExecutorDaemonBanner.format,
                               {{"pid", std::to_string(20000 + executor_id_)},
                                {"host", node_.hostname()}}));
  logger_.info(first_log_time_, std::string(kExecutorBackendClass),
               render_template(kExecutorConnect.format,
                               {{"container", container_.str()}}));
  // Registration with the driver after backend setup (RPC env, block
  // manager); the delay model lives in the driver's cost model so the
  // calibration point stays in one place.
  cluster_.engine().schedule_after(driver_.registration_delay(rng_), [this] {
    registered_ = true;
    logger_.info(cluster_.engine().now(), std::string(kExecutorBackendClass),
                 std::string(kExecutorRegistered.format));
    driver_.on_executor_registered(*this);
  });
}

void SparkExecutor::assign_task(std::int64_t tid) {
  static obs::Counter& assigned =
      obs::catalog_counter(obs::metric::kSimSparkTasksAssigned);
  assigned.add(1);
  // FIRST_TASK (Table I message 14) when tid is this app's first task.
  logger_.info(cluster_.engine().now(), std::string(kExecutorBackendClass),
               render_template(kExecutorGotTask.format,
                               {{"tid", std::to_string(tid)}}));
  logger_.info(cluster_.engine().now(), std::string(kExecutorClass),
               render_template(kExecutorRunningTask.format,
                               {{"tid", std::to_string(tid)}}));
}

}  // namespace sdc::spark
