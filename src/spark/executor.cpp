#include "spark/executor.hpp"

#include "spark/driver.hpp"

namespace sdc::spark {
namespace {

constexpr std::string_view kBackendClass =
    "org.apache.spark.executor.CoarseGrainedExecutorBackend";
constexpr std::string_view kExecutorClass = "org.apache.spark.executor.Executor";

std::string executor_stream_name(const ContainerId& id) {
  return "executor-" + id.str() + ".log";
}

}  // namespace

SparkExecutor::SparkExecutor(cluster::Cluster& cluster,
                             logging::LogBundle& logs, SparkDriver& driver,
                             ContainerId container, NodeId node,
                             std::int32_t executor_id, SimTime first_log_time,
                             Rng rng)
    : cluster_(cluster),
      driver_(driver),
      container_(container),
      node_(node),
      executor_id_(executor_id),
      first_log_time_(first_log_time),
      logger_(&logs, executor_stream_name(container),
              cluster.config().epoch_base_ms),
      rng_(rng) {
  // FIRST_LOG (Table I message 13): the very first line of the executor's
  // log file; SDchecker binds the stream to the container via the id
  // embedded in the second line.
  logger_.info(first_log_time_, std::string(kBackendClass),
               "Started daemon with process name: " +
                   std::to_string(20000 + executor_id_) + "@" +
                   node_.hostname());
  logger_.info(first_log_time_, std::string(kBackendClass),
               "Connecting to driver for container " + container_.str());
  // Registration with the driver after backend setup (RPC env, block
  // manager); the delay model lives in the driver's cost model so the
  // calibration point stays in one place.
  cluster_.engine().schedule_after(driver_.registration_delay(rng_), [this] {
    registered_ = true;
    logger_.info(cluster_.engine().now(), std::string(kBackendClass),
                 "Successfully registered with driver");
    driver_.on_executor_registered(*this);
  });
}

void SparkExecutor::assign_task(std::int64_t tid) {
  // FIRST_TASK (Table I message 14) when tid is this app's first task.
  logger_.info(cluster_.engine().now(), std::string(kBackendClass),
               "Got assigned task " + std::to_string(tid));
  logger_.info(cluster_.engine().now(), std::string(kExecutorClass),
               "Running task 0.0 in stage 0.0 (TID " + std::to_string(tid) +
                   ")");
}

}  // namespace sdc::spark
