#include "logging/record.hpp"

#include "logging/timestamp.hpp"

namespace sdc::logging {

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
  }
  return "INFO ";
}

std::string LogRecord::render() const {
  std::string out = format_epoch_ms(epoch_ms);
  out += ' ';
  out += level_name(level);
  out += ' ';
  out += logger;
  out += ": ";
  out += message;
  return out;
}

}  // namespace sdc::logging
