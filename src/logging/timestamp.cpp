#include "logging/timestamp.hpp"

#include <cstdio>

namespace sdc::logging {
namespace {

/// Days from civil date (Howard Hinnant's algorithm), valid for all dates
/// in the proleptic Gregorian calendar.
constexpr std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
constexpr void civil_from_days(std::int64_t z, std::int64_t& y, unsigned& m,
                               unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y += m <= 2;
}

bool two_digits(std::string_view s, std::size_t pos, int& out) {
  const char a = s[pos];
  const char b = s[pos + 1];
  if (a < '0' || a > '9' || b < '0' || b > '9') return false;
  out = (a - '0') * 10 + (b - '0');
  return true;
}

}  // namespace

bool valid_civil_date(std::int64_t year, unsigned month, unsigned day) {
  if (month < 1 || month > 12 || day < 1) return false;
  static constexpr unsigned kDays[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  unsigned limit = kDays[month - 1];
  if (month == 2) {
    const bool leap =
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    if (leap) limit = 29;
  }
  return day <= limit;
}

std::int64_t epoch_ms_from_civil(std::int64_t year, unsigned month,
                                 unsigned day, int hour, int minute,
                                 int second, int millis) {
  const std::int64_t days = days_from_civil(year, month, day);
  const std::int64_t millis_of_day =
      ((hour * 60LL + minute) * 60 + second) * 1000 + millis;
  return days * 86'400'000 + millis_of_day;
}

std::string format_epoch_ms(std::int64_t epoch_ms) {
  std::int64_t days = epoch_ms / 86'400'000;
  std::int64_t rem = epoch_ms % 86'400'000;
  if (rem < 0) {
    rem += 86'400'000;
    --days;
  }
  std::int64_t y;
  unsigned m, d;
  civil_from_days(days, y, m, d);
  const int hh = static_cast<int>(rem / 3'600'000);
  const int mm = static_cast<int>(rem / 60'000 % 60);
  const int ss = static_cast<int>(rem / 1000 % 60);
  const int ms = static_cast<int>(rem % 1000);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02d:%02d:%02d,%03d",
                static_cast<long long>(y), m, d, hh, mm, ss, ms);
  return buf;
}

std::optional<std::int64_t> parse_epoch_ms(std::string_view text) {
  if (text.size() < kTimestampWidth) return std::nullopt;
  // Layout: 0123456789...
  //         YYYY-MM-DD HH:MM:SS,mmm
  if (text[4] != '-' || text[7] != '-' || text[10] != ' ' || text[13] != ':' ||
      text[16] != ':' || text[19] != ',') {
    return std::nullopt;
  }
  int c1, c2, mo, dd, hh, mi, ss, ms_hi, ms_lo1;
  if (!two_digits(text, 0, c1) || !two_digits(text, 2, c2) ||
      !two_digits(text, 5, mo) || !two_digits(text, 8, dd) ||
      !two_digits(text, 11, hh) || !two_digits(text, 14, mi) ||
      !two_digits(text, 17, ss) || !two_digits(text, 20, ms_hi)) {
    return std::nullopt;
  }
  const char last = text[22];
  if (last < '0' || last > '9') return std::nullopt;
  ms_lo1 = last - '0';
  const std::int64_t year = c1 * 100 + c2;
  if (hh > 23 || mi > 59 || ss > 59) return std::nullopt;
  // days_from_civil normalizes impossible dates (Feb 31 -> Mar 3), which
  // would turn a corrupt stamp into a wrong-but-plausible epoch; reject
  // them instead.
  if (!valid_civil_date(year, static_cast<unsigned>(mo),
                        static_cast<unsigned>(dd))) {
    return std::nullopt;
  }
  return epoch_ms_from_civil(year, static_cast<unsigned>(mo),
                             static_cast<unsigned>(dd), hh, mi, ss,
                             ms_hi * 10 + ms_lo1);
}

}  // namespace sdc::logging
