#include "logging/timestamp.hpp"

#include <cstdint>
#include <cstdio>

namespace sdc::logging {
namespace {

/// Days from civil date (Howard Hinnant's algorithm), valid for all dates
/// in the proleptic Gregorian calendar.
constexpr std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
constexpr void civil_from_days(std::int64_t z, std::int64_t& y, unsigned& m,
                               unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y += m <= 2;
}

}  // namespace

bool valid_civil_date(std::int64_t year, unsigned month, unsigned day) {
  if (month < 1 || month > 12 || day < 1) return false;
  static constexpr unsigned kDays[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  unsigned limit = kDays[month - 1];
  if (month == 2) {
    const bool leap =
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    if (leap) limit = 29;
  }
  return day <= limit;
}

std::int64_t epoch_ms_from_civil(std::int64_t year, unsigned month,
                                 unsigned day, int hour, int minute,
                                 int second, int millis) {
  const std::int64_t days = days_from_civil(year, month, day);
  const std::int64_t millis_of_day =
      ((hour * 60LL + minute) * 60 + second) * 1000 + millis;
  return days * 86'400'000 + millis_of_day;
}

std::string format_epoch_ms(std::int64_t epoch_ms) {
  std::int64_t days = epoch_ms / 86'400'000;
  std::int64_t rem = epoch_ms % 86'400'000;
  if (rem < 0) {
    rem += 86'400'000;
    --days;
  }
  std::int64_t y;
  unsigned m, d;
  civil_from_days(days, y, m, d);
  const int hh = static_cast<int>(rem / 3'600'000);
  const int mm = static_cast<int>(rem / 60'000 % 60);
  const int ss = static_cast<int>(rem / 1000 % 60);
  const int ms = static_cast<int>(rem % 1000);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02d:%02d:%02d,%03d",
                static_cast<long long>(y), m, d, hh, mm, ss, ms);
  return buf;
}

std::optional<std::int64_t> parse_epoch_ms(std::string_view text) {
  if (text.size() < kTimestampWidth) return std::nullopt;
  // Layout: 0123456789...
  //         YYYY-MM-DD HH:MM:SS,mmm
  //
  // Every position is validated through an accumulated flag and a single
  // exit branch so the common case — a well-formed stamp, i.e. nearly
  // every line the miner sees — runs straight-line with no data-dependent
  // branches.  Non-digit bytes wrap to large values under the unsigned
  // subtract, so the fields they poison are only ever compared, never
  // used: `bad` forces the nullopt exit first.
  const char* p = text.data();
  std::uint32_t bad = 0;
  const auto digit = [p, &bad](std::size_t i) -> std::uint32_t {
    const std::uint32_t d =
        static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) - '0';
    bad |= d > 9u;
    return d;
  };
  bad |= p[4] != '-';
  bad |= p[7] != '-';
  bad |= p[10] != ' ';
  bad |= p[13] != ':';
  bad |= p[16] != ':';
  bad |= p[19] != ',';
  const std::uint32_t year =
      digit(0) * 1000 + digit(1) * 100 + digit(2) * 10 + digit(3);
  const std::uint32_t mo = digit(5) * 10 + digit(6);
  const std::uint32_t dd = digit(8) * 10 + digit(9);
  const std::uint32_t hh = digit(11) * 10 + digit(12);
  const std::uint32_t mi = digit(14) * 10 + digit(15);
  const std::uint32_t ss = digit(17) * 10 + digit(18);
  const std::uint32_t ms = digit(20) * 100 + digit(21) * 10 + digit(22);
  bad |= hh > 23u;
  bad |= mi > 59u;
  bad |= ss > 59u;
  if (bad != 0) return std::nullopt;
  // days_from_civil normalizes impossible dates (Feb 31 -> Mar 3), which
  // would turn a corrupt stamp into a wrong-but-plausible epoch; reject
  // them instead.
  if (!valid_civil_date(year, mo, dd)) return std::nullopt;
  return epoch_ms_from_civil(year, mo, dd, static_cast<int>(hh),
                             static_cast<int>(mi), static_cast<int>(ss),
                             static_cast<int>(ms));
}

}  // namespace sdc::logging
