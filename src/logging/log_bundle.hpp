// A bundle of named log streams — one per daemon, exactly as a real
// deployment leaves one file per RM / NodeManager / Spark driver /
// Spark executor.  The simulator appends *rendered text lines* (never
// structured records), so everything downstream must genuinely parse, and
// a bundle can round-trip through a directory of plain log files.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "logging/diagnostics.hpp"

namespace sdc::logging {

/// Ordered collection of named log streams.  Stream names double as file
/// names when written to a directory (e.g. "rm.log", "nm-node03.log").
class LogBundle {
 public:
  LogBundle() = default;

  /// Appends one rendered line to the named stream, creating it if new.
  void append(const std::string& stream, std::string line);

  /// Lines of one stream; empty vector if the stream does not exist.
  [[nodiscard]] const std::vector<std::string>& lines(
      const std::string& stream) const;

  /// All stream names in lexicographic order.
  [[nodiscard]] std::vector<std::string> stream_names() const;

  [[nodiscard]] bool has_stream(const std::string& stream) const;
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }
  /// Total line count across every stream.
  [[nodiscard]] std::size_t total_lines() const;

  /// Writes each stream as `<dir>/<name>`; creates `dir` if missing.
  /// Throws std::runtime_error on I/O failure.
  void write_to_directory(const std::filesystem::path& dir) const;

  /// Reads every regular file in `dir` (non-recursive) as one stream per
  /// file.  Throws std::runtime_error if `dir` is not a directory.  With
  /// `diagnostics`, an unreadable file is recorded as a kUnreadableFile
  /// diagnostic and skipped; without it, the first unreadable file throws
  /// (the historical strict behaviour).
  static LogBundle read_from_directory(const std::filesystem::path& dir,
                                       std::vector<Diagnostic>* diagnostics =
                                           nullptr);

  /// Merges another bundle's streams into this one (appending on name
  /// collisions); used when mining several runs together.
  void merge(const LogBundle& other);

 private:
  std::map<std::string, std::vector<std::string>> streams_;
};

}  // namespace sdc::logging
