// log4j timestamp codec.
//
// Both YARN and Spark log via log4j, whose default pattern renders
// timestamps as `YYYY-MM-DD HH:MM:SS,mmm` with 1 ms precision — the
// precision bound of the whole analysis (paper §III-A).  The conversion
// uses UTC civil time with the days-from-civil algorithm so it is
// locale- and timezone-independent and lock-free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdc::logging {

/// Width of a rendered timestamp: "2017-07-03 17:20:00,123".
inline constexpr std::size_t kTimestampWidth = 23;

/// Renders epoch milliseconds (UTC) in log4j's default pattern.
std::string format_epoch_ms(std::int64_t epoch_ms);

/// Epoch milliseconds for a UTC civil date-time.  Pure arithmetic (no
/// formatting round trip); fields are taken as given — callers validate
/// ranges before converting.
std::int64_t epoch_ms_from_civil(std::int64_t year, unsigned month,
                                 unsigned day, int hour, int minute,
                                 int second, int millis);

/// Parses a log4j timestamp back to epoch milliseconds; nullopt on any
/// malformation (wrong width, non-digits, out-of-range fields, or an
/// impossible calendar date such as Feb 31).
std::optional<std::int64_t> parse_epoch_ms(std::string_view text);

/// True when (year, month, day) names a real proleptic-Gregorian date:
/// month in [1,12] and day within that month's length (leap-aware).
/// Parsers use this so Feb 31 is rejected instead of being silently
/// normalized into a wrong epoch by the days-from-civil arithmetic.
bool valid_civil_date(std::int64_t year, unsigned month, unsigned day);

}  // namespace sdc::logging
