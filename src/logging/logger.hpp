// Daemon-facing logger.
//
// Each simulated daemon (ResourceManager, one per NodeManager, one per
// Spark driver / executor) owns a `Logger` bound to a stream in a shared
// `LogBundle`.  The logger converts engine microseconds to wall-clock
// epoch milliseconds using the cluster epoch plus an optional per-daemon
// clock skew — letting tests exercise SDchecker against imperfect NTP,
// which the paper's tool silently assumes away.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.hpp"
#include "logging/log_bundle.hpp"
#include "logging/record.hpp"

namespace sdc::logging {

class Logger {
 public:
  /// Binds to `bundle[stream]`.  `epoch_base_ms` is the wall-clock time of
  /// simulation time 0; `skew_ms` is added to every rendered timestamp.
  Logger(LogBundle* bundle, std::string stream, std::int64_t epoch_base_ms,
         std::int64_t skew_ms = 0)
      : bundle_(bundle),
        stream_(std::move(stream)),
        epoch_base_ms_(epoch_base_ms),
        skew_ms_(skew_ms) {}

  /// Emits one line at simulation time `now`.
  void log(SimTime now, Level level, const std::string& logger_class,
           const std::string& message) const;

  void info(SimTime now, const std::string& logger_class,
            const std::string& message) const {
    log(now, Level::kInfo, logger_class, message);
  }
  void warn(SimTime now, const std::string& logger_class,
            const std::string& message) const {
    log(now, Level::kWarn, logger_class, message);
  }

  [[nodiscard]] const std::string& stream() const noexcept { return stream_; }
  [[nodiscard]] std::int64_t skew_ms() const noexcept { return skew_ms_; }

  /// Wall-clock milliseconds this logger would stamp at simulation `now`.
  [[nodiscard]] std::int64_t wall_ms(SimTime now) const noexcept {
    return epoch_base_ms_ + to_millis(now) + skew_ms_;
  }

 private:
  LogBundle* bundle_;
  std::string stream_;
  std::int64_t epoch_base_ms_;
  std::int64_t skew_ms_;
};

}  // namespace sdc::logging
