#include "logging/log_view.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/simd.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SDC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sdc::logging {

namespace {

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

#if SDC_HAVE_MMAP
/// RAII owner for an mmapped region, held via shared_ptr<const void>.
struct Mapping {
  void* data = nullptr;
  std::size_t len = 0;
  ~Mapping() {
    if (data != nullptr && len > 0) ::munmap(data, len);
  }
};
#endif

std::string read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LogView: cannot read " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

void LogView::split_buffer(std::string_view text) {
  const simd::ScanBackend backend = simd::active_scan_backend();
  bytes_ = text.size();
  lines_.clear();
  lines_.reserve(simd::count_byte(text, '\n', backend) + 1);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = simd::find_byte(text, '\n', start, backend);
    if (nl == std::string_view::npos) {
      // Final unterminated line (if any bytes remain).
      if (start < text.size()) {
        lines_.push_back(strip_cr(text.substr(start)));
      }
      break;
    }
    lines_.push_back(strip_cr(text.substr(start, nl - start)));
    start = nl + 1;
  }
}

LogView LogView::from_file(const std::filesystem::path& path) {
#if SDC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto len = static_cast<std::size_t>(st.st_size);
      if (len == 0) {
        ::close(fd);
        return LogView{};
      }
      void* data = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (data != MAP_FAILED) {
#if defined(MADV_SEQUENTIAL)
        ::madvise(data, len, MADV_SEQUENTIAL);
#endif
        auto mapping = std::make_shared<Mapping>();
        mapping->data = data;
        mapping->len = len;
        LogView view;
        view.owner_ = mapping;
        view.split_buffer(
            std::string_view(static_cast<const char*>(data), len));
        return view;
      }
    } else {
      ::close(fd);
    }
  }
  // Fall through to the portable bulk-read path on any mmap failure.
#endif
  return from_buffer(read_whole_file(path));
}

LogView LogView::from_buffer(std::string text) {
  auto owned = std::make_shared<std::string>(std::move(text));
  LogView view;
  view.owner_ = owned;
  view.split_buffer(*owned);
  return view;
}

LogView LogView::from_lines(const std::vector<std::string>& lines) {
  LogView view;
  view.lines_.reserve(lines.size());
  for (const std::string& line : lines) {
    view.lines_.push_back(strip_cr(line));
    view.bytes_ += line.size() + 1;  // count the elided newline
  }
  return view;
}

BundleView BundleView::read_from_directory(const std::filesystem::path& dir,
                                           std::vector<Diagnostic>* diagnostics) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("BundleView: not a directory: " + dir.string());
  }
  BundleView bundle;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    try {
      bundle.streams_.emplace(entry.path().filename().string(),
                              LogView::from_file(entry.path()));
    } catch (const std::exception& e) {
      if (diagnostics == nullptr) throw;
      diagnostics->push_back(Diagnostic{DiagnosticKind::kUnreadableFile,
                                        entry.path().filename().string(), 0, 1,
                                        e.what()});
    }
  }
  return bundle;
}

BundleView BundleView::from_bundle(const LogBundle& bundle) {
  BundleView view;
  for (const std::string& name : bundle.stream_names()) {
    view.streams_.emplace(name, LogView::from_lines(bundle.lines(name)));
  }
  return view;
}

void BundleView::add_stream(const std::string& name, LogView view) {
  streams_[name] = std::move(view);
}

std::vector<std::string> BundleView::stream_names() const {
  std::vector<std::string> out;
  out.reserve(streams_.size());
  for (const auto& [name, _] : streams_) out.push_back(name);
  return out;
}

const LogView& BundleView::stream(const std::string& name) const {
  static const LogView kEmpty;
  const auto it = streams_.find(name);
  return it == streams_.end() ? kEmpty : it->second;
}

std::size_t BundleView::total_lines() const {
  std::size_t n = 0;
  for (const auto& [_, view] : streams_) n += view.line_count();
  return n;
}

std::size_t BundleView::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [_, view] : streams_) n += view.size_bytes();
  return n;
}

}  // namespace sdc::logging
