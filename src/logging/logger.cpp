#include "logging/logger.hpp"

namespace sdc::logging {

void Logger::log(SimTime now, Level level, const std::string& logger_class,
                 const std::string& message) const {
  LogRecord record;
  record.epoch_ms = wall_ms(now);
  record.level = level;
  record.logger = logger_class;
  record.message = message;
  bundle_->append(stream_, record.render());
}

}  // namespace sdc::logging
