// Structured diagnostics for the log-ingestion and mining path.
//
// Real RM/NM/driver/executor logs arrive truncated, rotated, interleaved,
// clock-skewed and occasionally garbled.  Instead of throwing on the
// first oddity (or silently producing wrong numbers), every stage of the
// pipeline accumulates typed `Diagnostic` records with per-kind counts,
// so an analysis can *complete* on a damaged corpus while stating exactly
// what was dropped or suspect.  The records flow LogBundle/BundleView ->
// LogMiner -> AnalysisResult -> report/JSON/CLI exit status.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sdc::logging {

enum class DiagnosticKind {
  /// A log file could not be opened or read; its stream was skipped.
  kUnreadableFile = 0,
  /// A line is binary garbage (NUL bytes or mostly non-printable).
  kBinaryGarbage,
  /// A line was cut mid-write: a valid timestamp prefix with a malformed
  /// remainder, or a stream that begins/ends mid-line (torn rotation).
  kTruncatedLine,
  /// A stream was reassembled from rotated segments (name, name.1, ...).
  kRotationGap,
  /// Within one stream, a timestamp jumped backwards by more than the
  /// skew budget — the daemon's clock stepped (NTP) or writes interleaved.
  kTimestampRegression,
  /// A burst of consecutive unparsable lines (multi-line stack traces are
  /// short; long runs mean a foreign or corrupted section).
  kUnparsableBurst,
  /// A streaming-ingestion stream produced events but never revealed an
  /// application/container id, and its parked-event buffer overflowed the
  /// configured cap — events were dropped to bound daemon memory.
  kUnboundStream,
};

/// Number of DiagnosticKind values (for count arrays).
inline constexpr std::size_t kDiagnosticKindCount = 7;

/// Short stable name ("unreadable-file", "binary-garbage", ...).
std::string_view diagnostic_kind_name(DiagnosticKind kind);

/// Report severity: how strongly a kind implies data loss.  Lost input
/// (0) > damaged input (1) > suspect-but-kept input (2).
std::size_t diagnostic_severity(DiagnosticKind kind);

/// One finding about one stream (or the bundle, for file-level issues).
struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::kUnreadableFile;
  /// Stream (file) name the finding is about.
  std::string stream;
  /// 1-based first line involved; 0 when not line-scoped.
  std::size_t line_no = 0;
  /// Lines / occurrences covered by this record (>= 1).
  std::size_t count = 1;
  std::string detail;
};

/// Per-kind occurrence totals (summed `Diagnostic::count`).
struct DiagnosticCounts {
  std::array<std::size_t, kDiagnosticKindCount> by_kind{};

  void bump(DiagnosticKind kind, std::size_t n = 1) {
    by_kind[static_cast<std::size_t>(kind)] += n;
  }
  [[nodiscard]] std::size_t of(DiagnosticKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::size_t total() const {
    std::size_t n = 0;
    for (const std::size_t c : by_kind) n += c;
    return n;
  }
  DiagnosticCounts& operator+=(const DiagnosticCounts& other) {
    for (std::size_t i = 0; i < by_kind.size(); ++i) {
      by_kind[i] += other.by_kind[i];
    }
    return *this;
  }
  /// Folds a record's count into the totals.
  void add(const Diagnostic& diagnostic) {
    bump(diagnostic.kind, diagnostic.count);
  }
};

/// Recomputes totals from a list of records.
[[nodiscard]] DiagnosticCounts count_diagnostics(
    const std::vector<Diagnostic>& diagnostics);

/// Report ordering: severity, then kind, then stream, then line.  Used
/// by the analysis layer so rendered reports and exported JSON list the
/// most serious corpus damage first, in a stable order independent of
/// mining thread count or chunk schedule.  (Mining-layer results keep
/// discovery order — the sharded/serial equivalence tests depend on it.)
[[nodiscard]] bool diagnostic_order_less(const Diagnostic& a,
                                         const Diagnostic& b);

/// Stable-sorts records into report order.
void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

/// Renders one record as a single human-readable line (no trailing '\n').
[[nodiscard]] std::string render_diagnostic(const Diagnostic& diagnostic);

}  // namespace sdc::logging
