#include "logging/log_bundle.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace sdc::logging {

void LogBundle::append(const std::string& stream, std::string line) {
  streams_[stream].push_back(std::move(line));
}

const std::vector<std::string>& LogBundle::lines(
    const std::string& stream) const {
  static const std::vector<std::string> kEmpty;
  const auto it = streams_.find(stream);
  return it == streams_.end() ? kEmpty : it->second;
}

std::vector<std::string> LogBundle::stream_names() const {
  std::vector<std::string> out;
  out.reserve(streams_.size());
  for (const auto& [name, _] : streams_) out.push_back(name);
  return out;
}

bool LogBundle::has_stream(const std::string& stream) const {
  return streams_.contains(stream);
}

std::size_t LogBundle::total_lines() const {
  std::size_t n = 0;
  for (const auto& [_, lines] : streams_) n += lines.size();
  return n;
}

void LogBundle::write_to_directory(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [name, lines] : streams_) {
    std::ofstream out(dir / name);
    if (!out) {
      throw std::runtime_error("LogBundle: cannot open " + (dir / name).string());
    }
    for (const auto& line : lines) out << line << '\n';
  }
}

LogBundle LogBundle::read_from_directory(const std::filesystem::path& dir,
                                         std::vector<Diagnostic>* diagnostics) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("LogBundle: not a directory: " + dir.string());
  }
  LogBundle bundle;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      if (diagnostics == nullptr) {
        throw std::runtime_error("LogBundle: cannot read " + path.string());
      }
      diagnostics->push_back(Diagnostic{DiagnosticKind::kUnreadableFile,
                                        path.filename().string(), 0, 1,
                                        "cannot open for reading; skipped"});
      continue;
    }
    std::string line;
    auto& stream = bundle.streams_[path.filename().string()];
    while (std::getline(in, line)) {
      // getline keeps the '\r' of CRLF-terminated logs (files collected
      // from Windows gateways); strip it so parsing sees clean lines.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      stream.push_back(line);
    }
  }
  return bundle;
}

void LogBundle::merge(const LogBundle& other) {
  for (const auto& [name, lines] : other.streams_) {
    auto& dst = streams_[name];
    dst.insert(dst.end(), lines.begin(), lines.end());
  }
}

}  // namespace sdc::logging
