#include "logging/diagnostics.hpp"

#include <cstdio>

namespace sdc::logging {

std::string_view diagnostic_kind_name(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kUnreadableFile:
      return "unreadable-file";
    case DiagnosticKind::kBinaryGarbage:
      return "binary-garbage";
    case DiagnosticKind::kTruncatedLine:
      return "truncated-line";
    case DiagnosticKind::kRotationGap:
      return "rotation-gap";
    case DiagnosticKind::kTimestampRegression:
      return "timestamp-regression";
    case DiagnosticKind::kUnparsableBurst:
      return "unparsable-burst";
  }
  return "?";
}

DiagnosticCounts count_diagnostics(const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts counts;
  for (const Diagnostic& diagnostic : diagnostics) counts.add(diagnostic);
  return counts;
}

std::string render_diagnostic(const Diagnostic& diagnostic) {
  std::string out = "[";
  out += diagnostic_kind_name(diagnostic.kind);
  out += "] ";
  out += diagnostic.stream.empty() ? "<bundle>" : diagnostic.stream;
  if (diagnostic.line_no > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ":%zu", diagnostic.line_no);
    out += buf;
  }
  if (diagnostic.count > 1) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " (x%zu)", diagnostic.count);
    out += buf;
  }
  if (!diagnostic.detail.empty()) {
    out += ": ";
    out += diagnostic.detail;
  }
  return out;
}

}  // namespace sdc::logging
