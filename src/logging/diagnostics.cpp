#include "logging/diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace sdc::logging {

std::string_view diagnostic_kind_name(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kUnreadableFile:
      return "unreadable-file";
    case DiagnosticKind::kBinaryGarbage:
      return "binary-garbage";
    case DiagnosticKind::kTruncatedLine:
      return "truncated-line";
    case DiagnosticKind::kRotationGap:
      return "rotation-gap";
    case DiagnosticKind::kTimestampRegression:
      return "timestamp-regression";
    case DiagnosticKind::kUnparsableBurst:
      return "unparsable-burst";
    case DiagnosticKind::kUnboundStream:
      return "unbound-stream";
  }
  return "?";
}

std::size_t diagnostic_severity(DiagnosticKind kind) {
  switch (kind) {
    // Input that never reached the parser at all.
    case DiagnosticKind::kUnreadableFile:
      return 0;
    // Input that reached the parser damaged (lines dropped or cut), or
    // parsed events dropped under the bounded-memory cap.
    case DiagnosticKind::kBinaryGarbage:
    case DiagnosticKind::kTruncatedLine:
    case DiagnosticKind::kUnparsableBurst:
    case DiagnosticKind::kUnboundStream:
      return 1;
    // Input that was kept but whose timeline is suspect.
    case DiagnosticKind::kRotationGap:
    case DiagnosticKind::kTimestampRegression:
      return 2;
  }
  return 3;
}

DiagnosticCounts count_diagnostics(const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts counts;
  for (const Diagnostic& diagnostic : diagnostics) counts.add(diagnostic);
  return counts;
}

bool diagnostic_order_less(const Diagnostic& a, const Diagnostic& b) {
  const std::size_t sev_a = diagnostic_severity(a.kind);
  const std::size_t sev_b = diagnostic_severity(b.kind);
  if (sev_a != sev_b) return sev_a < sev_b;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.stream != b.stream) return a.stream < b.stream;
  return a.line_no < b.line_no;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   diagnostic_order_less);
}

std::string render_diagnostic(const Diagnostic& diagnostic) {
  std::string out = "[";
  out += diagnostic_kind_name(diagnostic.kind);
  out += "] ";
  out += diagnostic.stream.empty() ? "<bundle>" : diagnostic.stream;
  if (diagnostic.line_no > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ":%zu", diagnostic.line_no);
    out += buf;
  }
  if (diagnostic.count > 1) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " (x%zu)", diagnostic.count);
    out += buf;
  }
  if (!diagnostic.detail.empty()) {
    out += ": ";
    out += diagnostic.detail;
  }
  return out;
}

}  // namespace sdc::logging
