// Zero-copy read path for the log miner.
//
// A `LogView` holds one log stream as a single contiguous byte buffer
// plus `std::string_view` line slices into it — no per-line
// `std::string` allocations.  File-backed views mmap the file when the
// platform allows it (falling back to one bulk read), so mining a
// multi-GB RM log touches each byte exactly once and the page cache does
// the rest.  A `BundleView` names a set of streams, mirroring
// `LogBundle`, and can adapt an in-memory bundle without copying its
// lines (the bundle must outlive the view).
//
// Line splitting matches `std::getline` + CRLF hygiene: lines are split
// on '\n', a trailing '\r' is stripped (Windows-collected logs), and a
// final unterminated line still counts.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "logging/diagnostics.hpp"
#include "logging/log_bundle.hpp"

namespace sdc::logging {

/// One log stream: a shared backing buffer and line views into it.
/// Copyable; copies share the backing buffer.
class LogView {
 public:
  LogView() = default;

  /// Maps (or bulk-reads) one log file.  Throws std::runtime_error on
  /// I/O failure.
  static LogView from_file(const std::filesystem::path& path);

  /// Takes ownership of a buffer of raw log text and splits it.
  static LogView from_buffer(std::string text);

  /// Adapts already-split lines owned elsewhere (e.g. a LogBundle
  /// stream).  Zero-copy: the caller guarantees `lines` outlives the
  /// view.  Lines are assumed newline-free; trailing '\r' is stripped.
  static LogView from_lines(const std::vector<std::string>& lines);

  [[nodiscard]] const std::vector<std::string_view>& lines() const noexcept {
    return lines_;
  }
  [[nodiscard]] std::size_t line_count() const noexcept {
    return lines_.size();
  }
  /// Size of the backing text (bytes mined, incl. newlines for
  /// file-backed views).
  [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_; }

 private:
  void split_buffer(std::string_view text);

  /// Keeps the backing storage (mmap region, owned string, ...) alive
  /// for as long as any copy of this view exists.
  std::shared_ptr<const void> owner_;
  std::vector<std::string_view> lines_;
  std::size_t bytes_ = 0;
};

/// Named collection of `LogView` streams — the zero-copy analogue of
/// `LogBundle` for the mining path.
class BundleView {
 public:
  BundleView() = default;

  /// Views every regular file in `dir` (non-recursive), one stream per
  /// file.  Throws std::runtime_error if `dir` is not a directory.  With
  /// `diagnostics`, an unreadable file is recorded as a kUnreadableFile
  /// diagnostic and skipped; without it, the first unreadable file throws
  /// (the historical strict behaviour).
  static BundleView read_from_directory(const std::filesystem::path& dir,
                                        std::vector<Diagnostic>* diagnostics =
                                            nullptr);

  /// Zero-copy adapter over an in-memory bundle; `bundle` must outlive
  /// the returned view.
  static BundleView from_bundle(const LogBundle& bundle);

  void add_stream(const std::string& name, LogView view);

  /// All stream names in lexicographic order.
  [[nodiscard]] std::vector<std::string> stream_names() const;

  /// Lines of one stream; empty view if the stream does not exist.
  [[nodiscard]] const LogView& stream(const std::string& name) const;

  [[nodiscard]] bool has_stream(const std::string& name) const {
    return streams_.contains(name);
  }
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }
  [[nodiscard]] std::size_t total_lines() const;
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  std::map<std::string, LogView> streams_;
};

}  // namespace sdc::logging
