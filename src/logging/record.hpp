// A single log4j-style log line.
//
// Rendered format (matching the paper's `timestamp class log-message`
// description, concretely the log4j default layout):
//
//   2017-07-03 17:20:00,123 INFO  org.apache...rmapp.RMAppImpl: <message>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sdc::logging {

enum class Level { kDebug, kInfo, kWarn, kError };

/// Returns the fixed-width upper-case name ("INFO ", "WARN ", ...).
std::string_view level_name(Level level);

struct LogRecord {
  /// Wall-clock timestamp in epoch milliseconds as the daemon saw it
  /// (includes any injected clock skew).
  std::int64_t epoch_ms = 0;
  Level level = Level::kInfo;
  /// Fully qualified logger name, e.g.
  /// "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl".
  std::string logger;
  std::string message;

  /// Renders the full log line (no trailing newline).
  [[nodiscard]] std::string render() const;
};

}  // namespace sdc::logging
