#include "cluster/cluster.hpp"

namespace sdc::cluster {

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine),
      config_(config),
      hdfs_(config.hdfs),
      blocks_(config.worker_nodes, config.hdfs.replication,
              config.placement_seed) {
  nodes_.reserve(static_cast<std::size_t>(config_.worker_nodes));
  for (std::int32_t i = 0; i < config_.worker_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(NodeId{i + 1}, config_.node_capacity));
  }
}

std::vector<Node*> Cluster::nodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

double Cluster::cluster_cpu_utilization() const {
  std::int64_t used = 0;
  std::int64_t cap = 0;
  for (const auto& n : nodes_) {
    used += n->used().vcores;
    cap += n->capacity().vcores;
  }
  return cap == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(cap);
}

Resource Cluster::total_capacity() const {
  Resource total{};
  for (const auto& n : nodes_) total += n->capacity();
  return total;
}

Resource Cluster::total_used() const {
  Resource total{};
  for (const auto& n : nodes_) total += n->used();
  return total;
}

}  // namespace sdc::cluster
