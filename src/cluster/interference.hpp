// Cluster-wide interference model (paper §IV-E).
//
// Three load channels with distinct fingerprints:
//
//   * I/O *transfer* load — saturates disks + the replication pipeline.
//     dfsIO writes (20 GB per map, 3-way replicated) are the worst case:
//     one dfsIO map = one transfer unit.  Drives localization downloads
//     and Docker image loads (Fig. 12-b: ~9x localization slowdown).
//   * I/O *control* load — pressure on HDFS client paths, class loading,
//     broadcast-block writes, heartbeat RPC.  dfsIO maps add one unit
//     each; large input *scans* also add units (0.3 per GB of input per
//     running query) — reads spread across 25 nodes barely collide with
//     a specific localization download (the paper's 200 GB runs degrade
//     `out` only ~1.5x) but do slow the JVM-side control paths (`in`
//     degrades ~5.7x, Fig. 5).  Scans contribute only a token amount
//     (0.015/GB) to the transfer channel.
//   * CPU load, in "Kmeans-app units" — one unit is one HiBench Kmeans
//     application with 4x16-vcore executors spinning the whole cluster.
//
// The multiplier curves are the central calibration artifact: sub-linear
// power laws fit so the paper's reported slowdowns land where measured.
// See EXPERIMENTS.md for the fit against each figure.
#pragma once

namespace sdc::cluster {

class InterferenceModel {
 public:
  /// Adds/removes write-heavy I/O load (dfsIO maps): hits both the
  /// transfer and the control channel, one unit per map.
  void add_io_units(double units) noexcept {
    transfer_units_ += units;
    control_units_ += units;
  }
  void remove_io_units(double units) noexcept {
    transfer_units_ = clamp0(transfer_units_ - units);
    control_units_ = clamp0(control_units_ - units);
  }

  /// Adds/removes scan (read) load with independent channel weights.
  void add_scan_units(double control_units, double transfer_units) noexcept {
    control_units_ += control_units;
    transfer_units_ += transfer_units;
  }
  void remove_scan_units(double control_units,
                         double transfer_units) noexcept {
    control_units_ = clamp0(control_units_ - control_units);
    transfer_units_ = clamp0(transfer_units_ - transfer_units);
  }

  [[nodiscard]] double transfer_units() const noexcept {
    return transfer_units_;
  }
  [[nodiscard]] double control_units() const noexcept {
    return control_units_;
  }

  /// Adds/removes CPU load in Kmeans-app units.
  void add_cpu_units(double units) noexcept { cpu_units_ += units; }
  void remove_cpu_units(double units) noexcept {
    cpu_units_ = clamp0(cpu_units_ - units);
  }
  [[nodiscard]] double cpu_units() const noexcept { return cpu_units_; }

  /// Slowdown applied to bulk disk+network transfers (localization
  /// downloads, Docker image loads).  ~13x raw at 100 transfer units; the
  /// measured localization slowdown (Fig. 12-b, ~9.4x median) is diluted
  /// by the fixed localization overhead and the elevated trace baseline.
  [[nodiscard]] double io_transfer_multiplier() const noexcept;

  /// Slowdown applied to I/O-sensitive control phases (executor
  /// registration heartbeats, class loading, broadcast creation).  ~4.2x
  /// raw at 100 control units; the measured executor-delay slowdown lands
  /// in the paper band (2.5-3.5x) because the window start also shifts.
  [[nodiscard]] double io_control_multiplier() const noexcept;

  /// Slowdown applied to CPU-bound phases (JVM warm-up, JIT, driver and
  /// executor initialization).  ~2.6x at 16 CPU units (Fig. 13-b/c band).
  [[nodiscard]] double cpu_multiplier() const noexcept;

  /// Mild CPU effect on localization (NameNode RPC is CPU-bound but the
  /// transfer itself is I/O-dominated): ~1.4x at 16 CPU units (Fig. 13-d).
  [[nodiscard]] double cpu_localization_multiplier() const noexcept;

  /// Combined multiplier for task execution (job runtime model): data
  /// analytics is CPU-intensive (paper §IV-E) with some I/O sensitivity.
  [[nodiscard]] double execution_multiplier() const noexcept;

 private:
  static double clamp0(double v) noexcept { return v < 0 ? 0 : v; }

  double transfer_units_ = 0.0;
  double control_units_ = 0.0;
  double cpu_units_ = 0.0;
};

}  // namespace sdc::cluster
