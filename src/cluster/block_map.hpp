// HDFS block placement map: which nodes hold replicas of which file's
// blocks.  Backs (a) data-locality preferences of task container asks
// (delay scheduling, [5] in the paper) and (b) MapReduce map fan-out
// (one map per block).
//
// Placement follows HDFS's default policy shape: replicas of a block go
// to `replication` distinct nodes chosen pseudo-randomly (we skip the
// writer-local + remote-rack refinements — the simulated cluster is one
// rack, as the paper's testbed effectively is for scheduling purposes).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace sdc::cluster {

struct BlockLocation {
  std::int32_t block_index = 0;
  std::vector<NodeId> replicas;
};

class BlockMap {
 public:
  /// `num_nodes` worker nodes (ids 1..num_nodes); `replication` replicas
  /// per block; `seed` fixes placement.
  BlockMap(std::int32_t num_nodes, std::int32_t replication,
           std::uint64_t seed);

  /// Registers a file with `blocks` blocks, placing replicas.  Idempotent:
  /// re-registering an existing name keeps the original placement (HDFS
  /// files are immutable).
  void register_file(const std::string& name, std::int64_t blocks);

  [[nodiscard]] bool has_file(const std::string& name) const;

  /// Block locations of a file (empty for unknown files).
  [[nodiscard]] const std::vector<BlockLocation>& locations(
      const std::string& name) const;

  /// De-duplicated set of nodes holding at least one replica of the file,
  /// ordered by node id (empty for unknown files).
  [[nodiscard]] std::vector<NodeId> nodes_with_replicas(
      const std::string& name) const;

  /// Replica nodes of one block (empty when out of range).
  [[nodiscard]] std::vector<NodeId> replicas_of_block(
      const std::string& name, std::int64_t block_index) const;

  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] std::int32_t replication() const noexcept {
    return replication_;
  }

 private:
  std::int32_t num_nodes_;
  std::int32_t replication_;
  Rng rng_;
  std::map<std::string, std::vector<BlockLocation>> files_;
};

}  // namespace sdc::cluster
