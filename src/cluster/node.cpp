#include "cluster/node.hpp"

#include <cassert>

namespace sdc::cluster {

bool Node::try_allocate(const Resource& ask) {
  if (!available().fits(ask)) return false;
  used_ += ask;
  return true;
}

void Node::release(const Resource& res) {
  assert(used_.vcores >= res.vcores && used_.memory_mb >= res.memory_mb &&
         "release exceeds allocation");
  used_ -= res;
  if (used_.vcores < 0) used_.vcores = 0;
  if (used_.memory_mb < 0) used_.memory_mb = 0;
}

double Node::cpu_utilization() const noexcept {
  if (capacity_.vcores == 0) return 0.0;
  return static_cast<double>(used_.vcores) /
         static_cast<double>(capacity_.vcores);
}

}  // namespace sdc::cluster
