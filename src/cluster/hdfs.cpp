#include "cluster/hdfs.hpp"

#include <algorithm>
#include <cmath>

namespace sdc::cluster {

SimDuration HdfsModel::expected_transfer(double size_mb,
                                         double io_multiplier) const {
  if (size_mb <= 0) return 0;
  const double cached = std::min(size_mb, config_.cached_mb);
  const double remote = size_mb - cached;
  // Contention slows both tiers fully: dfsIO-style interference thrashes
  // the page cache and saturates the same spindles that serve "local"
  // reads (Fig. 12-b: even the 500 MB default package slows ~9x).
  const double secs = cached / config_.fast_bw_mbps * io_multiplier +
                      remote / config_.slow_bw_mbps * io_multiplier;
  return static_cast<SimDuration>(secs * 1e6);
}

SimDuration HdfsModel::sample_transfer(double size_mb, double io_multiplier,
                                       Rng& rng) const {
  const SimDuration expected = expected_transfer(size_mb, io_multiplier);
  if (expected <= 0) return 0;
  return rng.lognormal_duration(expected, config_.noise_sigma);
}

std::int64_t HdfsModel::block_count(double size_mb) const {
  if (size_mb <= 0) return 0;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(size_mb / static_cast<double>(config_.block_size_mb))));
}

}  // namespace sdc::cluster
