#include "cluster/block_map.hpp"

#include <algorithm>
#include <set>

namespace sdc::cluster {

BlockMap::BlockMap(std::int32_t num_nodes, std::int32_t replication,
                   std::uint64_t seed)
    : num_nodes_(num_nodes),
      replication_(std::min(replication, num_nodes)),
      rng_(seed) {}

void BlockMap::register_file(const std::string& name, std::int64_t blocks) {
  if (files_.contains(name)) return;  // immutable files
  std::vector<BlockLocation> locations;
  locations.reserve(static_cast<std::size_t>(blocks));
  for (std::int64_t b = 0; b < blocks; ++b) {
    BlockLocation location;
    location.block_index = static_cast<std::int32_t>(b);
    std::set<std::int32_t> chosen;
    while (static_cast<std::int32_t>(chosen.size()) < replication_) {
      chosen.insert(static_cast<std::int32_t>(
          rng_.uniform_int(1, num_nodes_)));
    }
    for (const std::int32_t index : chosen) {
      location.replicas.push_back(NodeId{index});
    }
    locations.push_back(std::move(location));
  }
  files_[name] = std::move(locations);
}

bool BlockMap::has_file(const std::string& name) const {
  return files_.contains(name);
}

const std::vector<BlockLocation>& BlockMap::locations(
    const std::string& name) const {
  static const std::vector<BlockLocation> kEmpty;
  const auto it = files_.find(name);
  return it == files_.end() ? kEmpty : it->second;
}

std::vector<NodeId> BlockMap::nodes_with_replicas(
    const std::string& name) const {
  std::set<NodeId> nodes;
  for (const BlockLocation& location : locations(name)) {
    nodes.insert(location.replicas.begin(), location.replicas.end());
  }
  return {nodes.begin(), nodes.end()};
}

std::vector<NodeId> BlockMap::replicas_of_block(
    const std::string& name, std::int64_t block_index) const {
  const auto& all = locations(name);
  if (block_index < 0 || block_index >= static_cast<std::int64_t>(all.size())) {
    return {};
  }
  return all[static_cast<std::size_t>(block_index)].replicas;
}

}  // namespace sdc::cluster
