#include "cluster/interference.hpp"

#include <cmath>

namespace sdc::cluster {
namespace {

/// Sub-linear power-law slowdown: 1 + a * units^b.
double power_law(double units, double a, double b) {
  if (units <= 0) return 1.0;
  return 1.0 + a * std::pow(units, b);
}

}  // namespace

double InterferenceModel::io_transfer_multiplier() const noexcept {
  // 100 units -> ~13x raw (Fig. 12-b calibration anchor).
  return power_law(transfer_units_, 0.42, 0.72);
}

double InterferenceModel::io_control_multiplier() const noexcept {
  // 100 units -> ~4.2x raw (Fig. 12-c calibration anchor).
  return power_law(control_units_, 0.20, 0.60);
}

double InterferenceModel::cpu_multiplier() const noexcept {
  // 16 units -> ~2.6x (Fig. 13-b/c: driver 2.9x, executor 2.4x at 16 apps).
  return power_law(cpu_units_, 0.26, 0.65);
}

double InterferenceModel::cpu_localization_multiplier() const noexcept {
  // 16 units -> ~1.38x (Fig. 13-d: ~1.4x median at 16 apps).
  return power_law(cpu_units_, 0.11, 0.45);
}

double InterferenceModel::execution_multiplier() const noexcept {
  // Job runtime degrades under both kinds of load, CPU-dominated
  // ("most data analytics applications are CPU intensive", §IV-E).
  return power_law(cpu_units_, 0.18, 0.60) *
         power_law(control_units_, 0.05, 0.55);
}

}  // namespace sdc::cluster
