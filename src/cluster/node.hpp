// One worker node: capacity accounting plus local I/O flow tracking used
// by the contention model.
#pragma once

#include <cstdint>

#include "cluster/resource.hpp"
#include "common/ids.hpp"

namespace sdc::cluster {

class Node {
 public:
  Node(NodeId id, Resource capacity) : id_(id), capacity_(capacity) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const Resource& capacity() const noexcept { return capacity_; }
  [[nodiscard]] const Resource& used() const noexcept { return used_; }
  [[nodiscard]] Resource available() const noexcept {
    return capacity_ - used_;
  }

  /// Reserves `ask` if it fits; returns whether the allocation happened.
  [[nodiscard]] bool try_allocate(const Resource& ask);

  /// Releases a previous allocation (asserts against underflow).
  void release(const Resource& res);

  /// Fraction of vcores in use, in [0, 1].
  [[nodiscard]] double cpu_utilization() const noexcept;

  /// Local I/O flows (HDFS reads/writes, localization downloads) active on
  /// this node's disks; feeds the per-node share of I/O contention.
  void add_io_flow() noexcept { ++io_flows_; }
  void remove_io_flow() noexcept {
    if (io_flows_ > 0) --io_flows_;
  }
  [[nodiscard]] std::int32_t io_flows() const noexcept { return io_flows_; }

  /// Containers queued at this node (opportunistic scheduling); the
  /// distributed scheduler's queuing delay (Fig. 7-b) is the time these
  /// spend waiting for resources to free up.
  void enqueue_opportunistic() noexcept { ++queued_; }
  void dequeue_opportunistic() noexcept {
    if (queued_ > 0) --queued_;
  }
  [[nodiscard]] std::int32_t queued_opportunistic() const noexcept {
    return queued_;
  }

 private:
  NodeId id_;
  Resource capacity_;
  Resource used_{};
  std::int32_t io_flows_ = 0;
  std::int32_t queued_ = 0;
};

}  // namespace sdc::cluster
