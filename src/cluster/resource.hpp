// Resource vectors, YARN-style: a container is an ensemble of vcores and
// memory (paper §II-A).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace sdc::cluster {

struct Resource {
  std::int32_t vcores = 0;
  std::int64_t memory_mb = 0;

  auto operator<=>(const Resource&) const = default;

  constexpr Resource operator+(const Resource& o) const noexcept {
    return {vcores + o.vcores, memory_mb + o.memory_mb};
  }
  constexpr Resource operator-(const Resource& o) const noexcept {
    return {vcores - o.vcores, memory_mb - o.memory_mb};
  }
  Resource& operator+=(const Resource& o) noexcept {
    vcores += o.vcores;
    memory_mb += o.memory_mb;
    return *this;
  }
  Resource& operator-=(const Resource& o) noexcept {
    vcores -= o.vcores;
    memory_mb -= o.memory_mb;
    return *this;
  }

  /// True if `ask` fits inside this resource on both dimensions.
  [[nodiscard]] constexpr bool fits(const Resource& ask) const noexcept {
    return ask.vcores <= vcores && ask.memory_mb <= memory_mb;
  }

  [[nodiscard]] std::string str() const {
    return "<vcores:" + std::to_string(vcores) +
           ", memory:" + std::to_string(memory_mb) + "MB>";
  }
};

/// The paper's executor shape: 8 cores, 4 GB (§IV-A).
inline constexpr Resource kExecutorResource{8, 4096};
/// AppMaster container shape (Spark driver defaults).
inline constexpr Resource kAmResource{1, 1024};
/// One evaluation node: dual 8-core Xeon with hyper-threading (32
/// hardware threads) and 132 GB RAM (§IV-A, a slice reserved for the OS).
inline constexpr Resource kNodeCapacity{32, 128 * 1024};

}  // namespace sdc::cluster
