// The simulated cluster: the paper's 26-node testbed (25 workers + 1
// master, §IV-A) as a set of `Node`s plus shared HDFS and interference
// state, all driven by one discrete-event engine.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/block_map.hpp"
#include "cluster/hdfs.hpp"
#include "cluster/interference.hpp"
#include "cluster/node.hpp"
#include "common/rng.hpp"
#include "simcore/engine.hpp"

namespace sdc::cluster {

struct ClusterConfig {
  std::int32_t worker_nodes = 25;
  Resource node_capacity = kNodeCapacity;
  HdfsConfig hdfs = {};
  /// Wall-clock epoch (ms) of simulation time 0; also the YARN "cluster
  /// timestamp" embedded in application/container IDs.
  std::int64_t epoch_base_ms = 1'499'100'000'000;  // 2017-07-03T16:40:00Z
  /// Seed of the HDFS block-placement map.
  std::uint64_t placement_seed = 0xB10C;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] Node& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] const Node& node(std::size_t index) const {
    return *nodes_.at(index);
  }
  [[nodiscard]] std::vector<Node*> nodes();

  [[nodiscard]] HdfsModel& hdfs() noexcept { return hdfs_; }
  [[nodiscard]] BlockMap& blocks() noexcept { return blocks_; }
  [[nodiscard]] const BlockMap& blocks() const noexcept { return blocks_; }
  [[nodiscard]] InterferenceModel& interference() noexcept {
    return interference_;
  }
  [[nodiscard]] const InterferenceModel& interference() const noexcept {
    return interference_;
  }

  /// Aggregate vcore utilization across workers, in [0, 1].
  [[nodiscard]] double cluster_cpu_utilization() const;

  /// Total resources across all workers.
  [[nodiscard]] Resource total_capacity() const;
  [[nodiscard]] Resource total_used() const;

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  HdfsModel hdfs_;
  BlockMap blocks_;
  InterferenceModel interference_;
};

}  // namespace sdc::cluster
