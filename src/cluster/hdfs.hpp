// HDFS transfer-time model.
//
// The evaluation cluster stores localization files and table data in HDFS
// (block size 128 MB, replication 3) on the same RAID-5 spindles that
// serve task input (§IV-A) — which is exactly why localization and task
// I/O interfere.  The model is a two-tier bandwidth curve: a slice of the
// file is served from local replicas / page cache at a fast rate, the
// remainder crosses the network at a slower shared rate.  Calibrated to
// Fig. 8: ~0.5 s for the default 500 MB package, ~23 s for 8 GB.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sdc::cluster {

struct HdfsConfig {
  std::int64_t block_size_mb = 128;
  std::int32_t replication = 3;
  /// Size served at the fast (local / cached) rate.
  double cached_mb = 1024.0;
  /// Fast tier bandwidth, MB/s (local disk + page cache).
  double fast_bw_mbps = 1000.0;
  /// Slow tier bandwidth, MB/s (remote replicas over shared 10 GbE + RAID).
  double slow_bw_mbps = 340.0;
  /// Lognormal sigma of per-transfer noise.
  double noise_sigma = 0.22;
};

class HdfsModel {
 public:
  explicit HdfsModel(HdfsConfig config = {}) : config_(config) {}

  [[nodiscard]] const HdfsConfig& config() const noexcept { return config_; }

  /// Expected (noise-free) transfer time for `size_mb` under an I/O
  /// contention multiplier (1.0 = idle cluster).
  [[nodiscard]] SimDuration expected_transfer(double size_mb,
                                              double io_multiplier) const;

  /// Sampled transfer time: expected value with lognormal noise.
  [[nodiscard]] SimDuration sample_transfer(double size_mb,
                                            double io_multiplier,
                                            Rng& rng) const;

  /// Number of HDFS blocks for `size_mb` (ceiling; minimum 1 for any
  /// non-empty file) — drives MapReduce map-task counts.
  [[nodiscard]] std::int64_t block_count(double size_mb) const;

 private:
  HdfsConfig config_;
};

}  // namespace sdc::cluster
