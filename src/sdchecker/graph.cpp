#include "sdchecker/graph.hpp"

#include <array>

#include "logging/timestamp.hpp"

namespace sdc::checker {
namespace {

/// True for Spark-side (in-application) states — ellipses in Fig. 3.
bool is_spark_state(EventKind kind) {
  switch (kind) {
    case EventKind::kDriverFirstLog:
    case EventKind::kDriverRegister:
    case EventKind::kStartAllo:
    case EventKind::kEndAllo:
    case EventKind::kExecutorFirstLog:
    case EventKind::kExecutorFirstTask:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::size_t SchedulingGraph::add_node(std::string entity, EventKind kind,
                                      std::int64_t ts) {
  nodes_.push_back(GraphNode{std::move(entity), kind, ts});
  return nodes_.size() - 1;
}

void SchedulingGraph::add_edge(std::size_t from, std::size_t to, bool cross) {
  if (from == kAbsent || to == kAbsent) return;
  edges_.push_back(GraphEdge{from, to, cross});
}

SchedulingGraph SchedulingGraph::build(const AppTimeline& timeline) {
  SchedulingGraph graph;

  // --- application-level chain -------------------------------------------
  const auto app_node = [&](EventKind kind) -> std::size_t {
    const auto ts = timeline.ts(kind);
    if (!ts) return kAbsent;
    return graph.add_node("app", kind, *ts);
  };
  const std::size_t submitted = app_node(EventKind::kAppSubmitted);
  const std::size_t accepted = app_node(EventKind::kAppAccepted);
  const std::size_t registered = app_node(EventKind::kAttemptRegistered);
  const std::size_t drv_first = app_node(EventKind::kDriverFirstLog);
  const std::size_t drv_register = app_node(EventKind::kDriverRegister);
  const std::size_t start_allo = app_node(EventKind::kStartAllo);
  const std::size_t end_allo = app_node(EventKind::kEndAllo);
  const std::size_t finished = app_node(EventKind::kAppFinished);

  graph.add_edge(submitted, accepted, false);
  graph.add_edge(accepted, registered, false);
  graph.add_edge(drv_first, drv_register, false);
  // Driver registration is what fires ATTEMPT_REGISTERED at the RM.
  graph.add_edge(drv_register, registered, true);
  graph.add_edge(drv_register, start_allo, false);
  graph.add_edge(start_allo, end_allo, false);
  graph.add_edge(registered, finished, false);

  // --- per-container chains ----------------------------------------------
  for (const auto& [id, container] : timeline.containers) {
    const std::string entity = id.str();
    const auto container_node = [&](EventKind kind) -> std::size_t {
      const auto ts = container.ts(kind);
      if (!ts) return kAbsent;
      return graph.add_node(entity, kind, *ts);
    };
    const std::size_t allocated = container_node(EventKind::kContainerAllocated);
    const std::size_t acquired = container_node(EventKind::kContainerAcquired);
    const std::size_t localizing = container_node(EventKind::kNmLocalizing);
    const std::size_t scheduled = container_node(EventKind::kNmScheduled);
    const std::size_t running = container_node(EventKind::kNmRunning);
    const std::size_t released = container_node(EventKind::kRmContainerReleased);
    const std::size_t failed = container_node(EventKind::kNmFailed);
    const std::size_t exec_first =
        container_node(EventKind::kExecutorFirstLog);
    const std::size_t first_task =
        container_node(EventKind::kExecutorFirstTask);

    graph.add_edge(allocated, acquired, false);
    graph.add_edge(acquired, localizing, true);  // RM -> NM handoff
    graph.add_edge(localizing, scheduled, false);
    graph.add_edge(scheduled, running, false);
    graph.add_edge(allocated, released, false);
    graph.add_edge(running, failed, false);
    graph.add_edge(running, exec_first, true);  // NM -> process handoff
    graph.add_edge(exec_first, first_task, false);

    if (id.is_am()) {
      // The admitted app causes the AM container; its process is the
      // driver.
      graph.add_edge(accepted, allocated, true);
      graph.add_edge(running, drv_first, true);
    } else {
      // Worker containers are requested by the allocator and their
      // acquisition feeds END_ALLO — unless they are *replacements* for
      // failed launches, acquired after END_ALLO already fired.
      graph.add_edge(start_allo, allocated, true);
      const auto acquired_ts = container.ts(EventKind::kContainerAcquired);
      const auto end_allo_ts = timeline.ts(EventKind::kEndAllo);
      if (acquired_ts && end_allo_ts && *acquired_ts <= *end_allo_ts) {
        graph.add_edge(acquired, end_allo, true);
      }
    }
  }
  return graph;
}

std::vector<std::string> SchedulingGraph::validate() const {
  std::vector<std::string> violations;
  for (const GraphEdge& edge : edges_) {
    const GraphNode& a = nodes_[edge.from];
    const GraphNode& b = nodes_[edge.to];
    if (b.ts_ms < a.ts_ms) {
      violations.push_back(
          a.entity + ":" + std::string(event_name(a.kind)) + " (" +
          logging::format_epoch_ms(a.ts_ms) + ") -> " + b.entity + ":" +
          std::string(event_name(b.kind)) + " (" +
          logging::format_epoch_ms(b.ts_ms) + ") goes backwards by " +
          std::to_string(a.ts_ms - b.ts_ms) + " ms");
    }
  }
  return violations;
}

std::string SchedulingGraph::to_dot() const {
  std::string out = "digraph scheduling {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const GraphNode& node = nodes_[i];
    const std::int32_t num = table1_number(node.kind);
    out += "  n" + std::to_string(i) + " [label=\"" + node.entity + "\\n" +
           std::string(event_name(node.kind));
    if (num > 0) out += " (" + std::to_string(num) + ")";
    out += "\" shape=" +
           std::string(is_spark_state(node.kind) ? "ellipse" : "box") + "];\n";
  }
  for (const GraphEdge& edge : edges_) {
    out += "  n" + std::to_string(edge.from) + " -> n" +
           std::to_string(edge.to);
    if (edge.cross_entity) out += " [style=dashed]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace sdc::checker
