// Human-readable event timeline for one application — the textual
// counterpart of the Fig.-3 scheduling graph, with Table-I message
// numbers and offsets from submission.
#pragma once

#include <string>

#include "sdchecker/grouping.hpp"

namespace sdc::checker {

/// Renders every first-occurrence event of the application and its
/// containers in timestamp order:
///
///     +0.000s  app                                     SUBMITTED (1)
///     +0.004s  app                                     ACCEPTED (2)
///     +0.038s  container_..._000001                    ALLOCATED (4)
///     ...
[[nodiscard]] std::string render_timeline(const AppTimeline& timeline);

}  // namespace sdc::checker
