#include "sdchecker/sdchecker.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace sdc::checker {
namespace {

struct FinalizeCounters {
  obs::Counter& apps;
  obs::Counter& anomalies;
  static const FinalizeCounters& get() {
    static const FinalizeCounters counters{
        obs::catalog_counter(obs::metric::kAnalyzeApps),
        obs::catalog_counter(obs::metric::kAnalyzeAnomalies)};
    return counters;
  }
};

/// Decompose + anomaly + aggregate over timelines already in app-ID
/// order.  `decomposed`/`found` are the per-app parallel-stage outputs,
/// index-aligned with the iteration order of `result.timelines`; the
/// serial path passes empty vectors and computes inline.  Merging is
/// serial and ordered, so every aggregate SampleSet and the anomaly list
/// are filled exactly as the historical serial loop filled them.
/// `retired` rows (evicted timelines, apps disjoint from the live set)
/// are spliced in at their app-ID position, which keeps the aggregate
/// fold order — and therefore the floating-point sums and the rendered
/// report — identical to a run where every timeline were still resident.
void merge_finalized(AnalysisResult& result, std::vector<Delays> decomposed,
                     std::vector<std::vector<Anomaly>> found,
                     const RetiredTable& retired) {
  auto next_retired = retired.begin();
  const auto fold_retired_before = [&](const ApplicationId* app) {
    while (next_retired != retired.end() &&
           (app == nullptr || next_retired->first < *app)) {
      const RetiredApp& row = next_retired->second;
      for (const Anomaly& anomaly : row.anomalies) {
        result.anomalies.push_back(anomaly);
      }
      result.aggregate.add(row.delays);
      result.delays.emplace_hint(result.delays.end(), next_retired->first,
                                 row.delays);
      ++next_retired;
    }
  };
  std::size_t i = 0;
  for (const auto& [app, timeline] : result.timelines) {
    fold_retired_before(&app);
    Delays delays =
        i < decomposed.size() ? std::move(decomposed[i]) : decompose(timeline);
    if (i < found.size()) {
      for (Anomaly& anomaly : found[i]) {
        result.anomalies.push_back(std::move(anomaly));
      }
    } else {
      detect_anomalies(timeline, delays, result.anomalies);
    }
    result.aggregate.add(delays);
    result.delays.emplace_hint(result.delays.end(), app, std::move(delays));
    ++i;
  }
  fold_retired_before(nullptr);
  const FinalizeCounters& counters = FinalizeCounters::get();
  counters.apps.add(result.timelines.size() + retired.size());
  counters.anomalies.add(result.anomalies.size());
}

}  // namespace

std::size_t AnalyzeOptions::effective_analyze_shards() const {
  if (analyze_shards != 0) return analyze_shards;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SchedulingGraph AnalysisResult::graph_for(const ApplicationId& app) const {
  const auto it = timelines.find(app);
  if (it == timelines.end()) {
    throw std::invalid_argument("no timeline for application " + app.str());
  }
  return SchedulingGraph::build(it->second);
}

std::vector<const Anomaly*> AnalysisResult::anomalies_of(
    AnomalyType type) const {
  std::vector<const Anomaly*> out;
  for (const Anomaly& anomaly : anomalies) {
    if (anomaly.type == type) out.push_back(&anomaly);
  }
  return out;
}

AnalysisResult SdChecker::analyze(const logging::LogBundle& bundle) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine(bundle));
}

AnalysisResult SdChecker::analyze(const logging::BundleView& view) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine(view));
}

AnalysisResult SdChecker::analyze_directory(
    const std::filesystem::path& dir) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine_directory(dir));
}

std::vector<AnalysisResult::Completeness> AnalysisResult::completeness()
    const {
  static constexpr EventKind kTable1[] = {
      EventKind::kAppSubmitted,       EventKind::kAppAccepted,
      EventKind::kAttemptRegistered,  EventKind::kContainerAllocated,
      EventKind::kContainerAcquired,  EventKind::kNmLocalizing,
      EventKind::kNmScheduled,        EventKind::kNmRunning,
      EventKind::kDriverFirstLog,     EventKind::kDriverRegister,
      EventKind::kStartAllo,          EventKind::kEndAllo,
      EventKind::kExecutorFirstLog,   EventKind::kExecutorFirstTask,
  };
  std::vector<Completeness> out;
  out.reserve(std::size(kTable1));
  for (const EventKind kind : kTable1) {
    Completeness row;
    row.kind = kind;
    out.push_back(row);
  }
  // One pass over apps: each timeline contributes two presence bitsets
  // (its own events, the union of its containers'), and every Table-I
  // row is a single bit test against the matching mask.
  for (const auto& [app, timeline] : timelines) {
    const std::uint32_t app_mask = timeline.first_ts.present_mask();
    const std::uint32_t container_mask = timeline.container_present_mask();
    for (std::size_t i = 0; i < std::size(kTable1); ++i) {
      const std::uint32_t mask =
          is_container_event(kTable1[i]) ? container_mask : app_mask;
      if ((mask & (1u << static_cast<std::uint32_t>(kTable1[i]))) == 0) {
        ++out[i].apps_missing;
      }
    }
  }
  return out;
}

std::string AnalysisResult::render_completeness() const {
  std::string out;
  char buf[96];
  for (const Completeness& row : completeness()) {
    if (row.apps_missing == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  message %2d (%s): missing in %zu of %zu apps\n",
                  table1_number(row.kind),
                  std::string(event_name(row.kind)).c_str(), row.apps_missing,
                  timelines.size());
    out += buf;
  }
  out += render_diagnostics();
  return out;
}

std::string AnalysisResult::render_diagnostics() const {
  std::string out;
  for (const logging::Diagnostic& diagnostic : diagnostics) {
    out += "  ";
    out += logging::render_diagnostic(diagnostic);
    out += '\n';
  }
  return out;
}

AnalysisResult finalize_analysis(
    std::map<ApplicationId, AppTimeline> timelines,
    const RetiredTable& retired) {
  const auto span = obs::Tracer::global().span("analyze.finalize");
  AnalysisResult result;
  result.timelines = std::move(timelines);
  merge_finalized(result, {}, {}, retired);
  return result;
}

AnalysisResult finalize_analysis(ShardedGroupResult grouped,
                                 ThreadPool& pool,
                                 const RetiredTable& retired) {
  const auto span = obs::Tracer::global().span("analyze.finalize");
  static obs::Counter& shards_counter =
      obs::catalog_counter(obs::metric::kAnalyzeShards);
  shards_counter.add(grouped.shards.size());

  AnalysisResult result;
  {
    // Fold the unordered shard tables into the result's sorted map; apps
    // are disjoint across shards, so this is pure re-ordering.
    const auto merge_span = obs::Tracer::global().span("analyze.merge");
    std::vector<std::pair<ApplicationId, AppTimeline*>> apps;
    for (AppTable& shard : grouped.shards) {
      for (auto& [app, timeline] : shard) {
        apps.emplace_back(app, &timeline);
      }
    }
    std::sort(apps.begin(), apps.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [app, timeline] : apps) {
      result.timelines.emplace_hint(result.timelines.end(), app,
                                    std::move(*timeline));
    }
  }

  // Per-app decomposition + anomaly detection is embarrassingly parallel
  // (the paper's components never cross applications); results land in
  // index-aligned vectors so the ordered merge below stays serial.
  const std::size_t n = result.timelines.size();
  std::vector<const AppTimeline*> order;
  order.reserve(n);
  for (const auto& [app, timeline] : result.timelines) {
    order.push_back(&timeline);
  }
  std::vector<Delays> decomposed(n);
  std::vector<std::vector<Anomaly>> found(n);
  parallel_for(pool, n, [&](std::size_t i) {
    decomposed[i] = decompose(*order[i]);
    detect_anomalies(*order[i], decomposed[i], found[i]);
  });

  {
    const auto merge_span = obs::Tracer::global().span("analyze.merge");
    merge_finalized(result, std::move(decomposed), std::move(found), retired);
  }
  return result;
}

AnalysisResult SdChecker::analyze_mined(MineResult mined) const {
  const std::size_t shards = options_.effective_analyze_shards();
  AnalysisResult result;
  if (shards > 1) {
    ThreadPool pool(shards);
    ShardedGroupResult grouped = [&] {
      const auto span = obs::Tracer::global().span("analyze.group");
      return group_events_sharded(mined.events, shards, pool);
    }();
    const std::size_t unattributed = grouped.unattributed;
    result = finalize_analysis(std::move(grouped), pool);
    result.events_unattributed = unattributed;
  } else {
    GroupResult grouped = [&] {
      const auto span = obs::Tracer::global().span("analyze.group");
      return group_events(mined.events);
    }();
    result = finalize_analysis(std::move(grouped.apps));
    result.events_unattributed = grouped.unattributed;
  }
  result.lines_total = mined.lines_total;
  result.lines_unparsed = mined.lines_unparsed;
  result.events_total = mined.events.size();
  result.diagnostics = std::move(mined.diagnostics);
  result.diag_counts = mined.diag_counts;
  // Report order is severity-then-class, independent of mining thread
  // count; the mining layer itself keeps discovery order.
  logging::sort_diagnostics(result.diagnostics);
  return result;
}

}  // namespace sdc::checker
