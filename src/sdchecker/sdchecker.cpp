#include "sdchecker/sdchecker.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace sdc::checker {

SchedulingGraph AnalysisResult::graph_for(const ApplicationId& app) const {
  const auto it = timelines.find(app);
  if (it == timelines.end()) {
    throw std::invalid_argument("no timeline for application " + app.str());
  }
  return SchedulingGraph::build(it->second);
}

std::vector<const Anomaly*> AnalysisResult::anomalies_of(
    AnomalyType type) const {
  std::vector<const Anomaly*> out;
  for (const Anomaly& anomaly : anomalies) {
    if (anomaly.type == type) out.push_back(&anomaly);
  }
  return out;
}

AnalysisResult SdChecker::analyze(const logging::LogBundle& bundle) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine(bundle));
}

AnalysisResult SdChecker::analyze(const logging::BundleView& view) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine(view));
}

AnalysisResult SdChecker::analyze_directory(
    const std::filesystem::path& dir) const {
  LogMiner miner(options_.miner_options());
  return analyze_mined(miner.mine_directory(dir));
}

std::vector<AnalysisResult::Completeness> AnalysisResult::completeness()
    const {
  static constexpr EventKind kTable1[] = {
      EventKind::kAppSubmitted,       EventKind::kAppAccepted,
      EventKind::kAttemptRegistered,  EventKind::kContainerAllocated,
      EventKind::kContainerAcquired,  EventKind::kNmLocalizing,
      EventKind::kNmScheduled,        EventKind::kNmRunning,
      EventKind::kDriverFirstLog,     EventKind::kDriverRegister,
      EventKind::kStartAllo,          EventKind::kEndAllo,
      EventKind::kExecutorFirstLog,   EventKind::kExecutorFirstTask,
  };
  std::vector<Completeness> out;
  for (const EventKind kind : kTable1) {
    Completeness row;
    row.kind = kind;
    for (const auto& [app, timeline] : timelines) {
      bool present = false;
      if (is_container_event(kind)) {
        for (const auto& [cid, container] : timeline.containers) {
          if (container.has(kind)) {
            present = true;
            break;
          }
        }
      } else {
        present = timeline.has(kind);
      }
      if (!present) ++row.apps_missing;
    }
    out.push_back(row);
  }
  return out;
}

std::string AnalysisResult::render_completeness() const {
  std::string out;
  char buf[96];
  for (const Completeness& row : completeness()) {
    if (row.apps_missing == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  message %2d (%s): missing in %zu of %zu apps\n",
                  table1_number(row.kind),
                  std::string(event_name(row.kind)).c_str(), row.apps_missing,
                  timelines.size());
    out += buf;
  }
  out += render_diagnostics();
  return out;
}

std::string AnalysisResult::render_diagnostics() const {
  std::string out;
  for (const logging::Diagnostic& diagnostic : diagnostics) {
    out += "  ";
    out += logging::render_diagnostic(diagnostic);
    out += '\n';
  }
  return out;
}

AnalysisResult finalize_analysis(
    std::map<ApplicationId, AppTimeline> timelines) {
  const auto span = obs::Tracer::global().span("analyze.finalize");
  static obs::Counter& apps_counter =
      obs::MetricsRegistry::global().counter("analyze.apps");
  static obs::Counter& anomalies_counter =
      obs::MetricsRegistry::global().counter("analyze.anomalies");
  AnalysisResult result;
  result.timelines = std::move(timelines);
  for (const auto& [app, timeline] : result.timelines) {
    Delays delays = decompose(timeline);
    detect_anomalies(timeline, delays, result.anomalies);
    result.aggregate.add(delays);
    result.delays.emplace(app, std::move(delays));
  }
  apps_counter.add(result.timelines.size());
  anomalies_counter.add(result.anomalies.size());
  return result;
}

AnalysisResult SdChecker::analyze_mined(MineResult mined) const {
  GroupResult grouped = [&] {
    const auto span = obs::Tracer::global().span("analyze.group");
    return group_events(mined.events);
  }();
  AnalysisResult result = finalize_analysis(std::move(grouped.apps));
  result.lines_total = mined.lines_total;
  result.lines_unparsed = mined.lines_unparsed;
  result.events_total = mined.events.size();
  result.events_unattributed = grouped.unattributed;
  result.diagnostics = std::move(mined.diagnostics);
  result.diag_counts = mined.diag_counts;
  // Report order is severity-then-class, independent of mining thread
  // count; the mining layer itself keeps discovery order.
  logging::sort_diagnostics(result.diagnostics);
  return result;
}

}  // namespace sdc::checker
