// Follow-mode serving glue: the bridge between the single-threaded
// FollowService poll loop and the multi-threaded observability HTTP
// server (ISSUE 9).
//
// The poll loop stays the sole owner of the analyzer.  After each
// non-quiescent poll it *publishes* — renders `analysis_json` once and
// stores the string (plus poll counters and the diagnostics rollup) in
// a `FollowPublisher` under a short mutex hold.  HTTP handlers only
// copy published strings or read the lock-free metrics registry, so a
// scrape can never block ingestion and ingestion can never tear a
// response.  Publishing only on non-quiescent polls is free snapshot
// reuse: a quiescent poll by definition changed nothing the analysis
// document reflects (retirement is invisible to `analysis_json` by the
// PR 7 parity contract).
//
// Endpoints (`make_follow_server`):
//   /metrics   Prometheus text exposition of the full metric catalog
//   /analysis  the latest published `analysis_json`, byte-identical to
//              batch `analyze` over the same (drained) directory
//   /healthz   liveness JSON: poll age vs the stall threshold (503 when
//              exceeded) + diagnostics severity rollup
//   /varz      raw metrics-registry snapshot JSON
//
// `/healthz` measures the poll age *at request time* from the
// publisher's steady-clock stamp — precisely so a wedged poll thread
// (which can no longer update anything) still flips the probe to 503.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "logging/diagnostics.hpp"
#include "obs/http_server.hpp"

namespace sdc::checker {

/// What the poll loop hands to the serving side after a poll.
struct FollowPublication {
  std::string analysis_json;
  std::uint64_t polls = 0;
  bool quiescent = false;
  logging::DiagnosticCounts diag_counts;
};

/// Single-producer (the poll loop), many-reader (HTTP workers) snapshot
/// mailbox.  All methods are safe from any thread; the producer-side
/// `publish`/`touch` are cheap enough for every poll iteration.
class FollowPublisher {
 public:
  FollowPublisher();

  /// Replaces the published snapshot and stamps the poll clock.
  void publish(FollowPublication publication) SDC_EXCLUDES(mu_);

  /// Stamps the poll clock (and poll/quiescence counters) without
  /// re-rendering: the quiescent-poll path, where the analysis document
  /// cannot have changed.
  void touch(std::uint64_t polls, bool quiescent) SDC_EXCLUDES(mu_);

  [[nodiscard]] FollowPublication current() const SDC_EXCLUDES(mu_);

  /// Milliseconds since the last publish/touch, measured now, on the
  /// caller's thread.
  [[nodiscard]] std::int64_t last_poll_age_ms() const SDC_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  FollowPublication current_ SDC_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_poll_ SDC_GUARDED_BY(mu_);
};

struct FollowServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// `/healthz` answers 503 (and bumps `follow.poll.stall`) when the
  /// last poll is older than this.
  std::int64_t stall_threshold_ms = 10000;
};

/// Builds the follow-mode observability server: registers the metric
/// catalog baseline plus every `sdc.delay.*` histogram (so `/metrics`
/// always exposes the complete vocabulary) and installs the four
/// endpoints over `publisher`.  The caller still runs `start()` — and
/// keeps `publisher` alive until after `stop()`.
[[nodiscard]] std::unique_ptr<obs::HttpServer> make_follow_server(
    const FollowPublisher& publisher, const FollowServeOptions& options = {});

/// The `/healthz` body for a given poll age (exposed for tests; also
/// updates `follow.poll.last_age_ms` and, when stalled,
/// `follow.poll.stall`).  `stalled` output decides the 503.
[[nodiscard]] std::string render_healthz_json(const FollowPublication& pub,
                                              std::int64_t age_ms,
                                              std::int64_t stall_threshold_ms,
                                              bool* stalled);

}  // namespace sdc::checker
