#include "sdchecker/grouping.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "obs/tracer.hpp"

namespace sdc::checker {
namespace {

/// Shared event-application body for the ordered (serial `group_events`,
/// incremental) and flat (sharded) application tables.  `container` is
/// nullptr for application-scoped events.
template <class Apps>
void apply_event_parts(Apps& apps, const ApplicationId& app_id,
                       const ContainerId* container_id, EventKind kind,
                       std::int64_t ts_ms) {
  AppTimeline& app = apps[app_id];
  app.app = app_id;
  if (container_id != nullptr) {
    ContainerTimeline& container = app.containers[*container_id];
    container.id = *container_id;
    container.first_ts.record(kind, ts_ms);
    ++container.counts[kind];
  } else {
    app.first_ts.record(kind, ts_ms);
    ++app.counts[kind];
  }
}

template <class Apps>
bool apply_event_impl(Apps& apps, const SchedEvent& event) {
  if (!event.app) return false;
  apply_event_parts(apps, *event.app,
                    event.container ? &*event.container : nullptr, event.kind,
                    event.ts_ms);
  return true;
}

}  // namespace

std::optional<std::int64_t> ContainerTimeline::ts(EventKind kind) const {
  return first_ts.get(kind);
}

bool ContainerTimeline::has(EventKind kind) const {
  return first_ts.contains(kind);
}

std::optional<std::int64_t> AppTimeline::ts(EventKind kind) const {
  return first_ts.get(kind);
}

bool AppTimeline::has(EventKind kind) const { return first_ts.contains(kind); }

std::uint32_t AppTimeline::container_present_mask() const {
  std::uint32_t mask = 0;
  for (const auto& [id, timeline] : containers) {
    mask |= timeline.first_ts.present_mask();
  }
  return mask;
}

const ContainerTimeline* AppTimeline::am_container() const {
  for (const auto& [id, timeline] : containers) {
    if (id.is_am()) return &timeline;
  }
  return nullptr;
}

std::vector<const ContainerTimeline*> AppTimeline::worker_containers() const {
  std::vector<const ContainerTimeline*> out;
  for (const auto& [id, timeline] : containers) {
    if (!id.is_am()) out.push_back(&timeline);
  }
  return out;  // FlatOrderedMap iteration is already id-ordered
}

std::optional<std::int64_t> AppTimeline::min_worker_ts(EventKind kind) const {
  std::optional<std::int64_t> best;
  for (const ContainerTimeline* c : worker_containers()) {
    const auto t = c->ts(kind);
    if (t && (!best || *t < *best)) best = t;
  }
  return best;
}

std::optional<std::int64_t> AppTimeline::max_worker_ts(EventKind kind) const {
  std::optional<std::int64_t> best;
  for (const ContainerTimeline* c : worker_containers()) {
    const auto t = c->ts(kind);
    if (t && (!best || *t > *best)) best = t;
  }
  return best;
}

bool apply_event(std::map<ApplicationId, AppTimeline>& apps,
                 const SchedEvent& event) {
  return apply_event_impl(apps, event);
}

bool apply_event(AppTable& apps, const SchedEvent& event) {
  return apply_event_impl(apps, event);
}

GroupResult group_events(const std::vector<SchedEvent>& events) {
  GroupResult result;
  for (const SchedEvent& event : events) {
    if (!apply_event(result.apps, event)) ++result.unattributed;
  }
  return result;
}

GroupResult group_events(const EventBatch& events) {
  GroupResult result;
  const std::size_t n = events.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!events.has_app(i)) {
      ++result.unattributed;
      continue;
    }
    apply_event_parts(
        result.apps, events.app_at(i),
        events.has_container(i) ? &events.container_at(i) : nullptr,
        events.kind_at(i), events.ts_at(i));
  }
  return result;
}

std::size_t timeline_shard(const ApplicationId& app, std::size_t shards) {
  return ApplicationIdHash{}(app) % shards;
}

ShardedGroupResult group_events_sharded(const std::vector<SchedEvent>& events,
                                        std::size_t shards, ThreadPool& pool) {
  ShardedGroupResult result;
  result.shards.resize(std::max<std::size_t>(1, shards));
  const std::size_t shard_count = result.shards.size();
  // Written by shard 0's task only; parallel_for's completion barrier
  // orders the write before the read below.
  std::size_t unattributed = 0;
  parallel_for(pool, shard_count, [&](std::size_t s) {
    const auto span = obs::Tracer::global().span("analyze.shard");
    AppTable& apps = result.shards[s];
    for (const SchedEvent& event : events) {
      if (!event.app) {
        // Unattributable events belong to no shard; have exactly one
        // shard count them so the total matches the serial pass.
        if (s == 0) ++unattributed;
        continue;
      }
      if (timeline_shard(*event.app, shard_count) != s) continue;
      apply_event(apps, event);
    }
  });
  result.unattributed = unattributed;
  return result;
}

ShardedGroupResult group_events_sharded(const EventBatch& events,
                                        std::size_t shards, ThreadPool& pool) {
  ShardedGroupResult result;
  result.shards.resize(std::max<std::size_t>(1, shards));
  const std::size_t shard_count = result.shards.size();
  std::size_t unattributed = 0;
  const std::size_t n = events.size();
  parallel_for(pool, shard_count, [&](std::size_t s) {
    const auto span = obs::Tracer::global().span("analyze.shard");
    AppTable& apps = result.shards[s];
    for (std::size_t i = 0; i < n; ++i) {
      if (!events.has_app(i)) {
        if (s == 0) ++unattributed;
        continue;
      }
      const ApplicationId& app = events.app_at(i);
      if (timeline_shard(app, shard_count) != s) continue;
      apply_event_parts(
          apps, app,
          events.has_container(i) ? &events.container_at(i) : nullptr,
          events.kind_at(i), events.ts_at(i));
    }
  });
  result.unattributed = unattributed;
  return result;
}

std::size_t apply_batch_to_shard(const EventBatch& events, AppTable& apps,
                                 std::size_t shard,
                                 std::size_t shard_count) {
  std::size_t unattributed = 0;
  const std::size_t n = events.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!events.has_app(i)) {
      if (shard == 0) ++unattributed;
      continue;
    }
    const ApplicationId& app = events.app_at(i);
    if (timeline_shard(app, shard_count) != shard) continue;
    apply_event_parts(
        apps, app, events.has_container(i) ? &events.container_at(i) : nullptr,
        events.kind_at(i), events.ts_at(i));
  }
  return unattributed;
}

}  // namespace sdc::checker
