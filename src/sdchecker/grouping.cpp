#include "sdchecker/grouping.hpp"

#include <algorithm>

namespace sdc::checker {
namespace {

void record(std::map<EventKind, std::int64_t>& first_ts,
            std::map<EventKind, std::int32_t>& counts, EventKind kind,
            std::int64_t ts) {
  const auto it = first_ts.find(kind);
  if (it == first_ts.end() || ts < it->second) first_ts[kind] = ts;
  ++counts[kind];
}

}  // namespace

std::optional<std::int64_t> ContainerTimeline::ts(EventKind kind) const {
  const auto it = first_ts.find(kind);
  if (it == first_ts.end()) return std::nullopt;
  return it->second;
}

bool ContainerTimeline::has(EventKind kind) const {
  return first_ts.contains(kind);
}

std::optional<std::int64_t> AppTimeline::ts(EventKind kind) const {
  const auto it = first_ts.find(kind);
  if (it == first_ts.end()) return std::nullopt;
  return it->second;
}

bool AppTimeline::has(EventKind kind) const { return first_ts.contains(kind); }

const ContainerTimeline* AppTimeline::am_container() const {
  for (const auto& [id, timeline] : containers) {
    if (id.is_am()) return &timeline;
  }
  return nullptr;
}

std::vector<const ContainerTimeline*> AppTimeline::worker_containers() const {
  std::vector<const ContainerTimeline*> out;
  for (const auto& [id, timeline] : containers) {
    if (!id.is_am()) out.push_back(&timeline);
  }
  return out;  // std::map iteration is already id-ordered
}

std::optional<std::int64_t> AppTimeline::min_worker_ts(EventKind kind) const {
  std::optional<std::int64_t> best;
  for (const ContainerTimeline* c : worker_containers()) {
    const auto t = c->ts(kind);
    if (t && (!best || *t < *best)) best = t;
  }
  return best;
}

std::optional<std::int64_t> AppTimeline::max_worker_ts(EventKind kind) const {
  std::optional<std::int64_t> best;
  for (const ContainerTimeline* c : worker_containers()) {
    const auto t = c->ts(kind);
    if (t && (!best || *t > *best)) best = t;
  }
  return best;
}

bool apply_event(std::map<ApplicationId, AppTimeline>& apps,
                 const SchedEvent& event) {
  if (!event.app) return false;
  AppTimeline& app = apps[*event.app];
  app.app = *event.app;
  if (event.container) {
    ContainerTimeline& container = app.containers[*event.container];
    container.id = *event.container;
    record(container.first_ts, container.counts, event.kind, event.ts_ms);
  } else {
    record(app.first_ts, app.counts, event.kind, event.ts_ms);
  }
  return true;
}

GroupResult group_events(const std::vector<SchedEvent>& events) {
  GroupResult result;
  for (const SchedEvent& event : events) {
    if (!apply_event(result.apps, event)) ++result.unattributed;
  }
  return result;
}

}  // namespace sdc::checker
