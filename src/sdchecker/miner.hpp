// Third stage: mine a whole bundle (or directory) of log files.
//
// Per stream: parse every line, extract identified messages, classify the
// daemon kind from content (never from file names), synthesize the
// FIRST_LOG event for driver/executor streams (Table I messages 9/13 —
// "we use the first log message to mark the successful launching",
// §III-B), and bind stream-scoped events to the application/container id
// discovered anywhere in the stream.
//
// Robustness: the miner never throws on damaged input.  Rotated segments
// (`rm.log.1`, `rm.log.2`, ...) are reassembled into one logical stream
// (oldest suffix first, base last — logrotate order); binary garbage,
// mid-line truncation, unparsable bursts and backwards timestamp jumps
// beyond a skew budget are recorded as typed `logging::Diagnostic`
// records per stream instead of being silently folded into one
// "unparsed" number.
//
// Parallelism is two-level: streams are mined concurrently, and each
// stream is itself split into chunks at line boundaries so one dominant
// stream (the RM log — every application's state machine logs there)
// cannot serialize the run.  Chunks record their first-seen candidates
// (timestamp, kind, ids) and provisional boundary state (open unparsable
// runs, last parsed timestamp); a stitch pass resolves the stream-wide
// values in chunk order, which makes the sharded result — events *and*
// diagnostics — identical to a serial pass.  Each chunk emits a sorted
// event run; runs are combined by k-way merge instead of a global sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "logging/diagnostics.hpp"
#include "logging/log_bundle.hpp"
#include "logging/log_view.hpp"
#include "sdchecker/events.hpp"
#include "sdchecker/extractor.hpp"

namespace sdc::checker {

struct MinerOptions {
  /// Worker threads for mining; 1 = serial.
  std::size_t threads = 1;
  /// Minimum lines per intra-stream chunk.  Streams are split into up to
  /// ~4*threads chunks but never smaller than this, so chunk bookkeeping
  /// cannot dominate short streams.  0 disables intra-stream sharding
  /// (one chunk per stream — the pre-sharding behaviour).
  std::size_t shard_grain = 8192;
  /// A within-stream timestamp going backwards by more than this budget
  /// is reported as a kTimestampRegression diagnostic (NTP step,
  /// interleaved foreign lines).  Smaller jitter is normal (buffered
  /// appenders) and ignored.
  std::int64_t skew_budget_ms = 1000;
  /// Minimum length of a consecutive unparsable-line run reported as a
  /// kUnparsableBurst (stack traces are a few lines; long runs mean a
  /// corrupt or foreign section).
  std::size_t unparsable_burst_min = 4;
  /// Streaming ingestion only (IncrementalAnalyzer/follow mode): maximum
  /// events parked per stream while the stream has not bound to an
  /// application id.  A stream that never binds would otherwise grow its
  /// parked buffer forever in a long-running service; past the cap,
  /// further events are dropped, counted, and reported as one
  /// kUnboundStream diagnostic per stream.  0 = unbounded (the batch
  /// miner's behaviour, which buffers whole streams anyway).
  std::size_t parked_events_cap = 65536;
};

/// Per-stream mining outcome (diagnostics and tests).
struct MinedStream {
  std::string name;
  StreamKind kind = StreamKind::kUnknown;
  /// Events sorted by (ts, line, kind), in columnar storage (see
  /// EventBatch).  `LogMiner::mine` moves these into
  /// `MineResult::events`; they stay populated when `mine_stream` is
  /// called directly.
  EventBatch events;
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;
  std::optional<ApplicationId> bound_app;
  std::optional<ContainerId> bound_container;
  /// Typed findings about this stream's health, in a deterministic order
  /// (independent of sharding).
  std::vector<logging::Diagnostic> diagnostics;
  /// Per-kind totals over `diagnostics`.
  logging::DiagnosticCounts diag_counts;
};

struct MineResult {
  /// All events, ids resolved, sorted by (ts, stream, line), in columnar
  /// storage sharing one interned stream-name pool.
  EventBatch events;
  std::vector<MinedStream> streams;
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;
  /// Bundle-level findings (unreadable files) followed by every stream's
  /// findings in stream order.
  std::vector<logging::Diagnostic> diagnostics;
  logging::DiagnosticCounts diag_counts;
};

/// One corpus's mining work decomposed into schedulable pieces: the
/// stream/chunk structure `LogMiner::mine` runs start-to-finish, exposed
/// so fleet mode (fleet.hpp) can run the chunks of many corpora on one
/// shared pool and stitch each stream — handing its events to grouping —
/// the moment that stream's last chunk completes, instead of waiting for
/// the whole corpus.  Both paths share this one pipeline, so the
/// sharded/serial byte-identity proof covers fleet mining too.
///
/// Protocol: construct over a live BundleView (the view must outlive the
/// plan — chunks alias its lines), call `run_chunk` for every chunk
/// (thread-safe across distinct chunks), and `stitch` each stream exactly
/// once after all of its chunks ran.  `run_chunk` maintains the
/// `mine.lines` / `mine.scan.prefilter_skipped` instruments; the
/// constructor stamps `mine.lines_expected` and the scan-backend counter
/// exactly as one `mine()` call would.
class MinePlan {
 public:
  MinePlan(const logging::BundleView& view, const MinerOptions& options);
  ~MinePlan();
  MinePlan(MinePlan&&) noexcept;
  MinePlan& operator=(MinePlan&&) noexcept;

  [[nodiscard]] std::size_t stream_count() const;
  [[nodiscard]] std::size_t chunk_count() const;
  /// The stream chunk `chunk` belongs to.
  [[nodiscard]] std::size_t stream_of(std::size_t chunk) const;
  /// How many chunks stream `stream` was split into.
  [[nodiscard]] std::size_t chunks_of(std::size_t stream) const;
  /// Streams are in logical-name order (rotated families reassembled).
  [[nodiscard]] const std::string& stream_name(std::size_t stream) const;
  [[nodiscard]] std::size_t stream_lines(std::size_t stream) const;
  /// The interned stream-name pool every produced batch shares.
  [[nodiscard]] const std::shared_ptr<const StringInterner>& interner() const;

  /// Mines one chunk (mutates only that chunk's slot).
  void run_chunk(std::size_t chunk);
  /// Resolves stream-wide state and returns the stitched stream; consumes
  /// the stream's chunk outputs and pre-diagnostics.
  [[nodiscard]] MinedStream stitch(std::size_t stream);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class LogMiner {
 public:
  explicit LogMiner(MinerOptions options = {}) : options_(options) {}

  [[nodiscard]] MineResult mine(const logging::LogBundle& bundle) const;
  /// Zero-copy path: mines mmap-backed (or adapted) line views directly.
  [[nodiscard]] MineResult mine(const logging::BundleView& view) const;
  /// Mines a directory through the mmap-backed view layer.  Unreadable
  /// files become kUnreadableFile diagnostics instead of throwing.
  [[nodiscard]] MineResult mine_directory(
      const std::filesystem::path& dir) const;

  /// Mines one stream in isolation (exposed for unit tests).
  [[nodiscard]] MinedStream mine_stream(
      const std::string& name, const std::vector<std::string>& lines) const;
  [[nodiscard]] MinedStream mine_stream(
      const std::string& name,
      std::span<const std::string_view> lines) const;

 private:
  MinerOptions options_;
};

/// The deterministic total order of `MineResult::events`: (ts, stream,
/// line, kind) — the final kind tiebreak places a synthesized FIRST_LOG
/// ahead of a real event extracted from the same line.
[[nodiscard]] bool event_order_less(const SchedEvent& a, const SchedEvent& b);
[[nodiscard]] bool event_order_less(const EventBatch::View& a,
                                    const EventBatch::View& b);

/// Splits a rotated-segment file name: "rm.log.3" -> {"rm.log", 3}.
/// Returns nullopt for names without an all-digit final component.
struct RotationSuffix {
  std::string base;
  unsigned long index = 0;
};
[[nodiscard]] std::optional<RotationSuffix> split_rotation_suffix(
    std::string_view name);

}  // namespace sdc::checker
