// Third stage: mine a whole bundle (or directory) of log files.
//
// Per stream: parse every line, extract identified messages, classify the
// daemon kind from content (never from file names), synthesize the
// FIRST_LOG event for driver/executor streams (Table I messages 9/13 —
// "we use the first log message to mark the successful launching",
// §III-B), and bind stream-scoped events to the application/container id
// discovered anywhere in the stream.  Streams are mined in parallel
// across a thread pool and merged deterministically.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "logging/log_bundle.hpp"
#include "sdchecker/events.hpp"
#include "sdchecker/extractor.hpp"

namespace sdc::checker {

struct MinerOptions {
  /// Worker threads for per-stream mining; 1 = serial.
  std::size_t threads = 1;
};

/// Per-stream mining outcome (diagnostics and tests).
struct MinedStream {
  std::string name;
  StreamKind kind = StreamKind::kUnknown;
  std::vector<SchedEvent> events;
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;
  std::optional<ApplicationId> bound_app;
  std::optional<ContainerId> bound_container;
};

struct MineResult {
  /// All events, ids resolved, sorted by (ts, stream, line).
  std::vector<SchedEvent> events;
  std::vector<MinedStream> streams;
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;
};

class LogMiner {
 public:
  explicit LogMiner(MinerOptions options = {}) : options_(options) {}

  [[nodiscard]] MineResult mine(const logging::LogBundle& bundle) const;
  [[nodiscard]] MineResult mine_directory(
      const std::filesystem::path& dir) const;

  /// Mines one stream in isolation (exposed for unit tests).
  [[nodiscard]] MinedStream mine_stream(
      const std::string& name, const std::vector<std::string>& lines) const;

 private:
  MinerOptions options_;
};

}  // namespace sdc::checker
