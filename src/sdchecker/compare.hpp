// Run comparison: put two analyses side by side, metric by metric — the
// operator workflow behind every optimization in Table III ("did the
// change move the delay it was supposed to move, and nothing else?").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

/// One metric's side-by-side summary.
struct MetricDelta {
  std::string metric;
  std::size_t n_a = 0;
  std::size_t n_b = 0;
  /// Medians/p95s in seconds; nullopt when the side has no samples.
  std::optional<double> median_a;
  std::optional<double> median_b;
  std::optional<double> p95_a;
  std::optional<double> p95_b;
  /// b/a ratio of medians (nullopt unless both sides have samples and a>0).
  std::optional<double> median_ratio;
};

struct ComparisonResult {
  std::vector<MetricDelta> metrics;
  std::size_t apps_a = 0;
  std::size_t apps_b = 0;

  /// Fixed-width table: metric | A median/p95 | B median/p95 | B/A.
  [[nodiscard]] std::string render_text(const std::string& label_a = "A",
                                        const std::string& label_b = "B") const;

  /// Metrics whose median moved by more than `threshold` (ratio away from
  /// 1.0, e.g. 0.1 = ±10%), largest movement first.
  [[nodiscard]] std::vector<const MetricDelta*> significant(
      double threshold = 0.10) const;
};

/// Compares the aggregate distributions of two analyses.
[[nodiscard]] ComparisonResult compare(const AnalysisResult& a,
                                       const AnalysisResult& b);

// ---------------------------------------------------------------------------
// Distribution drift: the one KS-distance engine behind both CLI entry
// points — `diff` (two result directories, histograms built from the
// analyses in-process) and `fleet --baseline` (current fleet vs a
// committed summary JSON whose histograms were built by a previous run).
// Cumulative fixed-bucket histograms make the two comparable: a baseline
// file carries no raw samples, only bucket counts.

/// One delay component's distribution in portable form: counts per
/// fixed bucket (aligned with `component_bucket_edges_ms()`; the last
/// entry is the overflow bucket), bucketed exactly as the live
/// `sdc.delay.*` histograms bucket their observations.
struct ComponentHistogram {
  std::string metric;
  std::uint64_t count = 0;
  double sum_ms = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// The bucket upper edges (ms, inclusive) every ComponentHistogram uses
/// — `obs::Histogram::default_latency_edges_ms()`.
[[nodiscard]] const std::vector<double>& component_bucket_edges_ms();

/// Buckets every aggregate delay component of `analysis` (samples are
/// seconds; stored as ms).  Built from the analysis itself, not the
/// global metrics registry — the registry accumulates across every
/// corpus analyzed in the process.
[[nodiscard]] std::vector<ComponentHistogram> component_histograms(
    const AnalysisResult& analysis);

/// Two-sample Kolmogorov–Smirnov distance over aligned cumulative
/// buckets: max |CDF_a(edge) - CDF_b(edge)|, in [0, 1].  Zero when
/// either side is empty (no evidence is not drift).
[[nodiscard]] double ks_distance(const std::vector<std::uint64_t>& buckets_a,
                                 const std::vector<std::uint64_t>& buckets_b);

/// Significance threshold for a two-sample KS distance at sample sizes
/// (n, m): the alpha=0.05 asymptotic bound 1.36*sqrt((n+m)/(n*m)),
/// floored at `floor` so huge-sample comparisons do not flag
/// operationally meaningless drift.  Infinite when either side is empty.
[[nodiscard]] double ks_threshold(std::uint64_t n, std::uint64_t m,
                                  double floor = 0.05);

/// One component's drift verdict.
struct ComponentDrift {
  std::string metric;
  std::uint64_t n_a = 0;
  std::uint64_t n_b = 0;
  /// Mean in ms (sum/count); 0 when the side is empty.
  double mean_a_ms = 0.0;
  double mean_b_ms = 0.0;
  double distance = 0.0;
  double threshold = 0.0;
  bool significant = false;
};

struct DriftReport {
  /// One entry per component present on both sides, input (spec) order.
  std::vector<ComponentDrift> components;

  /// Significant drifts, worst offender (largest distance/threshold
  /// ratio) first.
  [[nodiscard]] std::vector<const ComponentDrift*> regressions() const;

  /// Fixed-width table: component | n A/B | mean A/B | KS | threshold |
  /// verdict.
  [[nodiscard]] std::string render_text(
      const std::string& label_a = "baseline",
      const std::string& label_b = "current") const;
};

/// Pairs `a` and `b` by metric name (components missing on either side
/// are skipped — a baseline from an older build is still comparable)
/// and scores each pair.
[[nodiscard]] DriftReport histogram_drift(
    const std::vector<ComponentHistogram>& a,
    const std::vector<ComponentHistogram>& b);

}  // namespace sdc::checker
