// Run comparison: put two analyses side by side, metric by metric — the
// operator workflow behind every optimization in Table III ("did the
// change move the delay it was supposed to move, and nothing else?").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

/// One metric's side-by-side summary.
struct MetricDelta {
  std::string metric;
  std::size_t n_a = 0;
  std::size_t n_b = 0;
  /// Medians/p95s in seconds; nullopt when the side has no samples.
  std::optional<double> median_a;
  std::optional<double> median_b;
  std::optional<double> p95_a;
  std::optional<double> p95_b;
  /// b/a ratio of medians (nullopt unless both sides have samples and a>0).
  std::optional<double> median_ratio;
};

struct ComparisonResult {
  std::vector<MetricDelta> metrics;
  std::size_t apps_a = 0;
  std::size_t apps_b = 0;

  /// Fixed-width table: metric | A median/p95 | B median/p95 | B/A.
  [[nodiscard]] std::string render_text(const std::string& label_a = "A",
                                        const std::string& label_b = "B") const;

  /// Metrics whose median moved by more than `threshold` (ratio away from
  /// 1.0, e.g. 0.1 = ±10%), largest movement first.
  [[nodiscard]] std::vector<const MetricDelta*> significant(
      double threshold = 0.10) const;
};

/// Compares the aggregate distributions of two analyses.
[[nodiscard]] ComparisonResult compare(const AnalysisResult& a,
                                       const AnalysisResult& b);

}  // namespace sdc::checker
