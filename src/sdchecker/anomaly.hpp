// Anomaly detection over application timelines.
//
// The flagship finding is the *never-used container* (paper §V-A /
// SPARK-21562): containers whose RM-side states exist but which show no
// NodeManager or executor activity — Spark requested more containers than
// it launched.  The detector also reports broken event chains (log loss)
// and negative intervals (clock skew between daemons).
#pragma once

#include <string>
#include <vector>

#include "sdchecker/decompose.hpp"
#include "sdchecker/grouping.hpp"

namespace sdc::checker {

enum class AnomalyType {
  /// RM allocated (and possibly acquired) a container that never reached
  /// a NodeManager nor logged executor activity.
  kNeverUsedContainer,
  /// An event chain is broken: a later state exists without the earlier
  /// one (e.g. SCHEDULED without LOCALIZING) — lost or truncated logs.
  kMissingEvent,
  /// A computed delay is negative — daemon clocks disagree.
  kNegativeInterval,
};

std::string_view anomaly_type_name(AnomalyType type);

struct Anomaly {
  AnomalyType type = AnomalyType::kMissingEvent;
  ApplicationId app;
  /// Entity the finding is about ("app" or a container id).
  std::string entity;
  std::string detail;
};

/// Inspects one application; appends findings to `out`.
void detect_anomalies(const AppTimeline& timeline, const Delays& delays,
                      std::vector<Anomaly>& out);

}  // namespace sdc::checker
