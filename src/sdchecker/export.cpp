#include "sdchecker/export.hpp"

#include <cstdio>

#include "common/json.hpp"

namespace sdc::checker {
namespace {

void append_opt(std::string& out, const std::optional<std::int64_t>& value,
                bool trailing_comma = true) {
  if (value) out += std::to_string(*value);
  if (trailing_comma) out += ',';
}

}  // namespace

std::string delays_csv(const AnalysisResult& result) {
  std::string out =
      "app,total_ms,am_ms,cf_ms,cl_ms,cl_minus_cf_ms,driver_ms,executor_ms,"
      "in_app_ms,out_app_ms,alloc_ms\n";
  for (const auto& [app, delays] : result.delays) {
    out += app.str();
    out += ',';
    append_opt(out, delays.total);
    append_opt(out, delays.am);
    append_opt(out, delays.cf);
    append_opt(out, delays.cl);
    append_opt(out, delays.cl_minus_cf);
    append_opt(out, delays.driver);
    append_opt(out, delays.executor);
    append_opt(out, delays.in_app);
    append_opt(out, delays.out_app);
    append_opt(out, delays.alloc, /*trailing_comma=*/false);
    out += '\n';
  }
  return out;
}

std::string containers_csv(const AnalysisResult& result) {
  std::string out =
      "app,container,is_am,acquisition_ms,localization_ms,queuing_ms,"
      "launching_ms\n";
  for (const auto& [app, delays] : result.delays) {
    for (const ContainerDelays& container : delays.containers) {
      out += app.str();
      out += ',';
      out += container.id.str();
      out += ',';
      out += container.is_am ? "1," : "0,";
      append_opt(out, container.acquisition);
      append_opt(out, container.localization);
      append_opt(out, container.queuing);
      append_opt(out, container.launching, /*trailing_comma=*/false);
      out += '\n';
    }
  }
  return out;
}

std::string events_csv(const AnalysisResult& result) {
  std::string out = "app,container,table1,event,epoch_ms\n";
  const auto emit = [&out](const ApplicationId& app, const std::string& cid,
                           EventKind kind, std::int64_t ts) {
    out += app.str();
    out += ',';
    out += cid;
    out += ',';
    out += std::to_string(table1_number(kind));
    out += ',';
    out += event_name(kind);
    out += ',';
    out += std::to_string(ts);
    out += '\n';
  };
  for (const auto& [app, timeline] : result.timelines) {
    for (const auto& [kind, ts] : timeline.first_ts) {
      emit(app, "", kind, ts);
    }
    for (const auto& [cid, container] : timeline.containers) {
      for (const auto& [kind, ts] : container.first_ts) {
        emit(app, cid.str(), kind, ts);
      }
    }
  }
  return out;
}

std::string analysis_json(const AnalysisResult& result) {
  json::Writer w;
  w.begin_object();
  w.key("summary").begin_object();
  w.field("lines_total", static_cast<std::int64_t>(result.lines_total));
  w.field("lines_unparsed", static_cast<std::int64_t>(result.lines_unparsed));
  w.field("events_total", static_cast<std::int64_t>(result.events_total));
  w.field("events_unattributed",
          static_cast<std::int64_t>(result.events_unattributed));
  // `delays` covers retired (evicted-timeline) applications too; in a
  // batch analysis it always equals `timelines.size()`.
  w.field("applications", static_cast<std::int64_t>(result.delays.size()));
  w.field("anomalies", static_cast<std::int64_t>(result.anomalies.size()));
  w.field("diagnostics",
          static_cast<std::int64_t>(result.diag_counts.total()));
  w.end_object();

  // Per-kind totals (always every kind, zero included, so consumers can
  // key on a stable schema) plus the individual records.
  w.key("diagnostics").begin_object();
  w.key("counts").begin_object();
  for (std::size_t i = 0; i < logging::kDiagnosticKindCount; ++i) {
    const auto kind = static_cast<logging::DiagnosticKind>(i);
    w.field(logging::diagnostic_kind_name(kind),
            static_cast<std::int64_t>(result.diag_counts.of(kind)));
  }
  w.end_object();
  w.key("records").begin_array();
  for (const logging::Diagnostic& diagnostic : result.diagnostics) {
    w.begin_object();
    w.field("kind", logging::diagnostic_kind_name(diagnostic.kind));
    w.field("stream", diagnostic.stream);
    w.field("line", static_cast<std::int64_t>(diagnostic.line_no));
    w.field("count", static_cast<std::int64_t>(diagnostic.count));
    w.field("detail", diagnostic.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("aggregate").begin_object();
  for (const auto& [name, set] : result.aggregate.metrics()) {
    w.key(name).begin_object();
    w.field("n", static_cast<std::int64_t>(set->size()));
    if (!set->empty()) {
      w.field("median_s", set->median());
      w.field("p95_s", set->p95());
      w.field("mean_s", set->mean());
      w.field("stddev_s", set->stddev());
    }
    w.end_object();
  }
  w.end_object();

  w.key("apps").begin_array();
  for (const auto& [app, delays] : result.delays) {
    w.begin_object();
    w.field("app", app.str());
    w.field("total_ms", delays.total);
    w.field("am_ms", delays.am);
    w.field("cf_ms", delays.cf);
    w.field("cl_ms", delays.cl);
    w.field("driver_ms", delays.driver);
    w.field("executor_ms", delays.executor);
    w.field("in_app_ms", delays.in_app);
    w.field("out_app_ms", delays.out_app);
    w.field("alloc_ms", delays.alloc);
    w.key("containers").begin_array();
    for (const ContainerDelays& container : delays.containers) {
      w.begin_object();
      w.field("container", container.id.str());
      w.field("is_am", container.is_am);
      w.field("acquisition_ms", container.acquisition);
      w.field("localization_ms", container.localization);
      w.field("queuing_ms", container.queuing);
      w.field("launching_ms", container.launching);
      w.field("executor_idle_ms", container.executor_idle);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("anomalies").begin_array();
  for (const Anomaly& anomaly : result.anomalies) {
    w.begin_object();
    w.field("type", anomaly_type_name(anomaly.type));
    w.field("app", anomaly.app.str());
    w.field("entity", anomaly.entity);
    w.field("detail", anomaly.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string cdf_csv(const SampleSet& samples, std::size_t points) {
  std::string out = "value,probability\n";
  char buf[64];
  for (const auto& [value, probability] : samples.cdf(points)) {
    std::snprintf(buf, sizeof(buf), "%.6f,%.4f\n", value, probability);
    out += buf;
  }
  return out;
}

}  // namespace sdc::checker
