// Online (streaming) variant of the analyzer.
//
// The paper's tool is offline: collect all logs after the runs, then
// mine.  For a monitoring deployment one wants the same decomposition
// while the cluster runs — feeding lines as `tail -f` delivers them.
// The subtlety versus batch mining is ordering: a driver/executor
// stream's FIRST_LOG event and its milestone events arrive *before* the
// line that reveals which application/container the stream belongs to,
// so unbound events are parked per stream and flushed the moment the
// stream binds to an id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "sdchecker/decompose.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

class IncrementalAnalyzer {
 public:
  /// Only `skew_budget_ms` and `unparsable_burst_min` of the options are
  /// meaningful here (feeding is inherently serial).
  explicit IncrementalAnalyzer(MinerOptions options = {})
      : options_(options) {}

  /// Feeds one raw log line belonging to the named stream (file).  Lines
  /// of different streams may interleave arbitrarily; lines within one
  /// stream must arrive in file order (as a tail would deliver them).
  void feed(const std::string& stream, std::string_view line);

  /// Feeds a batch of lines for one stream.
  void feed_all(const std::string& stream,
                const std::vector<std::string>& lines);

  /// Feeds a batch of zero-copy line views (e.g. an mmap-backed
  /// `logging::LogView`) for one stream.
  void feed_all(const std::string& stream,
                std::span<const std::string_view> lines);

  /// Live view of the grouped timelines.  Iteration order is the table's
  /// (stable for a given key set but unordered); sort by `first` when
  /// presenting.
  [[nodiscard]] const AppTable& timelines() const noexcept {
    return timelines_;
  }

  /// Decomposition of one application *as of now* (fields fill in as
  /// events arrive).
  [[nodiscard]] Delays delays_for(const ApplicationId& app) const;

  /// Full snapshot: decompositions, aggregates and anomalies over
  /// everything seen so far.  O(apps) — intended for periodic reporting.
  /// `analyze_shards` > 1 runs the finalize stage sharded on that many
  /// pool threads (0 = one per hardware thread); the report is
  /// byte-identical either way.
  [[nodiscard]] AnalysisResult snapshot(std::size_t analyze_shards = 1) const;

  [[nodiscard]] std::size_t lines_total() const noexcept {
    return lines_total_;
  }
  [[nodiscard]] std::size_t lines_unparsed() const noexcept {
    return lines_unparsed_;
  }
  [[nodiscard]] std::size_t events_total() const noexcept {
    return events_total_;
  }
  /// Events currently parked because their stream has not bound to an
  /// application/container id yet.
  [[nodiscard]] std::size_t events_pending() const;

  /// Typed corpus-health findings accumulated so far, one summary record
  /// per (stream, kind) in stream order — the streaming analogue of
  /// `MineResult::diagnostics`.  A burst still open at call time (the
  /// stream currently ends in unparsable lines) is included.
  [[nodiscard]] std::vector<logging::Diagnostic> diagnostics() const;
  [[nodiscard]] logging::DiagnosticCounts diag_counts() const;

 private:
  struct StreamState {
    StreamKind kind = StreamKind::kUnknown;
    std::size_t line_no = 0;
    bool first_log_pending = false;
    bool first_log_done = false;
    std::int64_t first_parsed_ts = 0;
    std::optional<ApplicationId> bound_app;
    std::optional<ContainerId> bound_container;
    /// Stream-scoped events waiting for the stream to bind.
    std::vector<SchedEvent> parked;

    // Diagnostics bookkeeping (line numbers 1-based).
    std::size_t garbage_count = 0;
    std::size_t garbage_first_line = 0;
    std::size_t truncated_count = 0;
    std::size_t truncated_first_line = 0;
    std::size_t burst_count = 0;
    std::size_t burst_lines = 0;
    std::size_t burst_first_line = 0;
    std::size_t open_run_start = 0;
    std::size_t open_run_len = 0;
    std::optional<std::int64_t> last_parsed_ts;
    std::size_t regression_count = 0;
    std::size_t regression_first_line = 0;
    std::int64_t regression_max_ms = 0;
  };

  /// Resolves (or parks) one stream-scoped event.
  void dispatch(StreamState& state, SchedEvent event);
  /// Called when a stream just bound; flushes parked events.
  void flush_parked(StreamState& state);

  MinerOptions options_;
  /// Hot per-line lookup — flat hash table, name-sorted only when a
  /// diagnostics report is cut.
  FlatHashMap<std::string, StreamState, StringHash> streams_;
  AppTable timelines_;
  std::size_t lines_total_ = 0;
  std::size_t lines_unparsed_ = 0;
  std::size_t events_total_ = 0;
};

}  // namespace sdc::checker
