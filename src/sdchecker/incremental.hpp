// Online (streaming) variant of the analyzer.
//
// The paper's tool is offline: collect all logs after the runs, then
// mine.  For a monitoring deployment one wants the same decomposition
// while the cluster runs — feeding lines as `tail -f` delivers them.
// The subtlety versus batch mining is ordering: a driver/executor
// stream's FIRST_LOG event and its milestone events arrive *before* the
// line that reveals which application/container the stream belongs to,
// so unbound events are parked per stream and flushed the moment the
// stream binds to an id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "sdchecker/decompose.hpp"
#include "sdchecker/extractor.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

class IncrementalAnalyzer {
 public:
  /// Only `skew_budget_ms`, `unparsable_burst_min` and
  /// `parked_events_cap` of the options are meaningful here (feeding is
  /// inherently serial).
  explicit IncrementalAnalyzer(MinerOptions options = {})
      : options_(options) {}

  /// Feeds one raw log line belonging to the named stream (file).  Lines
  /// of different streams may interleave arbitrarily; lines within one
  /// stream must arrive in file order (as a tail would deliver them).
  /// A trailing '\r' (CRLF-terminated logs) is stripped, matching the
  /// batch read path.
  void feed(const std::string& stream, std::string_view line);

  /// Feeds a batch of lines for one stream.
  void feed_all(const std::string& stream,
                const std::vector<std::string>& lines);

  /// Feeds a batch of zero-copy line views (e.g. an mmap-backed
  /// `logging::LogView`) for one stream.
  void feed_all(const std::string& stream,
                std::span<const std::string_view> lines);

  /// Live view of the grouped timelines.  Iteration order is the table's
  /// (stable for a given key set but unordered); sort by `first` when
  /// presenting.
  [[nodiscard]] const AppTable& timelines() const noexcept {
    return timelines_;
  }

  /// Decomposition of one application *as of now* (fields fill in as
  /// events arrive).
  [[nodiscard]] Delays delays_for(const ApplicationId& app) const;

  /// Full snapshot: decompositions, aggregates and anomalies over
  /// everything seen so far — retired applications included, folded into
  /// the delays/aggregate/anomaly outputs at their app-ID position.
  /// O(apps) — intended for periodic reporting.  `analyze_shards` > 1
  /// runs the finalize stage sharded on that many pool threads (0 = one
  /// per hardware thread); the report is byte-identical either way.
  [[nodiscard]] AnalysisResult snapshot(std::size_t analyze_shards = 1) const;

  // --- bounded-memory eviction (the follow service's discipline) ------
  //
  // A long-running ingestion loop cannot keep every application's full
  // timeline forever.  The loop advances a tick per poll; an application
  // whose terminal state-machine transition (RMAppImpl -> FINISHED) has
  // been mined and that has then stayed quiet for `quiet_ticks` ticks is
  // *retired*: its decomposition and anomaly findings are computed once
  // and cached in a RetiredTable, and the full timeline is freed.  An
  // event arriving for an already-retired application is dropped and
  // counted (`events_late_dropped`) — the grace period exists precisely
  // to make that a pathological case.

  /// Advances the eviction clock; call once per ingestion poll.
  void advance_tick() noexcept { ++tick_; }

  /// Retires every terminal application that has been quiet for at least
  /// `quiet_ticks` ticks; returns how many were retired now.
  std::size_t retire_terminal(std::uint64_t quiet_ticks);

  /// Retired rows in app-ID order.
  [[nodiscard]] const RetiredTable& retired() const noexcept {
    return retired_;
  }
  /// Applications retired so far (== retired().size()).
  [[nodiscard]] std::size_t apps_retired() const noexcept {
    return retired_.size();
  }
  /// Applications whose full timelines are still resident.
  [[nodiscard]] std::size_t apps_resident() const noexcept {
    return timelines_.size();
  }
  /// Events dropped because they arrived after their application was
  /// retired (0 unless the eviction grace was too aggressive).
  [[nodiscard]] std::size_t events_late_dropped() const noexcept {
    return events_late_dropped_;
  }

  [[nodiscard]] std::size_t lines_total() const noexcept {
    return lines_total_;
  }
  [[nodiscard]] std::size_t lines_unparsed() const noexcept {
    return lines_unparsed_;
  }
  /// Every event extracted so far — applied, parked, or dropped under
  /// the parked cap — matching the batch miner's event count.
  [[nodiscard]] std::size_t events_total() const noexcept {
    return events_total_;
  }
  /// Events not attributed to any application: currently parked because
  /// their stream has not bound yet, plus events dropped when a stream's
  /// parked buffer overflowed `MinerOptions::parked_events_cap`.
  [[nodiscard]] std::size_t events_pending() const;

  /// Typed corpus-health findings accumulated so far, one summary record
  /// per (stream, kind) in stream order — the streaming analogue of
  /// `MineResult::diagnostics`.  A burst still open at call time (the
  /// stream currently ends in unparsable lines) is included.
  [[nodiscard]] std::vector<logging::Diagnostic> diagnostics() const;
  [[nodiscard]] logging::DiagnosticCounts diag_counts() const;

 private:
  struct StreamState {
    StreamKind kind = StreamKind::kUnknown;
    std::size_t line_no = 0;
    bool first_log_pending = false;
    bool first_log_done = false;
    std::int64_t first_parsed_ts = 0;
    std::optional<ApplicationId> bound_app;
    std::optional<ContainerId> bound_container;
    /// Stream-scoped events waiting for the stream to bind, capped at
    /// `MinerOptions::parked_events_cap`.
    std::vector<SchedEvent> parked;
    /// Events dropped past the cap (reported as one kUnboundStream
    /// diagnostic per stream).
    std::size_t parked_dropped = 0;
    std::size_t parked_dropped_first_line = 0;

    // Diagnostics bookkeeping (line numbers 1-based).
    std::size_t garbage_count = 0;
    std::size_t garbage_first_line = 0;
    std::size_t truncated_count = 0;
    std::size_t truncated_first_line = 0;
    std::size_t burst_count = 0;
    std::size_t burst_lines = 0;
    std::size_t burst_first_line = 0;
    std::size_t open_run_start = 0;
    std::size_t open_run_len = 0;
    std::optional<std::int64_t> last_parsed_ts;
    std::size_t regression_count = 0;
    std::size_t regression_first_line = 0;
    std::int64_t regression_max_ms = 0;
  };

  /// Per-application eviction bookkeeping, erased on retirement.
  struct AppActivity {
    std::uint64_t last_tick = 0;
    bool terminal = false;
  };

  /// Counts one newly extracted event, then resolves or parks it.
  void dispatch(StreamState& state, SchedEvent event);
  /// Applies a (new or previously parked) event, or parks/drops it when
  /// the stream has no application id yet.  Does not touch
  /// `events_total_` — events are counted exactly once, in `dispatch`.
  void resolve_or_park(StreamState& state, SchedEvent event);
  /// Called when a stream just bound; flushes parked events.
  void flush_parked(StreamState& state);

  MinerOptions options_;
  /// Hot per-line lookup — flat hash table, name-sorted only when a
  /// diagnostics report is cut.
  FlatHashMap<std::string, StreamState, StringHash> streams_;
  AppTable timelines_;
  FlatHashMap<ApplicationId, AppActivity, ApplicationIdHash> activity_;
  RetiredTable retired_;
  std::uint64_t tick_ = 0;
  std::size_t lines_total_ = 0;
  std::size_t lines_unparsed_ = 0;
  std::size_t events_total_ = 0;
  std::size_t events_late_dropped_ = 0;
};

}  // namespace sdc::checker
