// The event vocabulary of the analysis: Table I's 14 identified log
// messages plus a few auxiliary events (container completion/release,
// application finish) that the scheduling graph and the anomaly detector
// use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/ids.hpp"

namespace sdc::checker {

enum class EventKind {
  // Table I, rows 1-14.
  kAppSubmitted = 1,        // RMAppImpl -> SUBMITTED
  kAppAccepted = 2,         // RMAppImpl -> ACCEPTED
  kAttemptRegistered = 3,   // RMAppImpl -> RUNNING on ATTEMPT_REGISTERED
  kContainerAllocated = 4,  // RMContainerImpl -> ALLOCATED
  kContainerAcquired = 5,   // RMContainerImpl -> ACQUIRED
  kNmLocalizing = 6,        // ContainerImpl -> LOCALIZING
  kNmScheduled = 7,         // ContainerImpl -> SCHEDULED
  kNmRunning = 8,           // ContainerImpl -> RUNNING
  kDriverFirstLog = 9,      // first line of a driver log
  kDriverRegister = 10,     // driver registers with the RM
  kStartAllo = 11,          // manually added: allocation batch starts
  kEndAllo = 12,            // manually added: all requested granted
  kExecutorFirstLog = 13,   // first line of an executor log
  kExecutorFirstTask = 14,  // "Got assigned task"
  // Auxiliary (beyond Table I).
  kRmContainerRunning = 20,
  kRmContainerCompleted = 21,
  kRmContainerReleased = 22,
  kNmExited = 23,
  kAppFinished = 24,
  kNmFailed = 25,
};

/// One slot per possible enumerator value — the timeline types store
/// per-kind state in dense arrays indexed by `int(kind)` with a 32-bit
/// presence bitset, so every enumerator must stay below 32.  Grow this
/// (and the bitset type in grouping.hpp) together with the enum.
inline constexpr std::size_t kEventKindSlots = 26;

/// Short stable name for reports and DOT labels ("SUBMITTED",
/// "FIRST_TASK", ...), following the paper's Table I naming.
std::string_view event_name(EventKind kind);

/// Table I message number (1-14), or 0 for auxiliary events.
std::int32_t table1_number(EventKind kind);

/// Every EventKind, in enumerator order — the vocabulary sdlint checks
/// coverage against.
std::span<const EventKind> all_event_kinds();

/// Inverse of event_name() (exact match), for resolving the `emits`
/// annotations on transition tables and milestone specs.
std::optional<EventKind> event_from_name(std::string_view name);

/// One extracted scheduling event.
struct SchedEvent {
  EventKind kind = EventKind::kAppSubmitted;
  std::int64_t ts_ms = 0;
  /// Owning application (always known once grouping resolves it; may be
  /// unset straight out of the extractor for container events).
  std::optional<ApplicationId> app;
  /// Owning container, for container-scoped events.
  std::optional<ContainerId> container;
  /// Which log stream produced the event (file name).
  std::string stream;
  /// 1-based line number within the stream.
  std::size_t line_no = 0;
};

/// True for events scoped to a container rather than the application.
bool is_container_event(EventKind kind);

}  // namespace sdc::checker
