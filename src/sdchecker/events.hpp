// The event vocabulary of the analysis: Table I's 14 identified log
// messages plus a few auxiliary events (container completion/release,
// application finish) that the scheduling graph and the anomaly detector
// use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/interner.hpp"

namespace sdc::checker {

enum class EventKind {
  // Table I, rows 1-14.
  kAppSubmitted = 1,        // RMAppImpl -> SUBMITTED
  kAppAccepted = 2,         // RMAppImpl -> ACCEPTED
  kAttemptRegistered = 3,   // RMAppImpl -> RUNNING on ATTEMPT_REGISTERED
  kContainerAllocated = 4,  // RMContainerImpl -> ALLOCATED
  kContainerAcquired = 5,   // RMContainerImpl -> ACQUIRED
  kNmLocalizing = 6,        // ContainerImpl -> LOCALIZING
  kNmScheduled = 7,         // ContainerImpl -> SCHEDULED
  kNmRunning = 8,           // ContainerImpl -> RUNNING
  kDriverFirstLog = 9,      // first line of a driver log
  kDriverRegister = 10,     // driver registers with the RM
  kStartAllo = 11,          // manually added: allocation batch starts
  kEndAllo = 12,            // manually added: all requested granted
  kExecutorFirstLog = 13,   // first line of an executor log
  kExecutorFirstTask = 14,  // "Got assigned task"
  // Auxiliary (beyond Table I).
  kRmContainerRunning = 20,
  kRmContainerCompleted = 21,
  kRmContainerReleased = 22,
  kNmExited = 23,
  kAppFinished = 24,
  kNmFailed = 25,
};

/// One slot per possible enumerator value — the timeline types store
/// per-kind state in dense arrays indexed by `int(kind)` with a 32-bit
/// presence bitset, so every enumerator must stay below 32.  Grow this
/// (and the bitset type in grouping.hpp) together with the enum.
inline constexpr std::size_t kEventKindSlots = 26;

/// Short stable name for reports and DOT labels ("SUBMITTED",
/// "FIRST_TASK", ...), following the paper's Table I naming.
std::string_view event_name(EventKind kind);

/// Table I message number (1-14), or 0 for auxiliary events.
std::int32_t table1_number(EventKind kind);

/// Every EventKind, in enumerator order — the vocabulary sdlint checks
/// coverage against.
std::span<const EventKind> all_event_kinds();

/// Inverse of event_name() (exact match), for resolving the `emits`
/// annotations on transition tables and milestone specs.
std::optional<EventKind> event_from_name(std::string_view name);

/// One extracted scheduling event.
struct SchedEvent {
  EventKind kind = EventKind::kAppSubmitted;
  std::int64_t ts_ms = 0;
  /// Owning application (always known once grouping resolves it; may be
  /// unset straight out of the extractor for container events).
  std::optional<ApplicationId> app;
  /// Owning container, for container-scoped events.
  std::optional<ContainerId> container;
  /// Which log stream produced the event (file name).
  std::string stream;
  /// 1-based line number within the stream.
  std::size_t line_no = 0;
};

/// True for events scoped to a container rather than the application.
bool is_container_event(EventKind kind);

/// Columnar (structure-of-arrays) event storage — the miner's working
/// representation.  One parallel array per field; the stream name is an
/// id into a shared `StringInterner` pool instead of a per-event
/// `std::string`, so pushing an event allocates nothing and the sort and
/// k-way-merge keys (ts, stream, line, kind) are read from contiguous
/// arrays.  `operator[]` materializes a `View` with the same field names
/// as `SchedEvent`, which keeps consumer code (`events[i].kind`,
/// range-for) unchanged.
class EventBatch {
 public:
  EventBatch() = default;
  explicit EventBatch(std::shared_ptr<const StringInterner> pool)
      : pool_(std::move(pool)) {}

  /// Row view; field names mirror SchedEvent (`stream` resolves through
  /// the pool and stays valid for the pool's lifetime).
  struct View {
    EventKind kind = EventKind::kAppSubmitted;
    std::int64_t ts_ms = 0;
    std::optional<ApplicationId> app;
    std::optional<ContainerId> container;
    std::string_view stream;
    std::size_t line_no = 0;
  };

  void push(EventKind kind, std::int64_t ts_ms, std::uint32_t stream_id,
            std::size_t line_no, const std::optional<ApplicationId>& app,
            const std::optional<ContainerId>& container);

  /// Copies row `i` of `src` (which must share this batch's pool).
  void append_row(const EventBatch& src, std::size_t i);

  [[nodiscard]] std::size_t size() const { return kinds_.size(); }
  [[nodiscard]] bool empty() const { return kinds_.empty(); }
  void reserve(std::size_t n);
  void clear();

  [[nodiscard]] View operator[](std::size_t i) const;

  // Columnar accessors — the grouping stage and the merge comparator
  // read these directly instead of materializing Views.
  [[nodiscard]] EventKind kind_at(std::size_t i) const {
    return static_cast<EventKind>(kinds_[i]);
  }
  [[nodiscard]] std::int64_t ts_at(std::size_t i) const { return ts_[i]; }
  [[nodiscard]] std::uint32_t stream_id_at(std::size_t i) const {
    return streams_[i];
  }
  [[nodiscard]] std::string_view stream_name(std::size_t i) const {
    return pool_->name(streams_[i]);
  }
  [[nodiscard]] std::size_t line_at(std::size_t i) const { return lines_[i]; }
  [[nodiscard]] bool has_app(std::size_t i) const {
    return (flags_[i] & kHasApp) != 0;
  }
  [[nodiscard]] const ApplicationId& app_at(std::size_t i) const {
    return apps_[i];
  }
  [[nodiscard]] bool has_container(std::size_t i) const {
    return (flags_[i] & kHasContainer) != 0;
  }
  [[nodiscard]] const ContainerId& container_at(std::size_t i) const {
    return containers_[i];
  }

  /// Late binding of stream-scoped events (the miner's stitch pass).
  void set_app(std::size_t i, const ApplicationId& app) {
    apps_[i] = app;
    flags_[i] |= kHasApp;
  }
  void set_container(std::size_t i, const ContainerId& container) {
    containers_[i] = container;
    flags_[i] |= kHasContainer;
  }

  /// Strict weak order on rows: (ts, stream, line, kind) — the same
  /// total order as `event_order_less` on SchedEvent.  Stream order is
  /// by *name*; equal ids short-circuit the string compare.
  [[nodiscard]] static bool row_less(const EventBatch& a, std::size_t i,
                                     const EventBatch& b, std::size_t j);

  /// Sorts rows into `row_less` order via an index sort plus one gather
  /// pass per column (cache-linear; rows never move pairwise).
  void sort();

  [[nodiscard]] const std::shared_ptr<const StringInterner>& pool() const {
    return pool_;
  }

  /// Input iterator yielding Views by value — enough for range-for and
  /// the <algorithm> consumers the tests use.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = View;
    using reference = View;
    using pointer = void;
    using difference_type = std::ptrdiff_t;

    const_iterator(const EventBatch* batch, std::size_t i)
        : batch_(batch), i_(i) {}
    View operator*() const { return (*batch_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const EventBatch* batch_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

 private:
  static constexpr std::uint8_t kHasApp = 1;
  static constexpr std::uint8_t kHasContainer = 2;

  std::shared_ptr<const StringInterner> pool_;
  std::vector<std::uint8_t> kinds_;
  std::vector<std::int64_t> ts_;
  std::vector<std::uint32_t> streams_;
  std::vector<std::size_t> lines_;
  std::vector<std::uint8_t> flags_;
  /// Absent ids keep a default-constructed placeholder so every column
  /// stays index-aligned.
  std::vector<ApplicationId> apps_;
  std::vector<ContainerId> containers_;
};

/// K-way merges already-sorted batches (all sharing one pool) into one
/// batch in `row_less` order.
[[nodiscard]] EventBatch merge_event_batches(std::vector<EventBatch> runs);

}  // namespace sdc::checker
