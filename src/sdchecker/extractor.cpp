#include "sdchecker/extractor.hpp"

#include <unordered_map>

#include "common/strings.hpp"

namespace sdc::checker {
namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// Extracts the token following `marker` up to the next space (or end).
std::string_view word_after(std::string_view text, std::string_view marker) {
  const std::size_t pos = text.find(marker);
  if (pos == std::string_view::npos) return {};
  std::size_t start = pos + marker.size();
  std::size_t end = start;
  while (end < text.size() && text[end] != ' ') ++end;
  return text.substr(start, end - start);
}

std::optional<SchedEvent> make_event(EventKind kind, const ParsedLine& line,
                                     std::string_view stream,
                                     std::size_t line_no,
                                     std::optional<ApplicationId> app,
                                     std::optional<ContainerId> container) {
  SchedEvent event;
  event.kind = kind;
  event.ts_ms = line.epoch_ms;
  event.app = app;
  event.container = container;
  event.stream = std::string(stream);
  event.line_no = line_no;
  return event;
}

}  // namespace

std::string_view stream_kind_name(StreamKind kind) {
  switch (kind) {
    case StreamKind::kUnknown:
      return "unknown";
    case StreamKind::kResourceManager:
      return "resourcemanager";
    case StreamKind::kNodeManager:
      return "nodemanager";
    case StreamKind::kDriver:
      return "driver";
    case StreamKind::kExecutor:
      return "executor";
  }
  return "?";
}

std::optional<ApplicationId> find_application_id(std::string_view message) {
  const std::string_view token = find_token_with_prefix(message, "application_");
  if (!token.empty()) return ApplicationId::parse(token);
  // appattempt_<clusterTs>_<appId>_<attempt> embeds the application id.
  const std::string_view attempt = find_token_with_prefix(message, "appattempt_");
  if (attempt.empty()) return std::nullopt;
  const auto parts = split(attempt, '_');
  if (parts.size() != 4) return std::nullopt;
  const std::string rebuilt =
      "application_" + std::string(parts[1]) + "_" + std::string(parts[2]);
  return ApplicationId::parse(rebuilt);
}

std::optional<ContainerId> find_container_id(std::string_view message) {
  const std::string_view token = find_token_with_prefix(message, "container_");
  if (token.empty()) return std::nullopt;
  return ContainerId::parse(token);
}

std::optional<Transition> parse_transition(std::string_view message) {
  // Both YARN phrasings: "State change from A to B on event = E",
  // "Container Transitioned from A to B", "... transitioned from A to B".
  const std::size_t from_pos = message.find("from ");
  if (from_pos == std::string_view::npos) return std::nullopt;
  std::size_t from_start = from_pos + 5;
  const std::size_t to_pos = message.find(" to ", from_start);
  if (to_pos == std::string_view::npos) return std::nullopt;
  Transition out;
  out.from = message.substr(from_start, to_pos - from_start);
  std::size_t to_start = to_pos + 4;
  std::size_t to_end = to_start;
  while (to_end < message.size() && message[to_end] != ' ') ++to_end;
  out.to = message.substr(to_start, to_end - to_start);
  if (out.from.empty() || out.to.empty()) return std::nullopt;
  return out;
}

namespace {

// --- per-class extractors, dispatched on the short logger-class name --------

std::optional<SchedEvent> extract_rm_app(const ParsedLine& line,
                                         std::string_view stream,
                                         std::size_t line_no) {
  const std::string_view msg = line.message;
  const auto transition = parse_transition(msg);
  if (!transition) return std::nullopt;
  const auto app = find_application_id(msg);
  if (!app) return std::nullopt;
  if (transition->to == "SUBMITTED") {
    return make_event(EventKind::kAppSubmitted, line, stream, line_no, app,
                      std::nullopt);
  }
  if (transition->to == "ACCEPTED") {
    return make_event(EventKind::kAppAccepted, line, stream, line_no, app,
                      std::nullopt);
  }
  if (transition->to == "RUNNING" && contains(msg, "ATTEMPT_REGISTERED")) {
    return make_event(EventKind::kAttemptRegistered, line, stream, line_no,
                      app, std::nullopt);
  }
  if (transition->to == "FINISHED") {
    return make_event(EventKind::kAppFinished, line, stream, line_no, app,
                      std::nullopt);
  }
  return std::nullopt;
}

std::optional<SchedEvent> extract_rm_container(const ParsedLine& line,
                                               std::string_view stream,
                                               std::size_t line_no) {
  const std::string_view msg = line.message;
  const auto transition = parse_transition(msg);
  if (!transition) return std::nullopt;
  const auto container = find_container_id(msg);
  if (!container) return std::nullopt;
  const auto app = std::optional<ApplicationId>(container->app);
  if (transition->to == "ALLOCATED") {
    return make_event(EventKind::kContainerAllocated, line, stream, line_no,
                      app, container);
  }
  if (transition->to == "ACQUIRED") {
    return make_event(EventKind::kContainerAcquired, line, stream, line_no,
                      app, container);
  }
  if (transition->to == "RUNNING") {
    return make_event(EventKind::kRmContainerRunning, line, stream, line_no,
                      app, container);
  }
  if (transition->to == "COMPLETED") {
    return make_event(EventKind::kRmContainerCompleted, line, stream, line_no,
                      app, container);
  }
  if (transition->to == "RELEASED") {
    return make_event(EventKind::kRmContainerReleased, line, stream, line_no,
                      app, container);
  }
  return std::nullopt;
}

std::optional<SchedEvent> extract_nm_container(const ParsedLine& line,
                                               std::string_view stream,
                                               std::size_t line_no) {
  const std::string_view msg = line.message;
  const auto transition = parse_transition(msg);
  if (!transition) return std::nullopt;
  const auto container = find_container_id(msg);
  if (!container) return std::nullopt;
  const auto app = std::optional<ApplicationId>(container->app);
  if (transition->to == "LOCALIZING") {
    return make_event(EventKind::kNmLocalizing, line, stream, line_no, app,
                      container);
  }
  if (transition->to == "SCHEDULED") {
    return make_event(EventKind::kNmScheduled, line, stream, line_no, app,
                      container);
  }
  if (transition->to == "RUNNING") {
    return make_event(EventKind::kNmRunning, line, stream, line_no, app,
                      container);
  }
  if (transition->to == "EXITED_WITH_SUCCESS") {
    return make_event(EventKind::kNmExited, line, stream, line_no, app,
                      container);
  }
  if (transition->to == "EXITED_WITH_FAILURE") {
    return make_event(EventKind::kNmFailed, line, stream, line_no, app,
                      container);
  }
  return std::nullopt;
}

std::optional<SchedEvent> extract_am_register(const ParsedLine& line,
                                              std::string_view stream,
                                              std::size_t line_no) {
  const std::string_view msg = line.message;
  if (contains(msg, "Registering the ApplicationMaster") ||
      contains(msg, "Registering with the ResourceManager")) {
    // App id is not in this message; the miner binds it stream-wide.
    return make_event(EventKind::kDriverRegister, line, stream, line_no,
                      std::nullopt, std::nullopt);
  }
  return std::nullopt;
}

std::optional<SchedEvent> extract_allocator(const ParsedLine& line,
                                            std::string_view stream,
                                            std::size_t line_no) {
  const std::string_view msg = line.message;
  if (contains(msg, "START_ALLO")) {
    return make_event(EventKind::kStartAllo, line, stream, line_no,
                      std::nullopt, std::nullopt);
  }
  if (contains(msg, "END_ALLO")) {
    return make_event(EventKind::kEndAllo, line, stream, line_no,
                      std::nullopt, std::nullopt);
  }
  return std::nullopt;
}

std::optional<SchedEvent> extract_executor(const ParsedLine& line,
                                           std::string_view stream,
                                           std::size_t line_no) {
  const std::string_view msg = line.message;
  if (contains(msg, "Got assigned task")) {
    const std::string_view tid = word_after(msg, "Got assigned task ");
    (void)tid;
    return make_event(EventKind::kExecutorFirstTask, line, stream, line_no,
                      std::nullopt, std::nullopt);
  }
  return std::nullopt;
}

/// Dispatch entry for one diagnostic logger class: the daemon kind it
/// implies, and the Table-I extractor handling its messages (null for
/// classes that only classify).
struct ClassDispatch {
  StreamKind kind = StreamKind::kUnknown;
  std::optional<SchedEvent> (*extract)(const ParsedLine&, std::string_view,
                                       std::size_t) = nullptr;
};

/// One hash lookup replaces the chained string compares on the miner's
/// hottest path (every parsed line goes through classify + extract).
const std::unordered_map<std::string_view, ClassDispatch>& dispatch_table() {
  static const std::unordered_map<std::string_view, ClassDispatch> kTable = {
      // ResourceManager classes.
      {"RMAppImpl", {StreamKind::kResourceManager, &extract_rm_app}},
      {"RMContainerImpl", {StreamKind::kResourceManager, &extract_rm_container}},
      {"CapacityScheduler", {StreamKind::kResourceManager, nullptr}},
      {"ClientRMService", {StreamKind::kResourceManager, nullptr}},
      {"OpportunisticContainerAllocatorAMService",
       {StreamKind::kResourceManager, nullptr}},
      // NodeManager classes.
      {"ContainerImpl", {StreamKind::kNodeManager, &extract_nm_container}},
      {"ResourceLocalizationService", {StreamKind::kNodeManager, nullptr}},
      {"ContainerScheduler", {StreamKind::kNodeManager, nullptr}},
      // Driver-side classes (Spark driver or MR AppMaster).
      {"ApplicationMaster", {StreamKind::kDriver, &extract_am_register}},
      {"MRAppMaster", {StreamKind::kDriver, &extract_am_register}},
      {"YarnAllocator", {StreamKind::kDriver, &extract_allocator}},
      {"SparkContext", {StreamKind::kDriver, nullptr}},
      {"TaskSetManager", {StreamKind::kDriver, nullptr}},
      {"YarnSchedulerBackend", {StreamKind::kDriver, nullptr}},
      // Executor-side classes (Spark executor or MR task).
      {"CoarseGrainedExecutorBackend", {StreamKind::kExecutor, &extract_executor}},
      {"Executor", {StreamKind::kExecutor, nullptr}},
      {"YarnChild", {StreamKind::kExecutor, nullptr}},
  };
  return kTable;
}

}  // namespace

StreamKind classify_line(const ParsedLine& line) {
  const auto& table = dispatch_table();
  const auto it = table.find(short_class_name(line.logger));
  return it == table.end() ? StreamKind::kUnknown : it->second.kind;
}

std::optional<SchedEvent> extract_event(const ParsedLine& line,
                                        std::string_view stream,
                                        std::size_t line_no) {
  const auto& table = dispatch_table();
  const auto it = table.find(short_class_name(line.logger));
  if (it == table.end() || it->second.extract == nullptr) return std::nullopt;
  return it->second.extract(line, stream, line_no);
}

}  // namespace sdc::checker
