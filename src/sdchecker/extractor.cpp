#include "sdchecker/extractor.hpp"

#include <array>

#include "common/strings.hpp"

namespace sdc::checker {
namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::optional<SchedEvent> make_event(EventKind kind, const ParsedLine& line,
                                     std::string_view stream,
                                     std::size_t line_no,
                                     std::optional<ApplicationId> app,
                                     std::optional<ContainerId> container) {
  SchedEvent event;
  event.kind = kind;
  event.ts_ms = line.epoch_ms;
  event.app = app;
  event.container = container;
  event.stream = std::string(stream);
  event.line_no = line_no;
  return event;
}

}  // namespace

std::string_view stream_kind_name(StreamKind kind) {
  switch (kind) {
    case StreamKind::kUnknown:
      return "unknown";
    case StreamKind::kResourceManager:
      return "resourcemanager";
    case StreamKind::kNodeManager:
      return "nodemanager";
    case StreamKind::kDriver:
      return "driver";
    case StreamKind::kExecutor:
      return "executor";
  }
  return "?";
}

std::optional<ApplicationId> find_application_id(std::string_view message) {
  const std::string_view token = find_token_with_prefix(message, "application_");
  if (!token.empty()) return ApplicationId::parse(token);
  // appattempt_<clusterTs>_<appId>_<attempt> embeds the application id.
  const std::string_view attempt = find_token_with_prefix(message, "appattempt_");
  if (attempt.empty()) return std::nullopt;
  const auto parts = split(attempt, '_');
  if (parts.size() != 4) return std::nullopt;
  const std::string rebuilt =
      "application_" + std::string(parts[1]) + "_" + std::string(parts[2]);
  return ApplicationId::parse(rebuilt);
}

std::optional<ContainerId> find_container_id(std::string_view message) {
  const std::string_view token = find_token_with_prefix(message, "container_");
  if (token.empty()) return std::nullopt;
  return ContainerId::parse(token);
}

std::optional<Transition> parse_transition(std::string_view message) {
  // Both YARN phrasings: "State change from A to B on event = E",
  // "Container Transitioned from A to B", "... transitioned from A to B".
  const std::size_t from_pos = message.find("from ");
  if (from_pos == std::string_view::npos) return std::nullopt;
  std::size_t from_start = from_pos + 5;
  const std::size_t to_pos = message.find(" to ", from_start);
  if (to_pos == std::string_view::npos) return std::nullopt;
  Transition out;
  out.from = message.substr(from_start, to_pos - from_start);
  std::size_t to_start = to_pos + 4;
  std::size_t to_end = to_start;
  while (to_end < message.size() && message[to_end] != ' ') ++to_end;
  out.to = message.substr(to_start, to_end - to_start);
  if (out.from.empty() || out.to.empty()) return std::nullopt;
  return out;
}

namespace {

// --- the declarative pattern tables -----------------------------------------

/// Every logger class the classifier recognizes, and the daemon kind it
/// implies.  Classes with no rules below only classify.
constexpr ClassKind kClassKinds[] = {
    // ResourceManager classes.
    {"RMAppImpl", StreamKind::kResourceManager},
    {"RMContainerImpl", StreamKind::kResourceManager},
    {"CapacityScheduler", StreamKind::kResourceManager},
    {"ClientRMService", StreamKind::kResourceManager},
    {"RMAppAttemptImpl", StreamKind::kResourceManager},
    {"OpportunisticContainerAllocatorAMService", StreamKind::kResourceManager},
    // NodeManager classes.
    {"ContainerImpl", StreamKind::kNodeManager},
    {"ResourceLocalizationService", StreamKind::kNodeManager},
    {"ContainerScheduler", StreamKind::kNodeManager},
    // Driver-side classes (Spark driver or MR AppMaster).
    {"ApplicationMaster", StreamKind::kDriver},
    {"MRAppMaster", StreamKind::kDriver},
    {"YarnAllocator", StreamKind::kDriver},
    {"RMContainerAllocator", StreamKind::kDriver},
    {"SparkContext", StreamKind::kDriver},
    {"TaskSetManager", StreamKind::kDriver},
    {"YarnSchedulerBackend", StreamKind::kDriver},
    // Executor-side classes (Spark executor or MR task).
    {"CoarseGrainedExecutorBackend", StreamKind::kExecutor},
    {"Executor", StreamKind::kExecutor},
    {"YarnChild", StreamKind::kExecutor},
};

/// The Table-I extraction patterns.  Grouped by class, first match wins
/// within a class.
constexpr ExtractorRule kExtractorRules[] = {
    // RMAppImpl "State change from A to B on event = E" lines.
    {"RMAppImpl", RuleMatch::kTransitionTo, "SUBMITTED", "",
     EventKind::kAppSubmitted, RuleId::kApp},
    {"RMAppImpl", RuleMatch::kTransitionTo, "ACCEPTED", "",
     EventKind::kAppAccepted, RuleId::kApp},
    {"RMAppImpl", RuleMatch::kTransitionTo, "RUNNING", "ATTEMPT_REGISTERED",
     EventKind::kAttemptRegistered, RuleId::kApp},
    {"RMAppImpl", RuleMatch::kTransitionTo, "FINISHED", "",
     EventKind::kAppFinished, RuleId::kApp},
    // RMContainerImpl "Container Transitioned from A to B" lines.
    {"RMContainerImpl", RuleMatch::kTransitionTo, "ALLOCATED", "",
     EventKind::kContainerAllocated, RuleId::kContainer},
    {"RMContainerImpl", RuleMatch::kTransitionTo, "ACQUIRED", "",
     EventKind::kContainerAcquired, RuleId::kContainer},
    {"RMContainerImpl", RuleMatch::kTransitionTo, "RUNNING", "",
     EventKind::kRmContainerRunning, RuleId::kContainer},
    {"RMContainerImpl", RuleMatch::kTransitionTo, "COMPLETED", "",
     EventKind::kRmContainerCompleted, RuleId::kContainer},
    {"RMContainerImpl", RuleMatch::kTransitionTo, "RELEASED", "",
     EventKind::kRmContainerReleased, RuleId::kContainer},
    // NM ContainerImpl "transitioned from A to B" lines.
    {"ContainerImpl", RuleMatch::kTransitionTo, "LOCALIZING", "",
     EventKind::kNmLocalizing, RuleId::kContainer},
    {"ContainerImpl", RuleMatch::kTransitionTo, "SCHEDULED", "",
     EventKind::kNmScheduled, RuleId::kContainer},
    {"ContainerImpl", RuleMatch::kTransitionTo, "RUNNING", "",
     EventKind::kNmRunning, RuleId::kContainer},
    {"ContainerImpl", RuleMatch::kTransitionTo, "EXITED_WITH_SUCCESS", "",
     EventKind::kNmExited, RuleId::kContainer},
    {"ContainerImpl", RuleMatch::kTransitionTo, "EXITED_WITH_FAILURE", "",
     EventKind::kNmFailed, RuleId::kContainer},
    // REGISTER (Table I message 10): each framework has its own phrasing;
    // the app id is not in the message — the miner binds it stream-wide.
    {"ApplicationMaster", RuleMatch::kPhrase,
     "Registering the ApplicationMaster", "", EventKind::kDriverRegister,
     RuleId::kNone},
    {"MRAppMaster", RuleMatch::kPhrase, "Registering with the ResourceManager",
     "", EventKind::kDriverRegister, RuleId::kNone},
    // START_ALLO / END_ALLO (Table I messages 11/12).
    {"YarnAllocator", RuleMatch::kPhrase, "START_ALLO", "",
     EventKind::kStartAllo, RuleId::kNone},
    {"YarnAllocator", RuleMatch::kPhrase, "END_ALLO", "", EventKind::kEndAllo,
     RuleId::kNone},
    // FIRST_TASK (Table I message 14).
    {"CoarseGrainedExecutorBackend", RuleMatch::kPhrase, "Got assigned task",
     "", EventKind::kExecutorFirstTask, RuleId::kNone},
};

/// Shortest message that could possibly satisfy `rule`'s match
/// predicate: a transition needs at least "from " + one state char +
/// " to " ahead of the exact `token` state, a phrase needs the token
/// itself, and either way the `also` substring must fit too.
constexpr std::size_t rule_min_message_len(const ExtractorRule& rule) {
  std::size_t need = rule.match == RuleMatch::kTransitionTo
                         ? rule.token.size() + 10
                         : rule.token.size();
  if (rule.also.size() > need) need = rule.also.size();
  return need;
}

constexpr std::size_t shortest_rule_message_len() {
  std::size_t shortest = static_cast<std::size_t>(-1);
  for (const ExtractorRule& rule : kExtractorRules) {
    const std::size_t need = rule_min_message_len(rule);
    if (need < shortest) shortest = need;
  }
  return shortest;
}

/// Messages shorter than this cannot match any rule; the extractor
/// skips the dispatch table for them entirely.
constexpr std::size_t kShortestRuleMessageLen = shortest_rule_message_len();

}  // namespace

std::size_t min_rule_message_len() { return kShortestRuleMessageLen; }

bool rule_matches(const ExtractorRule& rule, std::string_view message) {
  switch (rule.match) {
    case RuleMatch::kTransitionTo: {
      const auto transition = parse_transition(message);
      if (!transition || transition->to != rule.token) return false;
      break;
    }
    case RuleMatch::kPhrase:
      if (!contains(message, rule.token)) return false;
      break;
  }
  return rule.also.empty() || contains(message, rule.also);
}

std::optional<SchedEvent> apply_rule(const ExtractorRule& rule,
                                     const ParsedLine& line,
                                     std::string_view stream,
                                     std::size_t line_no) {
  if (!rule_matches(rule, line.message)) return std::nullopt;
  switch (rule.id) {
    case RuleId::kNone:
      return make_event(rule.emits, line, stream, line_no, std::nullopt,
                        std::nullopt);
    case RuleId::kApp: {
      const auto app = find_application_id(line.message);
      if (!app) return std::nullopt;
      return make_event(rule.emits, line, stream, line_no, app, std::nullopt);
    }
    case RuleId::kContainer: {
      const auto container = find_container_id(line.message);
      if (!container) return std::nullopt;
      return make_event(rule.emits, line, stream, line_no, container->app,
                        container);
    }
  }
  return std::nullopt;
}

namespace {

/// Dispatch entry for one diagnostic logger class: the daemon kind it
/// implies, and its slice of the rule table (empty for classes that only
/// classify).
struct ClassDispatch {
  std::string_view name;
  StreamKind kind = StreamKind::kUnknown;
  std::span<const ExtractorRule> rules{};
  /// Shortest message any of `rules` could match (SIZE_MAX when the
  /// class only classifies) — the per-class arm of the length
  /// pre-filter.
  std::size_t min_rule_len = static_cast<std::size_t>(-1);
};

constexpr std::size_t kClassCount = std::size(kClassKinds);

/// Per-class dispatch entries, built at compile time from the constexpr
/// tables above so sdlint and the hot path can never disagree.  Rules
/// are grouped by class; each entry records its slice of the rule table.
constexpr std::array<ClassDispatch, kClassCount> make_dispatch_entries() {
  std::array<ClassDispatch, kClassCount> out{};
  for (std::size_t c = 0; c < kClassCount; ++c) {
    out[c].name = kClassKinds[c].klass;
    out[c].kind = kClassKinds[c].kind;
  }
  const std::span<const ExtractorRule> rules{kExtractorRules};
  for (std::size_t i = 0; i < rules.size();) {
    std::size_t j = i;
    std::size_t min_len = static_cast<std::size_t>(-1);
    while (j < rules.size() && rules[j].klass == rules[i].klass) {
      const std::size_t need = rule_min_message_len(rules[j]);
      if (need < min_len) min_len = need;
      ++j;
    }
    for (ClassDispatch& entry : out) {
      if (entry.name == rules[i].klass) {
        entry.rules = rules.subspan(i, j - i);
        entry.min_rule_len = min_len;
      }
    }
    i = j;
  }
  return out;
}

constexpr auto kDispatchEntries = make_dispatch_entries();

constexpr std::size_t kMaxClassNameLen = [] {
  std::size_t longest = 0;
  for (const ClassKind& entry : kClassKinds) {
    if (entry.klass.size() > longest) longest = entry.klass.size();
  }
  return longest;
}();

/// (name length, first byte) happens to be a unique key across every
/// recognized logger class, so class dispatch is two array reads plus
/// one confirming string compare — no hashing.  The constexpr builder
/// fails the build if a future class breaks the uniqueness (add a
/// second-byte tier then).
inline constexpr std::uint8_t kNoClass = 0xff;

constexpr auto kClassIndex = [] {
  std::array<std::array<std::uint8_t, 26>, kMaxClassNameLen + 1> index{};
  for (auto& row : index) row.fill(kNoClass);
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const std::string_view name = kDispatchEntries[c].name;
    const unsigned first =
        static_cast<unsigned>(static_cast<unsigned char>(name.front())) - 'A';
    if (first >= 26) throw "logger class must start with an uppercase letter";
    if (index[name.size()][first] != kNoClass) {
      throw "(length, first byte) collision between logger classes";
    }
    index[name.size()][first] = static_cast<std::uint8_t>(c);
  }
  return index;
}();

const ClassDispatch* find_class(std::string_view name) {
  if (name.empty() || name.size() > kMaxClassNameLen) return nullptr;
  const unsigned first =
      static_cast<unsigned>(static_cast<unsigned char>(name.front())) - 'A';
  if (first >= 26) return nullptr;
  const std::uint8_t slot = kClassIndex[name.size()][first];
  if (slot == kNoClass) return nullptr;
  const ClassDispatch& entry = kDispatchEntries[slot];
  return name == entry.name ? &entry : nullptr;
}

/// A matched rule with its extracted ids.
struct RuleHit {
  const ExtractorRule* rule = nullptr;
  std::optional<ApplicationId> app;
  std::optional<ContainerId> container;
};

/// The shared first-match-wins walk over one class's rules.  Decision
/// for decision this is `for rule: apply_rule(...)`, with one hot-path
/// refinement: `parse_transition` runs at most once per message (the
/// transition classes carry up to five transition rules, which used to
/// re-parse the same "from A to B" phrase per rule).  A rule whose match
/// fires but whose required id is absent does not stop the walk, same
/// as apply_rule returning nullopt.
std::optional<RuleHit> match_class_rules(const ClassDispatch& entry,
                                         std::string_view message) {
  bool transition_cached = false;
  std::optional<Transition> transition;
  for (const ExtractorRule& rule : entry.rules) {
    if (rule.match == RuleMatch::kTransitionTo) {
      if (!transition_cached) {
        transition = parse_transition(message);
        transition_cached = true;
      }
      if (!transition || transition->to != rule.token) continue;
    } else {
      if (!contains(message, rule.token)) continue;
    }
    if (!rule.also.empty() && !contains(message, rule.also)) continue;
    switch (rule.id) {
      case RuleId::kNone:
        return RuleHit{&rule, std::nullopt, std::nullopt};
      case RuleId::kApp: {
        const auto app = find_application_id(message);
        if (!app) continue;
        return RuleHit{&rule, app, std::nullopt};
      }
      case RuleId::kContainer: {
        const auto container = find_container_id(message);
        if (!container) continue;
        return RuleHit{&rule, container->app, container};
      }
    }
  }
  return std::nullopt;
}

/// Class lookup plus both length pre-filter arms; nullptr when no rule
/// of `line`'s class can match.
const ClassDispatch* dispatchable_class(const ParsedLine& line) {
  // No rule can match a message this short — skip the class lookup.
  if (line.message.size() < kShortestRuleMessageLen) return nullptr;
  const ClassDispatch* entry = find_class(short_class_name(line.logger));
  if (entry == nullptr || line.message.size() < entry->min_rule_len) {
    return nullptr;
  }
  return entry;
}

}  // namespace

std::span<const ExtractorRule> extractor_rules() { return kExtractorRules; }

std::span<const ClassKind> class_kinds() { return kClassKinds; }

std::vector<const ExtractorRule*> matching_rules(std::string_view klass,
                                                 std::string_view message) {
  std::vector<const ExtractorRule*> out;
  for (const ExtractorRule& rule : kExtractorRules) {
    if (rule.klass == klass && rule_matches(rule, message)) {
      out.push_back(&rule);
    }
  }
  return out;
}

StreamKind classify_line(const ParsedLine& line) {
  const ClassDispatch* entry = find_class(short_class_name(line.logger));
  return entry == nullptr ? StreamKind::kUnknown : entry->kind;
}

std::optional<SchedEvent> extract_event(const ParsedLine& line,
                                        std::string_view stream,
                                        std::size_t line_no) {
  const ClassDispatch* entry = dispatchable_class(line);
  if (entry == nullptr) return std::nullopt;
  const auto hit = match_class_rules(*entry, line.message);
  if (!hit) return std::nullopt;
  return make_event(hit->rule->emits, line, stream, line_no, hit->app,
                    hit->container);
}

bool extract_event_into(const ParsedLine& line, std::uint32_t stream_id,
                        std::size_t line_no, EventBatch& batch) {
  const ClassDispatch* entry = dispatchable_class(line);
  if (entry == nullptr) return false;
  const auto hit = match_class_rules(*entry, line.message);
  if (!hit) return false;
  batch.push(hit->rule->emits, line.epoch_ms, stream_id, line_no, hit->app,
             hit->container);
  return true;
}

}  // namespace sdc::checker
