// Plot-ready data export: per-app delay rows, raw event timelines, and
// CDF series — the CSV inputs one would feed to gnuplot/matplotlib to
// redraw the paper's figures.
#pragma once

#include <string>

#include "common/stats.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

/// One CSV row per application: every decomposed delay in milliseconds
/// (empty cell when the events are missing).
[[nodiscard]] std::string delays_csv(const AnalysisResult& result);

/// One CSV row per (application, container): per-container component
/// delays in milliseconds.
[[nodiscard]] std::string containers_csv(const AnalysisResult& result);

/// One CSV row per grouped event: app, container, Table-I number, event
/// name, epoch-ms timestamp.  Suitable for timeline plots (Fig. 3 style).
[[nodiscard]] std::string events_csv(const AnalysisResult& result);

/// CDF series of one sample set: `value,probability` rows (the paper's
/// figures are CDF plots).
[[nodiscard]] std::string cdf_csv(const SampleSet& samples,
                                  std::size_t points = 100);

/// Full analysis as one JSON document: mining summary, aggregate
/// distribution statistics, per-application decompositions (with
/// per-container components), and anomalies.
[[nodiscard]] std::string analysis_json(const AnalysisResult& result);

}  // namespace sdc::checker
