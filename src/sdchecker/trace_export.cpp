#include "sdchecker/trace_export.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

namespace sdc::checker {
namespace {

constexpr DelayComponentSpec kSpecs[] = {
    {"total", "sdc.delay.total", "total", false},
    {"am", "sdc.delay.am", "am", false},
    {"cf", "sdc.delay.cf", "cf", false},
    {"cl", "sdc.delay.cl", "cl", false},
    {"cl-cf", "sdc.delay.cl-cf", "cl-cf", false},
    {"driver", "sdc.delay.driver", "driver", false},
    {"executor", "sdc.delay.executor", "executor", false},
    {"in-app", "sdc.delay.in-app", "in-app", false},
    {"out-app", "sdc.delay.out-app", "out-app", false},
    {"alloc", "sdc.delay.alloc", "alloc", false},
    {"acquisition", "sdc.delay.acquisition", "acquisition", true},
    {"localization", "sdc.delay.localization", "localization", true},
    {"queuing", "sdc.delay.queuing", "queuing", true},
    {"launching", "sdc.delay.launching", "launching", true},
    {"exec-idle", "sdc.delay.exec-idle", "exec-idle", true},
};

constexpr std::string_view kRequiredAppSlices[] = {
    "total", "am", "cf", "cl", "alloc", "driver", "executor",
};

/// One pending slice: name + absolute [start, end] in corpus epoch-ms.
struct PendingSlice {
  std::string_view name;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
};

/// Appends the slice when both anchors exist and the span is
/// non-negative (negative spans are clock skew; the anomaly detector
/// reports those — a trace slice cannot render them).
void push_slice(std::vector<PendingSlice>& out, std::string_view name,
                std::optional<std::int64_t> start,
                std::optional<std::int64_t> end) {
  if (!start || !end || *end < *start) return;
  out.push_back({name, *start, *end});
}

std::uint64_t rebase_us(std::int64_t ts_ms, std::int64_t base_ms) {
  const std::int64_t rebased = ts_ms - base_ms;
  return rebased <= 0 ? 0 : static_cast<std::uint64_t>(rebased) * 1000;
}

/// Earliest timestamp anywhere in the corpus — the trace's time origin.
std::int64_t corpus_base_ms(const AnalysisResult& result) {
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& [app, timeline] : result.timelines) {
    for (const auto& [kind, ts] : timeline.first_ts) base = std::min(base, ts);
    for (const auto& [id, container] : timeline.containers) {
      for (const auto& [kind, ts] : container.first_ts) {
        base = std::min(base, ts);
      }
    }
  }
  return base == std::numeric_limits<std::int64_t>::max() ? 0 : base;
}

/// Emits `slices` onto one (pid, tid) track in ascending start order with
/// its own thread_name row.
void emit_track(obs::TraceEventWriter& writer, std::int64_t pid,
                std::int64_t tid, std::string_view track_name,
                std::vector<PendingSlice> slices, std::int64_t base_ms) {
  if (slices.empty()) return;
  writer.thread_name(pid, tid, track_name);
  std::stable_sort(slices.begin(), slices.end(),
                   [](const PendingSlice& a, const PendingSlice& b) {
                     return a.start_ms < b.start_ms;
                   });
  for (const PendingSlice& slice : slices) {
    const std::uint64_t start = rebase_us(slice.start_ms, base_ms);
    const std::uint64_t end = rebase_us(slice.end_ms, base_ms);
    writer.complete(pid, tid, slice.name, start, end - start, "scheduling");
  }
}

void emit_app(obs::TraceEventWriter& writer, std::int64_t pid,
              const AppTimeline& timeline, std::int64_t base_ms) {
  writer.process_name(pid, timeline.app.str());

  // Track 0: one instant per Table-I milestone the logs actually carried.
  {
    std::vector<std::pair<std::int64_t, std::string_view>> marks;
    for (const auto& [kind, ts] : timeline.first_ts) {
      marks.emplace_back(ts, event_name(kind));
    }
    if (!marks.empty()) {
      writer.thread_name(pid, 0, "milestones");
      std::stable_sort(marks.begin(), marks.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (const auto& [ts, name] : marks) {
        writer.instant(pid, 0, name, rebase_us(ts, base_ms), "milestone");
      }
    }
  }

  // Per-component tracks.  Anchors mirror decompose() exactly so the
  // slice widths equal the reported delays.
  const auto submitted = timeline.ts(EventKind::kAppSubmitted);
  const auto registered = timeline.ts(EventKind::kAttemptRegistered);
  const auto driver_first = timeline.ts(EventKind::kDriverFirstLog);
  const auto driver_register = timeline.ts(EventKind::kDriverRegister);
  const auto start_allo = timeline.ts(EventKind::kStartAllo);
  const auto end_allo = timeline.ts(EventKind::kEndAllo);
  const auto first_exec_log =
      timeline.min_worker_ts(EventKind::kExecutorFirstLog);
  const auto first_task = timeline.min_worker_ts(EventKind::kExecutorFirstTask);
  const auto first_running = timeline.min_worker_ts(EventKind::kNmRunning);
  const auto last_running = timeline.max_worker_ts(EventKind::kNmRunning);

  std::int64_t tid = 1;
  const auto component_track = [&](std::string_view name,
                                   std::optional<std::int64_t> start,
                                   std::optional<std::int64_t> end) {
    std::vector<PendingSlice> slices;
    push_slice(slices, name, start, end);
    emit_track(writer, pid, tid++, name, std::move(slices), base_ms);
  };
  component_track("total", submitted, first_task);
  component_track("am", submitted, registered);
  component_track("cf", submitted, first_running);
  component_track("cl", submitted, last_running);
  component_track("cl-cf", first_running, last_running);
  component_track("driver", driver_first, driver_register);
  component_track("executor", first_exec_log, first_task);
  // in-app / out-app have no event anchors of their own (they are sums);
  // anchor the derived spans at SUBMITTED so they line up under "total".
  if (driver_first && driver_register && first_exec_log && first_task &&
      submitted) {
    const std::int64_t in_app = (*driver_register - *driver_first) +
                                (*first_task - *first_exec_log);
    if (in_app >= 0) {
      component_track("in-app", submitted, *submitted + in_app);
      if (first_task && *first_task - *submitted >= in_app) {
        component_track("out-app", submitted,
                        *submitted + (*first_task - *submitted - in_app));
      } else {
        ++tid;  // keep tid assignment stable even when out-app is absent
      }
    } else {
      tid += 2;
    }
  } else {
    tid += 2;
  }
  component_track("alloc", start_allo, end_allo);

  // Per-container tracks: the component chain in causal order.
  std::int64_t container_tid = 100;
  for (const auto& [id, container] : timeline.containers) {
    std::vector<PendingSlice> slices;
    push_slice(slices, "acquisition",
               container.ts(EventKind::kContainerAllocated),
               container.ts(EventKind::kContainerAcquired));
    push_slice(slices, "localization", container.ts(EventKind::kNmLocalizing),
               container.ts(EventKind::kNmScheduled));
    push_slice(slices, "queuing", container.ts(EventKind::kNmScheduled),
               container.ts(EventKind::kNmRunning));
    std::optional<std::int64_t> instance_first_log;
    if (!container.has(EventKind::kNmFailed)) {
      instance_first_log = id.is_am()
                               ? driver_first
                               : container.ts(EventKind::kExecutorFirstLog);
    }
    push_slice(slices, "launching", container.ts(EventKind::kNmRunning),
               instance_first_log);
    if (!id.is_am()) {
      push_slice(slices, "exec-idle",
                 container.ts(EventKind::kExecutorFirstLog),
                 container.ts(EventKind::kExecutorFirstTask));
    }
    emit_track(writer, pid, container_tid++, id.str(), std::move(slices),
               base_ms);
  }
}

}  // namespace

std::span<const DelayComponentSpec> delay_component_specs() { return kSpecs; }

std::span<const std::string_view> required_app_slices() {
  return kRequiredAppSlices;
}

std::size_t append_scheduling_trace(obs::TraceEventWriter& writer,
                                    const AnalysisResult& result,
                                    std::int64_t first_pid) {
  const std::int64_t base_ms = corpus_base_ms(result);
  std::int64_t pid = first_pid;
  for (const auto& [app, timeline] : result.timelines) {
    emit_app(writer, pid++, timeline, base_ms);
  }
  return static_cast<std::size_t>(pid - first_pid);
}

std::string scheduling_trace_json(const AnalysisResult& result) {
  obs::TraceEventWriter writer;
  append_scheduling_trace(writer, result);
  return writer.finish();
}

}  // namespace sdc::checker
