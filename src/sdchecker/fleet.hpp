// Fleet mode: analyze many corpora (one directory of logs per cluster /
// day / experiment run) in a single pipelined pass, then gate the
// combined delay distributions against a committed baseline.
//
// The scheduling problem fleet mode solves: running `analyze` per corpus
// serializes at two points — every corpus waits for its slowest mining
// chunk before grouping starts (a barrier), and corpora run one after
// another (no overlap).  Fleet mode instead runs *everything* on one
// ThreadPool with two-level sharding (corpus × chunk for mining, corpus
// × app-shard for grouping) and no per-corpus barriers: the moment a
// stream's last chunk is mined, that stream is stitched and its events
// are folded into the corpus's sharded grouping tables while other
// chunks — of this corpus and of others — are still mining.  The last
// stream triggers finalization, which fans out per-app decomposition on
// the same pool (nested `parallel_for` is safe: waiters help drain the
// queue instead of blocking — see thread_pool.hpp).
//
// Determinism: per-stream event batches are applied to grouping tables
// in completion order, which is racy — but `KindFirstTs::record` keeps
// the *minimum* timestamp and counts are additive, so event application
// commutes, and `finalize_analysis` re-orders apps deterministically.
// Each corpus's `analysis_json` is therefore byte-identical to a
// standalone `sdchecker analyze --json` of the same directory (the fleet
// parity test pins this down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "sdchecker/compare.hpp"

namespace sdc::checker {

struct FleetOptions {
  /// Worker threads for the shared pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Grouping shards per corpus; 0 = derived from `threads` (capped at 8
  /// — shards beyond the thread count only add table-merge work).
  std::size_t shards_per_corpus = 0;
  /// Forwarded to MinerOptions (see miner.hpp).
  std::size_t shard_grain = 8192;
  std::int64_t skew_budget_ms = 1000;
};

/// One corpus's outcome.  `error` is empty on success; on failure every
/// other field except `name`/`dir` is default.
struct CorpusResult {
  std::string name;
  std::filesystem::path dir;
  std::string error;
  std::size_t apps = 0;
  std::size_t events = 0;
  std::size_t lines = 0;
  std::size_t diagnostics = 0;
  /// The full per-corpus artifact, byte-identical to what a standalone
  /// `analyze --json` of the same directory writes.
  std::string analysis_json;
  /// Per-delay-component fixed-bucket histograms (see compare.hpp).
  std::vector<ComponentHistogram> components;
};

struct FleetResult {
  /// Input order (the `analyze_fleet(root)` overload discovers corpora
  /// in name order).
  std::vector<CorpusResult> corpora;
  std::size_t threads = 0;
  std::size_t shards_per_corpus = 0;
  /// Per-component histograms summed across every successful corpus —
  /// what the regression gate compares against a baseline.
  std::vector<ComponentHistogram> components;

  [[nodiscard]] std::size_t failed() const;

  /// The fleet summary artifact: {"fleet":{...}, "bucket_edges_ms":[...],
  /// "components":[...], "corpora":[...]}.  A later run can be gated
  /// against this document via `load_fleet_baseline`.
  [[nodiscard]] std::string summary_json() const;
};

/// The immediate subdirectories of `root`, sorted by name — one corpus
/// per subdirectory.  Throws std::runtime_error when `root` is not a
/// directory.
[[nodiscard]] std::vector<std::filesystem::path> discover_corpora(
    const std::filesystem::path& root);

/// Analyzes every corpus on one shared pool (pipelined; see the file
/// comment).  A corpus that cannot be read becomes a CorpusResult with
/// `error` set — the fleet never aborts on one bad corpus.
[[nodiscard]] FleetResult analyze_fleet(
    const std::vector<std::filesystem::path>& corpora,
    const FleetOptions& options = {});
[[nodiscard]] FleetResult analyze_fleet(const std::filesystem::path& root,
                                        const FleetOptions& options = {});

/// Reads the fleet-wide `components` of a summary JSON written by
/// `FleetResult::summary_json`.  Returns nullopt and fills `error` on
/// unreadable or malformed input.
[[nodiscard]] std::optional<std::vector<ComponentHistogram>>
load_fleet_baseline(const std::filesystem::path& file, std::string* error);

}  // namespace sdc::checker
