#include "sdchecker/incremental.hpp"

#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {

void IncrementalAnalyzer::feed(const std::string& stream,
                               std::string_view line) {
  StreamState& state = streams_[stream];
  ++state.line_no;
  ++lines_total_;

  const auto parsed = parse_line(line);
  if (!parsed) {
    ++lines_unparsed_;
    return;
  }
  if (state.kind == StreamKind::kUnknown) {
    state.kind = classify_line(*parsed);
    // Instance logs synthesize FIRST_LOG from their first *parsed* line;
    // the timestamp was captured whenever that line arrived.
    if ((state.kind == StreamKind::kDriver ||
         state.kind == StreamKind::kExecutor) &&
        !state.first_log_done) {
      state.first_log_pending = true;
      if (state.first_parsed_ts == 0) state.first_parsed_ts = parsed->epoch_ms;
    }
  }
  if (state.first_parsed_ts == 0) state.first_parsed_ts = parsed->epoch_ms;

  // Binding: the first application/container id seen anywhere binds the
  // stream and releases any parked events.
  const bool was_bound = state.bound_app.has_value();
  if (!state.bound_container) {
    if (auto container = find_container_id(parsed->message)) {
      state.bound_container = container;
      if (!state.bound_app) state.bound_app = container->app;
    }
  }
  if (!state.bound_app) {
    if (auto app = find_application_id(parsed->message)) {
      state.bound_app = app;
    }
  }

  if (state.first_log_pending &&
      (state.kind == StreamKind::kDriver ||
       state.kind == StreamKind::kExecutor)) {
    state.first_log_pending = false;
    state.first_log_done = true;
    SchedEvent first;
    first.kind = state.kind == StreamKind::kDriver
                     ? EventKind::kDriverFirstLog
                     : EventKind::kExecutorFirstLog;
    first.ts_ms = state.first_parsed_ts;
    first.stream = stream;
    first.line_no = 1;
    dispatch(state, std::move(first));
  }

  if (auto event = extract_event(*parsed, stream, state.line_no)) {
    dispatch(state, std::move(*event));
  }
  if (!was_bound && state.bound_app) flush_parked(state);
}

void IncrementalAnalyzer::feed_all(const std::string& stream,
                                   const std::vector<std::string>& lines) {
  for (const std::string& line : lines) feed(stream, line);
}

void IncrementalAnalyzer::feed_all(const std::string& stream,
                                   std::span<const std::string_view> lines) {
  for (const std::string_view line : lines) feed(stream, line);
}

void IncrementalAnalyzer::dispatch(StreamState& state, SchedEvent event) {
  if (!event.app) event.app = state.bound_app;
  if (!event.container && state.kind == StreamKind::kExecutor) {
    event.container = state.bound_container;
  }
  if (!event.app) {
    // Stream not bound yet: park for later.
    state.parked.push_back(std::move(event));
    return;
  }
  ++events_total_;
  apply_event(timelines_, event);
}

void IncrementalAnalyzer::flush_parked(StreamState& state) {
  std::vector<SchedEvent> parked = std::move(state.parked);
  state.parked.clear();
  for (SchedEvent& event : parked) {
    dispatch(state, std::move(event));
  }
}

Delays IncrementalAnalyzer::delays_for(const ApplicationId& app) const {
  const auto it = timelines_.find(app);
  if (it == timelines_.end()) {
    Delays empty;
    empty.app = app;
    return empty;
  }
  return decompose(it->second);
}

AnalysisResult IncrementalAnalyzer::snapshot() const {
  AnalysisResult result = finalize_analysis(timelines_);
  result.lines_total = lines_total_;
  result.lines_unparsed = lines_unparsed_;
  result.events_total = events_total_;
  result.events_unattributed = events_pending();
  return result;
}

std::size_t IncrementalAnalyzer::events_pending() const {
  std::size_t n = 0;
  for (const auto& [name, state] : streams_) n += state.parked.size();
  return n;
}

}  // namespace sdc::checker
