#include "sdchecker/incremental.hpp"

#include <algorithm>
#include <map>

#include "common/thread_pool.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {

void IncrementalAnalyzer::feed(const std::string& stream,
                               std::string_view line) {
  static obs::Counter& lines_counter =
      obs::catalog_counter(obs::metric::kIncrementalLines);
  lines_counter.add(1);
  // CRLF parity with the batch path: LogBundle/LogView strip the '\r' of
  // CRLF-terminated logs at read time; a tail delivers the raw line.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  StreamState& state = streams_[stream];
  ++state.line_no;
  ++lines_total_;

  const auto parsed = parse_line(line);
  if (!parsed) {
    ++lines_unparsed_;
    switch (classify_unparsed_line(line)) {
      case UnparsedClass::kBinaryGarbage:
        ++state.garbage_count;
        if (state.garbage_first_line == 0) {
          state.garbage_first_line = state.line_no;
        }
        break;
      case UnparsedClass::kTruncated:
        ++state.truncated_count;
        if (state.truncated_first_line == 0) {
          state.truncated_first_line = state.line_no;
        }
        break;
      case UnparsedClass::kPlain:
        break;
    }
    if (state.open_run_len == 0) state.open_run_start = state.line_no;
    ++state.open_run_len;
    return;
  }
  // A parsed line closes any unparsable run; long runs are bursts.
  if (state.open_run_len >= options_.unparsable_burst_min) {
    ++state.burst_count;
    state.burst_lines += state.open_run_len;
    if (state.burst_first_line == 0) {
      state.burst_first_line = state.open_run_start;
    }
  }
  state.open_run_len = 0;
  if (state.last_parsed_ts &&
      *state.last_parsed_ts - parsed->epoch_ms > options_.skew_budget_ms) {
    ++state.regression_count;
    if (state.regression_first_line == 0) {
      state.regression_first_line = state.line_no;
    }
    state.regression_max_ms = std::max(
        state.regression_max_ms, *state.last_parsed_ts - parsed->epoch_ms);
  }
  state.last_parsed_ts = parsed->epoch_ms;
  if (state.kind == StreamKind::kUnknown) {
    state.kind = classify_line(*parsed);
    // Instance logs synthesize FIRST_LOG from their first *parsed* line;
    // the timestamp was captured whenever that line arrived.
    if ((state.kind == StreamKind::kDriver ||
         state.kind == StreamKind::kExecutor) &&
        !state.first_log_done) {
      state.first_log_pending = true;
      if (state.first_parsed_ts == 0) state.first_parsed_ts = parsed->epoch_ms;
    }
  }
  if (state.first_parsed_ts == 0) state.first_parsed_ts = parsed->epoch_ms;

  // Binding: the first application/container id seen anywhere binds the
  // stream and releases any parked events.
  const bool was_bound = state.bound_app.has_value();
  if (!state.bound_container) {
    if (auto container = find_container_id(parsed->message)) {
      state.bound_container = container;
      if (!state.bound_app) state.bound_app = container->app;
    }
  }
  if (!state.bound_app) {
    if (auto app = find_application_id(parsed->message)) {
      state.bound_app = app;
    }
  }

  if (state.first_log_pending &&
      (state.kind == StreamKind::kDriver ||
       state.kind == StreamKind::kExecutor)) {
    state.first_log_pending = false;
    state.first_log_done = true;
    SchedEvent first;
    first.kind = state.kind == StreamKind::kDriver
                     ? EventKind::kDriverFirstLog
                     : EventKind::kExecutorFirstLog;
    first.ts_ms = state.first_parsed_ts;
    first.stream = stream;
    first.line_no = 1;
    dispatch(state, std::move(first));
  }

  if (auto event = extract_event(*parsed, stream, state.line_no)) {
    dispatch(state, std::move(*event));
  }
  if (!was_bound && state.bound_app) flush_parked(state);
}

void IncrementalAnalyzer::feed_all(const std::string& stream,
                                   const std::vector<std::string>& lines) {
  for (const std::string& line : lines) feed(stream, line);
}

void IncrementalAnalyzer::feed_all(const std::string& stream,
                                   std::span<const std::string_view> lines) {
  for (const std::string_view line : lines) feed(stream, line);
}

void IncrementalAnalyzer::dispatch(StreamState& state, SchedEvent event) {
  // Counted here — once per extracted event, bound or not — so
  // `events_total` matches the batch miner, which counts every mined
  // event whether or not it ever attributes.
  ++events_total_;
  resolve_or_park(state, std::move(event));
}

void IncrementalAnalyzer::resolve_or_park(StreamState& state,
                                          SchedEvent event) {
  if (!event.app) event.app = state.bound_app;
  if (!event.container && state.kind == StreamKind::kExecutor) {
    event.container = state.bound_container;
  }
  if (!event.app) {
    // Stream not bound yet: park for later — up to the cap.  A stream
    // that never binds must not grow without bound in a long-running
    // service; past the cap events are dropped, counted, and surfaced as
    // one kUnboundStream diagnostic.
    if (options_.parked_events_cap > 0 &&
        state.parked.size() >= options_.parked_events_cap) {
      ++state.parked_dropped;
      if (state.parked_dropped_first_line == 0) {
        state.parked_dropped_first_line = event.line_no;
      }
      return;
    }
    state.parked.push_back(std::move(event));
    return;
  }
  if (!retired_.empty() && retired_.contains(*event.app)) {
    // The application's timeline is gone; re-materializing a partial one
    // would diverge from the cached decomposition.
    ++events_late_dropped_;
    return;
  }
  apply_event(timelines_, event);
  AppActivity& activity = activity_[*event.app];
  activity.last_tick = tick_;
  if (event.kind == EventKind::kAppFinished) activity.terminal = true;
}

void IncrementalAnalyzer::flush_parked(StreamState& state) {
  std::vector<SchedEvent> parked = std::move(state.parked);
  state.parked.clear();
  for (SchedEvent& event : parked) {
    resolve_or_park(state, std::move(event));
  }
}

std::size_t IncrementalAnalyzer::retire_terminal(std::uint64_t quiet_ticks) {
  static obs::Counter& retired_counter =
      obs::catalog_counter(obs::metric::kIncrementalAppsRetired);
  std::vector<ApplicationId> ready;
  for (const auto& [app, activity] : activity_) {
    if (activity.terminal && tick_ - activity.last_tick >= quiet_ticks) {
      ready.push_back(app);
    }
  }
  std::size_t retired_now = 0;
  for (const ApplicationId& app : ready) {
    const auto it = timelines_.find(app);
    if (it == timelines_.end()) {
      activity_.erase(app);
      continue;
    }
    RetiredApp row;
    row.delays = decompose(it->second);
    detect_anomalies(it->second, row.delays, row.anomalies);
    retired_.emplace(app, std::move(row));
    timelines_.erase(app);
    activity_.erase(app);
    ++retired_now;
  }
  retired_counter.add(retired_now);
  return retired_now;
}

Delays IncrementalAnalyzer::delays_for(const ApplicationId& app) const {
  if (const auto retired = retired_.find(app); retired != retired_.end()) {
    return retired->second.delays;
  }
  const auto it = timelines_.find(app);
  if (it == timelines_.end()) {
    Delays empty;
    empty.app = app;
    return empty;
  }
  return decompose(it->second);
}

AnalysisResult IncrementalAnalyzer::snapshot(
    std::size_t analyze_shards) const {
  const auto span = obs::Tracer::global().span("incremental.snapshot");
  AnalyzeOptions shard_options;
  shard_options.analyze_shards = analyze_shards;
  const std::size_t shards = shard_options.effective_analyze_shards();
  AnalysisResult result;
  if (shards > 1) {
    // Route a copy of the live table into per-shard tables (the same
    // partition group_events_sharded produces) and finalize in parallel.
    ShardedGroupResult grouped;
    grouped.shards.resize(shards);
    for (const auto& [app, timeline] : timelines_) {
      grouped.shards[timeline_shard(app, shards)][app] = timeline;
    }
    ThreadPool pool(shards);
    result = finalize_analysis(std::move(grouped), pool, retired_);
  } else {
    std::map<ApplicationId, AppTimeline> ordered;
    for (const auto& [app, timeline] : timelines_) ordered[app] = timeline;
    result = finalize_analysis(std::move(ordered), retired_);
  }
  result.lines_total = lines_total_;
  result.lines_unparsed = lines_unparsed_;
  result.events_total = events_total_;
  result.events_unattributed = events_pending();
  result.diagnostics = diagnostics();
  result.diag_counts = logging::count_diagnostics(result.diagnostics);
  logging::sort_diagnostics(result.diagnostics);
  return result;
}

std::vector<logging::Diagnostic> IncrementalAnalyzer::diagnostics() const {
  using logging::Diagnostic;
  using logging::DiagnosticKind;
  std::vector<Diagnostic> out;
  // The stream table is unordered; reports are per-stream in name order,
  // so sort the (few) stream pointers at snapshot time.
  std::vector<const std::pair<std::string, StreamState>*> ordered;
  ordered.reserve(streams_.size());
  for (const auto& entry : streams_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : ordered) {
    const std::string& name = entry->first;
    const StreamState& state = entry->second;
    if (state.garbage_count > 0) {
      out.push_back(Diagnostic{DiagnosticKind::kBinaryGarbage, name,
                               state.garbage_first_line, state.garbage_count,
                               "line(s) contain NUL or mostly non-printable "
                               "bytes"});
    }
    if (state.truncated_count > 0) {
      out.push_back(Diagnostic{DiagnosticKind::kTruncatedLine, name,
                               state.truncated_first_line,
                               state.truncated_count,
                               "line(s) cut mid-write: timestamp intact, "
                               "remainder malformed"});
    }
    std::size_t burst_count = state.burst_count;
    std::size_t burst_lines = state.burst_lines;
    std::size_t burst_first = state.burst_first_line;
    if (state.open_run_len >= options_.unparsable_burst_min) {
      ++burst_count;
      burst_lines += state.open_run_len;
      if (burst_first == 0) burst_first = state.open_run_start;
    }
    if (burst_count > 0) {
      out.push_back(Diagnostic{DiagnosticKind::kUnparsableBurst, name,
                               burst_first, burst_lines,
                               std::to_string(burst_count) +
                                   " burst(s) of consecutive unparsable "
                                   "lines"});
    }
    if (state.regression_count > 0) {
      out.push_back(Diagnostic{
          DiagnosticKind::kTimestampRegression, name,
          state.regression_first_line, state.regression_count,
          "timestamp jumped backwards by up to " +
              std::to_string(state.regression_max_ms) + " ms (budget " +
              std::to_string(options_.skew_budget_ms) + " ms)"});
    }
    if (state.parked_dropped > 0) {
      out.push_back(Diagnostic{
          DiagnosticKind::kUnboundStream, name,
          state.parked_dropped_first_line, state.parked_dropped,
          "stream never bound to an application id; parked-event cap (" +
              std::to_string(options_.parked_events_cap) +
              ") exceeded, event(s) dropped"});
    }
  }
  return out;
}

logging::DiagnosticCounts IncrementalAnalyzer::diag_counts() const {
  return logging::count_diagnostics(diagnostics());
}

std::size_t IncrementalAnalyzer::events_pending() const {
  std::size_t n = 0;
  for (const auto& [name, state] : streams_) {
    n += state.parked.size() + state.parked_dropped;
  }
  return n;
}

}  // namespace sdc::checker
