// Second parsing stage: classify a parsed line as one of the identified
// scheduling messages (Table I) and pull out its global IDs.
//
// Patterns are anchored on the daemon class plus the state-transition
// phrasing YARN's state machines emit ("State change from A to B",
// "Container Transitioned from A to B", "transitioned from A to B") and
// on the Spark/MR milestone messages; IDs are recognized as
// `application_...` / `container_...` / `appattempt_...` tokens anywhere
// in the message (paper §III-A/Fig. 2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sdchecker/events.hpp"
#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {

/// What kind of daemon produced a log stream — decided from content, not
/// file names, so SDchecker works on arbitrarily-named log files.
enum class StreamKind {
  kUnknown,
  kResourceManager,
  kNodeManager,
  kDriver,    // Spark driver or MR AppMaster
  kExecutor,  // Spark executor or MR task (YarnChild)
};

std::string_view stream_kind_name(StreamKind kind);

/// How an ExtractorRule matches a message.
enum class RuleMatch {
  kTransitionTo,  // "from A to B" phrasing with B == token
  kPhrase,        // token appears as a substring
};

/// Which global id a rule requires in the message (and attaches to the
/// event).  Rules with kNone produce events the miner binds stream-wide.
enum class RuleId {
  kNone,
  kApp,        // application_... (or embedded in appattempt_...)
  kContainer,  // container_... (its app id is attached too)
};

/// One declarative extraction pattern: on lines from logger class `klass`
/// whose message matches (`match`, `token`, and `also` if non-empty),
/// emit `emits` carrying the `id` found in the message.  The whole
/// extractor is this table — sdlint checks it against the emitters'
/// declared formats.
struct ExtractorRule {
  std::string_view klass;  // short logger-class name
  RuleMatch match;
  std::string_view token;
  std::string_view also;  // extra required substring ("" = none)
  EventKind emits;
  RuleId id;
};

/// The full pattern table, in match-priority order (first match wins
/// within a class).
std::span<const ExtractorRule> extractor_rules();

/// Shortest message any rule in the table could match.  `extract_event`
/// skips the dispatch table entirely for messages below this length;
/// tests pin it against the rule table.
std::size_t min_rule_message_len();

/// One diagnostic logger class: the daemon kind its presence implies.
struct ClassKind {
  std::string_view klass;
  StreamKind kind;
};

/// Every logger class the classifier recognizes.
std::span<const ClassKind> class_kinds();

/// All rules that would fire on `message` if it appeared on a line from
/// `klass` — sdlint's ambiguity/orphan probe.  Respects each rule's
/// match predicate but not id extraction.
std::vector<const ExtractorRule*> matching_rules(std::string_view klass,
                                                 std::string_view message);

/// True when `rule`'s match predicate (ignoring id extraction) fires on
/// the message.
bool rule_matches(const ExtractorRule& rule, std::string_view message);

/// Runs one rule against a parsed line: match predicate plus required-id
/// extraction.  Exposed so sdlint can probe rules outside the global
/// dispatch table.
std::optional<SchedEvent> apply_rule(const ExtractorRule& rule,
                                     const ParsedLine& line,
                                     std::string_view stream,
                                     std::size_t line_no);

/// Extracts the scheduling event from one parsed line, if it is one of
/// the identified messages.  `stream` / `line_no` are recorded verbatim.
/// FIRST_LOG events (messages 9/13) are *not* produced here — they are a
/// per-stream property synthesized by the miner.
std::optional<SchedEvent> extract_event(const ParsedLine& line,
                                        std::string_view stream,
                                        std::size_t line_no);

/// Columnar variant of `extract_event` for the miner's hot path: appends
/// the extracted event (if any) straight into `batch` carrying the
/// interned `stream_id` — no SchedEvent, no string copy.  Returns true
/// when an event was appended.  Matches `extract_event` decision for
/// decision.
bool extract_event_into(const ParsedLine& line, std::uint32_t stream_id,
                        std::size_t line_no, EventBatch& batch);

/// Classifies one line's daemon kind from its logger class (kUnknown when
/// the class is not diagnostic).
StreamKind classify_line(const ParsedLine& line);

/// Finds an application id in the message: a direct `application_...`
/// token, or one embedded in an `appattempt_...` token.
std::optional<ApplicationId> find_application_id(std::string_view message);

/// Finds a `container_...` token in the message.
std::optional<ContainerId> find_container_id(std::string_view message);

/// Parses "... from <A> to <B> ..." transition phrasing; returns the two
/// state names.
struct Transition {
  std::string_view from;
  std::string_view to;
};
std::optional<Transition> parse_transition(std::string_view message);

}  // namespace sdc::checker
