// Second parsing stage: classify a parsed line as one of the identified
// scheduling messages (Table I) and pull out its global IDs.
//
// Patterns are anchored on the daemon class plus the state-transition
// phrasing YARN's state machines emit ("State change from A to B",
// "Container Transitioned from A to B", "transitioned from A to B") and
// on the Spark/MR milestone messages; IDs are recognized as
// `application_...` / `container_...` / `appattempt_...` tokens anywhere
// in the message (paper §III-A/Fig. 2).
#pragma once

#include <optional>
#include <string_view>

#include "sdchecker/events.hpp"
#include "sdchecker/parsed_line.hpp"

namespace sdc::checker {

/// What kind of daemon produced a log stream — decided from content, not
/// file names, so SDchecker works on arbitrarily-named log files.
enum class StreamKind {
  kUnknown,
  kResourceManager,
  kNodeManager,
  kDriver,    // Spark driver or MR AppMaster
  kExecutor,  // Spark executor or MR task (YarnChild)
};

std::string_view stream_kind_name(StreamKind kind);

/// Extracts the scheduling event from one parsed line, if it is one of
/// the identified messages.  `stream` / `line_no` are recorded verbatim.
/// FIRST_LOG events (messages 9/13) are *not* produced here — they are a
/// per-stream property synthesized by the miner.
std::optional<SchedEvent> extract_event(const ParsedLine& line,
                                        std::string_view stream,
                                        std::size_t line_no);

/// Classifies one line's daemon kind from its logger class (kUnknown when
/// the class is not diagnostic).
StreamKind classify_line(const ParsedLine& line);

/// Finds an application id in the message: a direct `application_...`
/// token, or one embedded in an `appattempt_...` token.
std::optional<ApplicationId> find_application_id(std::string_view message);

/// Finds a `container_...` token in the message.
std::optional<ContainerId> find_container_id(std::string_view message);

/// Parses "... from <A> to <B> ..." transition phrasing; returns the two
/// state names.
struct Transition {
  std::string_view from;
  std::string_view to;
};
std::optional<Transition> parse_transition(std::string_view message);

}  // namespace sdc::checker
