#include "sdchecker/miner.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace sdc::checker {

bool event_order_less(const SchedEvent& a, const SchedEvent& b) {
  if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.line_no != b.line_no) return a.line_no < b.line_no;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

namespace {

/// What one chunk of a stream learned on its own: its events (sorted)
/// plus the *first-seen* candidates the stitch pass resolves stream-wide.
struct ChunkOut {
  std::vector<SchedEvent> events;
  std::size_t lines_unparsed = 0;
  std::optional<std::int64_t> first_parsed_ts;
  StreamKind kind = StreamKind::kUnknown;
  std::optional<ApplicationId> first_app;
  std::optional<ContainerId> first_container;
};

/// Mines lines [base_line, base_line + lines.size()) of one stream.
/// Line numbers are 1-based, so the produced events carry
/// `base_line + i + 1`.
ChunkOut mine_chunk(const std::string& name,
                    std::span<const std::string_view> lines,
                    std::size_t base_line) {
  ChunkOut out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto parsed = parse_line(lines[i]);
    if (!parsed) {
      ++out.lines_unparsed;
      continue;
    }
    if (!out.first_parsed_ts) out.first_parsed_ts = parsed->epoch_ms;
    if (out.kind == StreamKind::kUnknown) {
      out.kind = classify_line(*parsed);
    }
    // Record the first application/container id seen in this chunk; the
    // stitch pass binds the stream to the first across chunks (driver
    // and executor logs do not carry ids on every line — Fig. 2).
    if (!out.first_container) {
      if (auto container = find_container_id(parsed->message)) {
        out.first_container = container;
      }
    }
    if (!out.first_app) {
      if (auto app = find_application_id(parsed->message)) {
        out.first_app = app;
      }
    }
    if (auto event = extract_event(*parsed, name, base_line + i + 1)) {
      out.events.push_back(std::move(*event));
    }
  }
  // Chunks emit sorted runs; within one stream the order reduces to
  // (ts, line, kind).
  std::sort(out.events.begin(), out.events.end(), event_order_less);
  return out;
}

/// K-way merges already-sorted runs into one vector, moving the events
/// (each carries a `std::string stream` — no copies).
std::vector<SchedEvent> merge_runs(std::vector<std::vector<SchedEvent>> runs) {
  std::erase_if(runs, [](const auto& run) { return run.empty(); });
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs.front());

  struct Cursor {
    std::vector<SchedEvent>* run;
    std::size_t pos;
  };
  // Min-heap on the cursor's current event.
  const auto heap_greater = [](const Cursor& a, const Cursor& b) {
    return event_order_less((*b.run)[b.pos], (*a.run)[a.pos]);
  };
  std::size_t total = 0;
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (auto& run : runs) {
    total += run.size();
    heap.push_back(Cursor{&run, 0});
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  std::vector<SchedEvent> out;
  out.reserve(total);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    Cursor& top = heap.back();
    out.push_back(std::move((*top.run)[top.pos]));
    if (++top.pos < top.run->size()) {
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    } else {
      heap.pop_back();
    }
  }
  return out;
}

/// Resolves the stream-wide values from per-chunk candidates (in chunk
/// order, i.e. file order), synthesizes FIRST_LOG, merges the chunk
/// runs, and binds stream-scoped events — semantically identical to a
/// serial pass over the whole stream.
MinedStream stitch_stream(const std::string& name, std::size_t lines_total,
                          std::vector<ChunkOut> chunks) {
  MinedStream out;
  out.name = name;
  out.lines_total = lines_total;
  std::optional<std::int64_t> first_parsed_ts;
  for (const ChunkOut& chunk : chunks) {
    out.lines_unparsed += chunk.lines_unparsed;
    if (!first_parsed_ts) first_parsed_ts = chunk.first_parsed_ts;
    if (out.kind == StreamKind::kUnknown) out.kind = chunk.kind;
    if (!out.bound_container) out.bound_container = chunk.first_container;
    if (!out.bound_app) out.bound_app = chunk.first_app;
  }
  if (!out.bound_app && out.bound_container) {
    out.bound_app = out.bound_container->app;
  }

  std::vector<std::vector<SchedEvent>> runs;
  runs.reserve(chunks.size() + 1);
  for (ChunkOut& chunk : chunks) runs.push_back(std::move(chunk.events));
  // Synthesize FIRST_LOG (messages 9/13) from the first parseable line
  // of instance logs — appended as its own single-event run and placed
  // by the merge (it sorts ahead of any same-line real event via the
  // kind tiebreak), not front-inserted.
  if (first_parsed_ts &&
      (out.kind == StreamKind::kDriver || out.kind == StreamKind::kExecutor)) {
    SchedEvent first;
    first.kind = out.kind == StreamKind::kDriver ? EventKind::kDriverFirstLog
                                                 : EventKind::kExecutorFirstLog;
    first.ts_ms = *first_parsed_ts;
    first.stream = name;
    first.line_no = 1;
    std::vector<SchedEvent> first_run;
    first_run.push_back(std::move(first));
    runs.push_back(std::move(first_run));
  }
  out.events = merge_runs(std::move(runs));

  // Resolve stream-scoped events against the bound ids.
  for (SchedEvent& event : out.events) {
    if (!event.app) event.app = out.bound_app;
    if (!event.container && out.kind == StreamKind::kExecutor) {
      event.container = out.bound_container;
    }
  }
  return out;
}

}  // namespace

MinedStream LogMiner::mine_stream(
    const std::string& name, std::span<const std::string_view> lines) const {
  std::vector<ChunkOut> chunks;
  chunks.push_back(mine_chunk(name, lines, 0));
  return stitch_stream(name, lines.size(), std::move(chunks));
}

MinedStream LogMiner::mine_stream(const std::string& name,
                                  const std::vector<std::string>& lines) const {
  const logging::LogView view = logging::LogView::from_lines(lines);
  return mine_stream(name, view.lines());
}

MineResult LogMiner::mine(const logging::BundleView& view) const {
  const std::vector<std::string> names = view.stream_names();

  // Work list: every stream split into chunks at line boundaries, so all
  // chunks across all streams feed one parallel loop and a dominant
  // stream cannot serialize the run.
  struct ChunkRef {
    std::size_t stream;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<ChunkRef> refs;
  std::vector<std::size_t> first_chunk(names.size() + 1, 0);
  for (std::size_t s = 0; s < names.size(); ++s) {
    first_chunk[s] = refs.size();
    const std::size_t n = view.stream(names[s]).line_count();
    std::size_t chunk_len = n;
    if (options_.threads > 1 && options_.shard_grain > 0) {
      const std::size_t target = 4 * options_.threads;
      chunk_len = std::max(options_.shard_grain, (n + target - 1) / target);
    }
    if (chunk_len == 0) chunk_len = 1;
    std::size_t begin = 0;
    do {
      const std::size_t end = std::min(n, begin + chunk_len);
      refs.push_back(ChunkRef{s, begin, end});
      begin = end;
    } while (begin < n);
  }
  first_chunk[names.size()] = refs.size();

  std::vector<ChunkOut> outs(refs.size());
  const auto mine_one = [&](std::size_t c) {
    const ChunkRef& ref = refs[c];
    const auto& lines = view.stream(names[ref.stream]).lines();
    outs[c] = mine_chunk(
        names[ref.stream],
        std::span<const std::string_view>(lines).subspan(
            ref.begin, ref.end - ref.begin),
        ref.begin);
  };
  if (options_.threads > 1 && refs.size() > 1) {
    ThreadPool pool(options_.threads);
    parallel_for(pool, refs.size(), mine_one);
  } else {
    for (std::size_t c = 0; c < refs.size(); ++c) mine_one(c);
  }

  MineResult result;
  result.streams.reserve(names.size());
  std::vector<std::vector<SchedEvent>> runs;
  runs.reserve(names.size());
  for (std::size_t s = 0; s < names.size(); ++s) {
    std::vector<ChunkOut> chunks(
        std::make_move_iterator(outs.begin() + first_chunk[s]),
        std::make_move_iterator(outs.begin() + first_chunk[s + 1]));
    MinedStream stream = stitch_stream(
        names[s], view.stream(names[s]).line_count(), std::move(chunks));
    result.lines_total += stream.lines_total;
    result.lines_unparsed += stream.lines_unparsed;
    // Per-stream runs are already sorted; move them out (no per-event
    // copies) and k-way merge instead of re-sorting globally.
    runs.push_back(std::move(stream.events));
    result.streams.push_back(std::move(stream));
  }
  result.events = merge_runs(std::move(runs));
  return result;
}

MineResult LogMiner::mine(const logging::LogBundle& bundle) const {
  return mine(logging::BundleView::from_bundle(bundle));
}

MineResult LogMiner::mine_directory(const std::filesystem::path& dir) const {
  return mine(logging::BundleView::read_from_directory(dir));
}

}  // namespace sdc::checker
