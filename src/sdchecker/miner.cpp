#include "sdchecker/miner.hpp"

#include <algorithm>
#include <cctype>

#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "logging/timestamp.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace sdc::checker {

bool event_order_less(const SchedEvent& a, const SchedEvent& b) {
  if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.line_no != b.line_no) return a.line_no < b.line_no;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

bool event_order_less(const EventBatch::View& a, const EventBatch::View& b) {
  if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.line_no != b.line_no) return a.line_no < b.line_no;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

std::optional<RotationSuffix> split_rotation_suffix(std::string_view name) {
  const std::size_t dot = name.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 >= name.size()) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(dot + 1);
  unsigned long index = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    index = index * 10 + static_cast<unsigned long>(c - '0');
  }
  return RotationSuffix{std::string(name.substr(0, dot)), index};
}

namespace {

using logging::Diagnostic;
using logging::DiagnosticKind;

/// A maximal run of consecutive unparsable lines (absolute 1-based
/// `start`).  `first_plain` / `last_plain` record whether the run's
/// boundary lines were plain failures (not garbage, not timestamp-cut) —
/// the head/tail-truncation rules only fire on plain boundaries so one
/// phenomenon is not reported twice.
struct UnparsedRun {
  std::size_t start = 0;
  std::size_t len = 0;
  bool first_plain = false;
  bool last_plain = false;
};

/// What one chunk of a stream learned on its own: its events (sorted),
/// the *first-seen* candidates the stitch pass resolves stream-wide, and
/// provisional diagnostic state whose boundary cases (runs and timestamp
/// jumps spanning a chunk edge) the stitch pass closes.
struct ChunkOut {
  EventBatch events;
  std::size_t lines_unparsed = 0;
  /// Parsed lines whose message was too short for any extractor rule —
  /// dispatch skipped entirely (aggregated into mine.scan.prefilter_skipped).
  std::size_t prefilter_skipped = 0;
  std::optional<std::int64_t> first_parsed_ts;
  StreamKind kind = StreamKind::kUnknown;
  std::optional<ApplicationId> first_app;
  std::optional<ContainerId> first_container;

  // Diagnostic bookkeeping (all line numbers absolute, 1-based).
  std::size_t garbage_count = 0;
  std::size_t garbage_first_line = 0;
  std::size_t tscut_count = 0;
  std::size_t tscut_first_line = 0;
  std::vector<UnparsedRun> unparsed_runs;
  std::size_t regression_count = 0;
  std::size_t regression_first_line = 0;
  std::int64_t regression_max_ms = 0;
  std::size_t first_parsed_line = 0;
  std::optional<std::int64_t> last_parsed_ts;
};

/// Mines lines [base_line, base_line + lines.size()) of one stream.
/// Line numbers are 1-based, so the produced events carry
/// `base_line + i + 1`.  Events land in a columnar batch carrying the
/// interned `stream_id`.
ChunkOut mine_chunk(std::uint32_t stream_id,
                    const std::shared_ptr<const StringInterner>& pool,
                    std::span<const std::string_view> lines,
                    std::size_t base_line, const MinerOptions& options) {
  ChunkOut out;
  out.events = EventBatch(pool);
  const std::size_t shortest_rule_len = min_rule_message_len();
  UnparsedRun run;  // run.len == 0 <=> no open run
  const auto close_run = [&out, &run] {
    if (run.len > 0) out.unparsed_runs.push_back(run);
    run = UnparsedRun{};
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_no = base_line + i + 1;
    const auto parsed = parse_line(lines[i]);
    if (!parsed) {
      ++out.lines_unparsed;
      const UnparsedClass fail = classify_unparsed_line(lines[i]);
      if (fail == UnparsedClass::kBinaryGarbage) {
        ++out.garbage_count;
        if (out.garbage_first_line == 0) out.garbage_first_line = line_no;
      } else if (fail == UnparsedClass::kTruncated) {
        ++out.tscut_count;
        if (out.tscut_first_line == 0) out.tscut_first_line = line_no;
      }
      if (run.len == 0) {
        run.start = line_no;
        run.first_plain = fail == UnparsedClass::kPlain;
      }
      ++run.len;
      run.last_plain = fail == UnparsedClass::kPlain;
      continue;
    }
    close_run();
    if (!out.first_parsed_ts) {
      out.first_parsed_ts = parsed->epoch_ms;
      out.first_parsed_line = line_no;
    }
    if (out.last_parsed_ts &&
        *out.last_parsed_ts - parsed->epoch_ms > options.skew_budget_ms) {
      ++out.regression_count;
      if (out.regression_first_line == 0) out.regression_first_line = line_no;
      out.regression_max_ms =
          std::max(out.regression_max_ms, *out.last_parsed_ts - parsed->epoch_ms);
    }
    out.last_parsed_ts = parsed->epoch_ms;
    if (out.kind == StreamKind::kUnknown) {
      out.kind = classify_line(*parsed);
    }
    // Record the first application/container id seen in this chunk; the
    // stitch pass binds the stream to the first across chunks (driver
    // and executor logs do not carry ids on every line — Fig. 2).
    if (!out.first_container) {
      if (auto container = find_container_id(parsed->message)) {
        out.first_container = container;
      }
    }
    if (!out.first_app) {
      if (auto app = find_application_id(parsed->message)) {
        out.first_app = app;
      }
    }
    if (parsed->message.size() < shortest_rule_len) ++out.prefilter_skipped;
    extract_event_into(*parsed, stream_id, line_no, out.events);
  }
  close_run();
  // Chunks emit sorted runs; within one stream the order reduces to
  // (ts, line, kind).  Columnar index sort — the keys are contiguous
  // arrays.
  out.events.sort();
  return out;
}

/// Derives the stream's diagnostics from the merged per-chunk state, in a
/// fixed order: (rotation pre-diagnostics,) garbage summary, cut-line
/// summary, head tear, bursts by position, tail tear, regression summary.
/// Everything here is computed from chunk-order-merged data, so sharded
/// and serial mining produce identical records.
void emit_stream_diagnostics(MinedStream& out,
                             const std::vector<ChunkOut>& chunks,
                             const MinerOptions& options) {
  // Fold per-line summaries and merge boundary state across chunks.
  std::size_t garbage_count = 0, garbage_first = 0;
  std::size_t tscut_count = 0, tscut_first = 0;
  std::size_t reg_count = 0, reg_first = 0;
  std::int64_t reg_max = 0;
  std::optional<std::int64_t> prev_last_ts;
  std::vector<UnparsedRun> runs;
  for (const ChunkOut& chunk : chunks) {
    garbage_count += chunk.garbage_count;
    if (garbage_first == 0) garbage_first = chunk.garbage_first_line;
    tscut_count += chunk.tscut_count;
    if (tscut_first == 0) tscut_first = chunk.tscut_first_line;
    // A jump backwards across the chunk boundary is a regression the
    // chunks could not see on their own.
    if (chunk.first_parsed_ts && prev_last_ts &&
        *prev_last_ts - *chunk.first_parsed_ts > options.skew_budget_ms) {
      ++reg_count;
      if (reg_first == 0) reg_first = chunk.first_parsed_line;
      reg_max = std::max(reg_max, *prev_last_ts - *chunk.first_parsed_ts);
    }
    if (chunk.regression_count > 0) {
      reg_count += chunk.regression_count;
      if (reg_first == 0) reg_first = chunk.regression_first_line;
      reg_max = std::max(reg_max, chunk.regression_max_ms);
    }
    if (chunk.last_parsed_ts) prev_last_ts = chunk.last_parsed_ts;
    // Unparsable runs touching the chunk edge continue into the next
    // chunk's leading run; merge adjacent runs.
    for (const UnparsedRun& run : chunk.unparsed_runs) {
      if (!runs.empty() && runs.back().start + runs.back().len == run.start) {
        runs.back().len += run.len;
        runs.back().last_plain = run.last_plain;
      } else {
        runs.push_back(run);
      }
    }
  }

  auto& diags = out.diagnostics;
  if (garbage_count > 0) {
    diags.push_back(Diagnostic{DiagnosticKind::kBinaryGarbage, out.name,
                               garbage_first, garbage_count,
                               "line(s) contain NUL or mostly non-printable "
                               "bytes"});
  }
  if (tscut_count > 0) {
    diags.push_back(Diagnostic{DiagnosticKind::kTruncatedLine, out.name,
                               tscut_first, tscut_count,
                               "line(s) cut mid-write: timestamp intact, "
                               "remainder malformed"});
  }
  for (const UnparsedRun& run : runs) {
    if (run.start == 1 && run.first_plain) {
      diags.push_back(Diagnostic{DiagnosticKind::kTruncatedLine, out.name, 1,
                                 1,
                                 "stream begins mid-line (head truncation or "
                                 "rotation tear)"});
    }
  }
  for (const UnparsedRun& run : runs) {
    if (run.len >= options.unparsable_burst_min) {
      diags.push_back(Diagnostic{DiagnosticKind::kUnparsableBurst, out.name,
                                 run.start, run.len,
                                 std::to_string(run.len) +
                                     " consecutive unparsable lines"});
    }
  }
  for (const UnparsedRun& run : runs) {
    const bool is_tail = run.start + run.len - 1 == out.lines_total;
    const bool head_already = run.start == 1 && run.len == 1 && run.first_plain;
    if (is_tail && run.last_plain && !head_already) {
      diags.push_back(Diagnostic{DiagnosticKind::kTruncatedLine, out.name,
                                 out.lines_total, 1,
                                 "stream ends mid-line (tail truncation)"});
    }
  }
  if (reg_count > 0) {
    diags.push_back(Diagnostic{DiagnosticKind::kTimestampRegression, out.name,
                               reg_first, reg_count,
                               "timestamp jumped backwards by up to " +
                                   std::to_string(reg_max) +
                                   " ms (budget " +
                                   std::to_string(options.skew_budget_ms) +
                                   " ms)"});
  }
  out.diag_counts = logging::count_diagnostics(diags);
}

/// Resolves the stream-wide values from per-chunk candidates (in chunk
/// order, i.e. file order), synthesizes FIRST_LOG, merges the chunk
/// runs, binds stream-scoped events, and derives the stream's
/// diagnostics — semantically identical to a serial pass over the whole
/// stream.
MinedStream stitch_stream(const std::string& name, std::uint32_t stream_id,
                          const std::shared_ptr<const StringInterner>& pool,
                          std::size_t lines_total, std::vector<ChunkOut> chunks,
                          const MinerOptions& options,
                          std::vector<Diagnostic> pre_diagnostics = {}) {
  MinedStream out;
  out.name = name;
  out.lines_total = lines_total;
  out.diagnostics = std::move(pre_diagnostics);
  std::optional<std::int64_t> first_parsed_ts;
  for (const ChunkOut& chunk : chunks) {
    out.lines_unparsed += chunk.lines_unparsed;
    if (!first_parsed_ts) first_parsed_ts = chunk.first_parsed_ts;
    if (out.kind == StreamKind::kUnknown) out.kind = chunk.kind;
    if (!out.bound_container) out.bound_container = chunk.first_container;
    if (!out.bound_app) out.bound_app = chunk.first_app;
  }
  if (!out.bound_app && out.bound_container) {
    out.bound_app = out.bound_container->app;
  }
  emit_stream_diagnostics(out, chunks, options);

  std::vector<EventBatch> runs;
  runs.reserve(chunks.size() + 1);
  for (ChunkOut& chunk : chunks) runs.push_back(std::move(chunk.events));
  // Synthesize FIRST_LOG (messages 9/13) from the first parseable line
  // of instance logs — appended as its own single-event run and placed
  // by the merge (it sorts ahead of any same-line real event via the
  // kind tiebreak), not front-inserted.
  if (first_parsed_ts &&
      (out.kind == StreamKind::kDriver || out.kind == StreamKind::kExecutor)) {
    EventBatch first_run(pool);
    first_run.push(out.kind == StreamKind::kDriver
                       ? EventKind::kDriverFirstLog
                       : EventKind::kExecutorFirstLog,
                   *first_parsed_ts, stream_id, 1, std::nullopt, std::nullopt);
    runs.push_back(std::move(first_run));
  }
  out.events = merge_event_batches(std::move(runs));

  // Resolve stream-scoped events against the bound ids.
  const bool bind_container =
      out.bound_container && out.kind == StreamKind::kExecutor;
  for (std::size_t i = 0; i < out.events.size(); ++i) {
    if (out.bound_app && !out.events.has_app(i)) {
      out.events.set_app(i, *out.bound_app);
    }
    if (bind_container && !out.events.has_container(i)) {
      out.events.set_container(i, *out.bound_container);
    }
  }
  return out;
}

/// One logical stream to mine: either a single physical stream (lines
/// alias the view) or a rotated family reassembled in segment order
/// (lines owned here).
struct LogicalStream {
  std::string name;
  std::vector<std::string_view> owned;
  std::span<const std::string_view> lines;
  std::vector<Diagnostic> pre_diagnostics;
};

/// Groups `view`'s streams into logical streams, reassembling rotated
/// families (`base`, `base.1`, `base.2`, ... — higher suffix = older,
/// logrotate order: oldest first, base last).
std::vector<LogicalStream> group_rotations(const logging::BundleView& view) {
  struct Member {
    // Sort key: base members (no suffix) carry index 0 and rank 1 (they
    // are the newest); suffixed members rank 0 ordered by descending
    // index.
    unsigned long index;
    std::string name;
  };
  std::map<std::string, std::vector<Member>> families;
  for (const std::string& name : view.stream_names()) {
    if (const auto rotation = split_rotation_suffix(name)) {
      families[rotation->base].push_back(Member{rotation->index, name});
    } else {
      families[name].push_back(Member{0, name});
    }
  }
  std::vector<LogicalStream> out;
  out.reserve(families.size());
  for (auto& [base, members] : families) {
    LogicalStream logical;
    logical.name = base;
    if (members.size() == 1 && members.front().name == base) {
      logical.lines = view.stream(base).lines();
      out.push_back(std::move(logical));
      continue;
    }
    // Oldest (highest suffix) first; the unsuffixed base — the live,
    // newest segment — last.
    std::sort(members.begin(), members.end(),
              [&base](const Member& a, const Member& b) {
                const bool a_base = a.name == base;
                const bool b_base = b.name == base;
                if (a_base != b_base) return b_base;
                return a.index > b.index;
              });
    std::size_t total = 0;
    std::string segment_list;
    for (const Member& member : members) {
      total += view.stream(member.name).line_count();
      if (!segment_list.empty()) segment_list += ", ";
      segment_list += member.name;
    }
    logical.owned.reserve(total);
    for (const Member& member : members) {
      const auto& lines = view.stream(member.name).lines();
      logical.owned.insert(logical.owned.end(), lines.begin(), lines.end());
    }
    logical.lines = logical.owned;
    logical.pre_diagnostics.push_back(
        Diagnostic{DiagnosticKind::kRotationGap, base, 0, members.size(),
                   "reassembled " + std::to_string(members.size()) +
                       " rotated segments: " + segment_list});
    out.push_back(std::move(logical));
  }
  return out;
}

/// Cached per-kind diagnostic counters ("mine.diagnostics.<kind>").
obs::Counter& diagnostic_counter(DiagnosticKind kind) {
  static const auto& counters = *[] {
    auto* out = new std::array<obs::Counter*, logging::kDiagnosticKindCount>{};
    for (std::size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = &obs::catalog_counter(
          obs::metric::kMineDiagnostics,
          logging::diagnostic_kind_name(static_cast<DiagnosticKind>(i)));
    }
    return out;
  }();
  return *counters[static_cast<std::size_t>(kind)];
}

}  // namespace

/// The plan's state is exactly what `LogMiner::mine` used to build
/// inline: the logical streams (rotations reassembled), the frozen
/// interner, the chunk work list, and one output slot per chunk.  The
/// types live in this file's anonymous namespace; Impl is defined and
/// used only here.
struct MinePlan::Impl {
  struct ChunkRef {
    std::size_t stream;
    std::size_t begin;
    std::size_t end;
  };

  MinerOptions options;
  std::vector<LogicalStream> logicals;
  std::shared_ptr<const StringInterner> pool;
  std::vector<ChunkRef> refs;
  /// refs index range of stream s: [first_chunk[s], first_chunk[s+1]).
  std::vector<std::size_t> first_chunk;
  std::vector<ChunkOut> outs;
  obs::Counter& lines_counter;
  obs::Counter& prefilter_counter;

  Impl()
      : lines_counter(obs::catalog_counter(obs::metric::kMineLines)),
        prefilter_counter(
            obs::catalog_counter(obs::metric::kMineScanPrefilterSkipped)) {}
};

MinePlan::MinePlan(const logging::BundleView& view,
                   const MinerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  static obs::Gauge& lines_expected =
      obs::catalog_gauge(obs::metric::kMineLinesExpected);
  // Which scan backend this mine runs with (one count per plan — the
  // backend cannot change mid-mine).
  obs::catalog_counter(
      obs::metric::kMineScanBackend,
      simd::scan_backend_name(simd::active_scan_backend()))
      .add(1);

  impl_->logicals = group_rotations(view);
  {
    std::int64_t expected = 0;
    for (const LogicalStream& logical : impl_->logicals) {
      expected += static_cast<std::int64_t>(logical.lines.size());
    }
    // Cumulative like the counters: `mine.lines_expected - mine.lines` is
    // the remaining work even across repeated mines.
    lines_expected.add(expected);
  }

  // One string pool for the whole mine: every batch stores interned
  // stream ids; the pool is frozen (const) before the workers start, so
  // sharing it across mining threads is read-only.  group_rotations
  // returns streams in name order, so id order equals name order and the
  // merge comparator almost never touches the strings.
  impl_->pool = [this] {
    auto building = std::make_shared<StringInterner>();
    for (const LogicalStream& logical : impl_->logicals) {
      building->intern(logical.name);
    }
    return std::shared_ptr<const StringInterner>(std::move(building));
  }();

  // Work list: every logical stream split into chunks at line boundaries,
  // so all chunks across all streams feed one parallel loop and a
  // dominant stream cannot serialize the run.
  impl_->first_chunk.assign(impl_->logicals.size() + 1, 0);
  for (std::size_t s = 0; s < impl_->logicals.size(); ++s) {
    impl_->first_chunk[s] = impl_->refs.size();
    const std::size_t n = impl_->logicals[s].lines.size();
    std::size_t chunk_len = n;
    if (options.threads > 1 && options.shard_grain > 0) {
      const std::size_t target = 4 * options.threads;
      chunk_len = std::max(options.shard_grain, (n + target - 1) / target);
    }
    if (chunk_len == 0) chunk_len = 1;
    std::size_t begin = 0;
    do {
      const std::size_t end = std::min(n, begin + chunk_len);
      impl_->refs.push_back(Impl::ChunkRef{s, begin, end});
      begin = end;
    } while (begin < n);
  }
  impl_->first_chunk[impl_->logicals.size()] = impl_->refs.size();
  impl_->outs.resize(impl_->refs.size());
}

MinePlan::~MinePlan() = default;
MinePlan::MinePlan(MinePlan&&) noexcept = default;
MinePlan& MinePlan::operator=(MinePlan&&) noexcept = default;

std::size_t MinePlan::stream_count() const { return impl_->logicals.size(); }

std::size_t MinePlan::chunk_count() const { return impl_->refs.size(); }

std::size_t MinePlan::stream_of(std::size_t chunk) const {
  return impl_->refs[chunk].stream;
}

std::size_t MinePlan::chunks_of(std::size_t stream) const {
  return impl_->first_chunk[stream + 1] - impl_->first_chunk[stream];
}

const std::string& MinePlan::stream_name(std::size_t stream) const {
  return impl_->logicals[stream].name;
}

std::size_t MinePlan::stream_lines(std::size_t stream) const {
  return impl_->logicals[stream].lines.size();
}

const std::shared_ptr<const StringInterner>& MinePlan::interner() const {
  return impl_->pool;
}

void MinePlan::run_chunk(std::size_t chunk) {
  const auto chunk_span = obs::Tracer::global().span("mine.chunk");
  const Impl::ChunkRef& ref = impl_->refs[chunk];
  const LogicalStream& logical = impl_->logicals[ref.stream];
  impl_->outs[chunk] = mine_chunk(
      impl_->pool->find(logical.name), impl_->pool,
      logical.lines.subspan(ref.begin, ref.end - ref.begin), ref.begin,
      impl_->options);
  impl_->lines_counter.add(ref.end - ref.begin);
  impl_->prefilter_counter.add(impl_->outs[chunk].prefilter_skipped);
}

MinedStream MinePlan::stitch(std::size_t stream) {
  LogicalStream& logical = impl_->logicals[stream];
  std::vector<ChunkOut> chunks(
      std::make_move_iterator(impl_->outs.begin() +
                              static_cast<std::ptrdiff_t>(
                                  impl_->first_chunk[stream])),
      std::make_move_iterator(impl_->outs.begin() +
                              static_cast<std::ptrdiff_t>(
                                  impl_->first_chunk[stream + 1])));
  return stitch_stream(logical.name, impl_->pool->find(logical.name),
                       impl_->pool, logical.lines.size(), std::move(chunks),
                       impl_->options, std::move(logical.pre_diagnostics));
}

MinedStream LogMiner::mine_stream(
    const std::string& name, std::span<const std::string_view> lines) const {
  auto pool = std::make_shared<StringInterner>();
  const std::uint32_t stream_id = pool->intern(name);
  const std::shared_ptr<const StringInterner> frozen = std::move(pool);
  std::vector<ChunkOut> chunks;
  chunks.push_back(mine_chunk(stream_id, frozen, lines, 0, options_));
  return stitch_stream(name, stream_id, frozen, lines.size(),
                       std::move(chunks), options_);
}

MinedStream LogMiner::mine_stream(const std::string& name,
                                  const std::vector<std::string>& lines) const {
  const logging::LogView view = logging::LogView::from_lines(lines);
  return mine_stream(name, view.lines());
}

MineResult LogMiner::mine(const logging::BundleView& view) const {
  const auto total_span = obs::Tracer::global().span("mine.total");
  static obs::Counter& events_counter =
      obs::catalog_counter(obs::metric::kMineEvents);
  static obs::Counter& streams_counter =
      obs::catalog_counter(obs::metric::kMineStreams);

  MinePlan plan(view, options_);
  if (options_.threads > 1 && plan.chunk_count() > 1) {
    ThreadPool pool(options_.threads);
    parallel_for(pool, plan.chunk_count(),
                 [&plan](std::size_t c) { plan.run_chunk(c); });
  } else {
    for (std::size_t c = 0; c < plan.chunk_count(); ++c) plan.run_chunk(c);
  }

  MineResult result;
  result.streams.reserve(plan.stream_count());
  std::vector<EventBatch> runs;
  runs.reserve(plan.stream_count());
  {
    const auto stitch_span = obs::Tracer::global().span("mine.stitch");
    for (std::size_t s = 0; s < plan.stream_count(); ++s) {
      MinedStream stream = plan.stitch(s);
      result.lines_total += stream.lines_total;
      result.lines_unparsed += stream.lines_unparsed;
      result.diagnostics.insert(result.diagnostics.end(),
                                stream.diagnostics.begin(),
                                stream.diagnostics.end());
      result.diag_counts += stream.diag_counts;
      // Per-stream runs are already sorted; move them out (no per-event
      // copies) and k-way merge instead of re-sorting globally.
      runs.push_back(std::move(stream.events));
      result.streams.push_back(std::move(stream));
    }
  }
  {
    const auto merge_span = obs::Tracer::global().span("mine.merge");
    result.events = merge_event_batches(std::move(runs));
  }
  streams_counter.add(result.streams.size());
  events_counter.add(result.events.size());
  for (const Diagnostic& diagnostic : result.diagnostics) {
    diagnostic_counter(diagnostic.kind).add(diagnostic.count);
  }
  return result;
}

MineResult LogMiner::mine(const logging::LogBundle& bundle) const {
  return mine(logging::BundleView::from_bundle(bundle));
}

MineResult LogMiner::mine_directory(const std::filesystem::path& dir) const {
  std::vector<Diagnostic> io_diagnostics;
  const logging::BundleView view =
      logging::BundleView::read_from_directory(dir, &io_diagnostics);
  MineResult result = mine(view);
  if (!io_diagnostics.empty()) {
    for (const Diagnostic& diagnostic : io_diagnostics) {
      result.diag_counts.add(diagnostic);
    }
    result.diagnostics.insert(result.diagnostics.begin(),
                              std::make_move_iterator(io_diagnostics.begin()),
                              std::make_move_iterator(io_diagnostics.end()));
  }
  return result;
}

}  // namespace sdc::checker
