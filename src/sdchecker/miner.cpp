#include "sdchecker/miner.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace sdc::checker {

MinedStream LogMiner::mine_stream(const std::string& name,
                                  const std::vector<std::string>& lines) const {
  MinedStream out;
  out.name = name;
  out.lines_total = lines.size();
  std::optional<std::int64_t> first_parsed_ts;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto parsed = parse_line(lines[i]);
    if (!parsed) {
      ++out.lines_unparsed;
      continue;
    }
    if (!first_parsed_ts) first_parsed_ts = parsed->epoch_ms;
    if (out.kind == StreamKind::kUnknown) {
      out.kind = classify_line(*parsed);
    }
    // Bind the stream to the first application/container id seen anywhere;
    // driver and executor logs do not carry ids on every line (Fig. 2).
    if (!out.bound_container) {
      if (auto container = find_container_id(parsed->message)) {
        out.bound_container = container;
      }
    }
    if (!out.bound_app) {
      if (auto app = find_application_id(parsed->message)) {
        out.bound_app = app;
      }
    }
    if (auto event = extract_event(*parsed, name, i + 1)) {
      out.events.push_back(std::move(*event));
    }
  }
  if (!out.bound_app && out.bound_container) {
    out.bound_app = out.bound_container->app;
  }
  // Synthesize FIRST_LOG (messages 9/13) from the first parseable line of
  // instance logs.
  if (first_parsed_ts &&
      (out.kind == StreamKind::kDriver || out.kind == StreamKind::kExecutor)) {
    SchedEvent first;
    first.kind = out.kind == StreamKind::kDriver ? EventKind::kDriverFirstLog
                                                 : EventKind::kExecutorFirstLog;
    first.ts_ms = *first_parsed_ts;
    first.stream = name;
    first.line_no = 1;
    out.events.insert(out.events.begin(), std::move(first));
  }
  // Resolve stream-scoped events against the bound ids.
  for (SchedEvent& event : out.events) {
    if (!event.app) event.app = out.bound_app;
    if (!event.container && out.kind == StreamKind::kExecutor) {
      event.container = out.bound_container;
    }
  }
  return out;
}

MineResult LogMiner::mine(const logging::LogBundle& bundle) const {
  const std::vector<std::string> names = bundle.stream_names();
  std::vector<MinedStream> streams(names.size());

  const auto mine_one = [&](std::size_t i) {
    streams[i] = mine_stream(names[i], bundle.lines(names[i]));
  };
  if (options_.threads > 1 && names.size() > 1) {
    ThreadPool pool(options_.threads);
    parallel_for(pool, names.size(), mine_one);
  } else {
    for (std::size_t i = 0; i < names.size(); ++i) mine_one(i);
  }

  MineResult result;
  for (MinedStream& stream : streams) {
    result.lines_total += stream.lines_total;
    result.lines_unparsed += stream.lines_unparsed;
    result.events.insert(result.events.end(), stream.events.begin(),
                         stream.events.end());
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const SchedEvent& a, const SchedEvent& b) {
              if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.line_no < b.line_no;
            });
  result.streams = std::move(streams);
  return result;
}

MineResult LogMiner::mine_directory(const std::filesystem::path& dir) const {
  return mine(logging::LogBundle::read_from_directory(dir));
}

}  // namespace sdc::checker
