// Fifth stage: delay decomposition (paper §III-C).
//
// All values are millisecond intervals between Table-I events; a field is
// nullopt when the required events are missing from the logs.  Negative
// values are preserved (they indicate clock skew between daemons and are
// flagged by the anomaly detector rather than silently clamped).
//
//   total     SUBMITTED(1)            -> first FIRST_TASK(14)
//   am        SUBMITTED(1)            -> APT_REGISTERED(3)
//   cf / cl   SUBMITTED(1)            -> first / last worker RUNNING(8)
//   driver    DRV_FIRST_LOG(9)        -> DRV_REGISTER(10)
//   executor  first EXE_FIRST_LOG(13) -> first FIRST_TASK(14)
//   in_app    driver + executor                (Spark-caused)
//   out_app   total - in_app                   (YARN-caused)
//   alloc     START_ALLO(11)          -> END_ALLO(12)
//   per container:
//     acquisition   ALLOCATED(4)  -> ACQUIRED(5)
//     localization  LOCALIZING(6) -> SCHEDULED(7)
//     queuing       SCHEDULED(7)  -> RUNNING(8)
//     launching     RUNNING(8)    -> instance FIRST_LOG(9/13)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdchecker/grouping.hpp"

namespace sdc::checker {

/// Per-container component delays (ms).
struct ContainerDelays {
  ContainerId id;
  bool is_am = false;
  std::optional<std::int64_t> acquisition;
  std::optional<std::int64_t> localization;
  std::optional<std::int64_t> queuing;
  std::optional<std::int64_t> launching;
  /// Executor idle time (paper Fig. 10): this executor's FIRST_LOG to its
  /// own first task — the span it sits waiting for the driver's user
  /// initialization and task scheduling.
  std::optional<std::int64_t> executor_idle;
};

/// Full decomposition for one application (ms).
struct Delays {
  ApplicationId app;

  std::optional<std::int64_t> total;
  std::optional<std::int64_t> am;
  std::optional<std::int64_t> cf;
  std::optional<std::int64_t> cl;
  std::optional<std::int64_t> cl_minus_cf;
  std::optional<std::int64_t> driver;
  std::optional<std::int64_t> executor;
  std::optional<std::int64_t> in_app;
  std::optional<std::int64_t> out_app;
  std::optional<std::int64_t> alloc;

  std::vector<ContainerDelays> containers;

  /// Convenience accessors over `containers` (workers only, value present).
  [[nodiscard]] std::vector<std::int64_t> worker_acquisitions() const;
  [[nodiscard]] std::vector<std::int64_t> worker_localizations() const;
  [[nodiscard]] std::vector<std::int64_t> worker_queuings() const;
  [[nodiscard]] std::vector<std::int64_t> worker_launchings() const;
  [[nodiscard]] std::vector<std::int64_t> worker_idles() const;
};

/// Computes the decomposition from one application's timeline.
[[nodiscard]] Delays decompose(const AppTimeline& timeline);

}  // namespace sdc::checker
