#include "sdchecker/anomaly.hpp"

namespace sdc::checker {
namespace {

void add(std::vector<Anomaly>& out, AnomalyType type, const ApplicationId& app,
         std::string entity, std::string detail) {
  out.push_back(Anomaly{type, app, std::move(entity), std::move(detail)});
}

void check_negative(std::vector<Anomaly>& out, const ApplicationId& app,
                    const std::string& entity, std::string_view name,
                    const std::optional<std::int64_t>& value) {
  if (value && *value < 0) {
    add(out, AnomalyType::kNegativeInterval, app, entity,
        std::string(name) + " is negative (" + std::to_string(*value) +
            " ms) — daemon clocks are skewed");
  }
}

}  // namespace

std::string_view anomaly_type_name(AnomalyType type) {
  switch (type) {
    case AnomalyType::kNeverUsedContainer:
      return "never-used-container";
    case AnomalyType::kMissingEvent:
      return "missing-event";
    case AnomalyType::kNegativeInterval:
      return "negative-interval";
  }
  return "?";
}

void detect_anomalies(const AppTimeline& timeline, const Delays& delays,
                      std::vector<Anomaly>& out) {
  const ApplicationId& app = timeline.app;

  // --- never-used containers (SPARK-21562 signature) ----------------------
  for (const auto& [id, container] : timeline.containers) {
    if (id.is_am()) continue;
    const bool rm_side = container.has(EventKind::kContainerAllocated) ||
                         container.has(EventKind::kContainerAcquired);
    const bool nm_side = container.has(EventKind::kNmLocalizing) ||
                         container.has(EventKind::kNmScheduled) ||
                         container.has(EventKind::kNmRunning);
    const bool exec_side = container.has(EventKind::kExecutorFirstLog) ||
                           container.has(EventKind::kExecutorFirstTask);
    if (rm_side && !nm_side && !exec_side) {
      add(out, AnomalyType::kNeverUsedContainer, app, id.str(),
          "container was allocated" +
              std::string(container.has(EventKind::kContainerAcquired)
                              ? " and acquired"
                              : "") +
              " but shows no NodeManager or executor activity "
              "(application over-requested containers)");
    }
  }

  // --- broken chains -------------------------------------------------------
  if (timeline.has(EventKind::kAttemptRegistered) &&
      !timeline.has(EventKind::kAppSubmitted)) {
    add(out, AnomalyType::kMissingEvent, app, "app",
        "APT_REGISTERED present but SUBMITTED missing (RM log truncated?)");
  }
  for (const auto& [id, container] : timeline.containers) {
    if (container.has(EventKind::kNmScheduled) &&
        !container.has(EventKind::kNmLocalizing)) {
      add(out, AnomalyType::kMissingEvent, app, id.str(),
          "SCHEDULED present but LOCALIZING missing (NM log truncated?)");
    }
    if (container.has(EventKind::kContainerAcquired) &&
        !container.has(EventKind::kContainerAllocated)) {
      add(out, AnomalyType::kMissingEvent, app, id.str(),
          "ACQUIRED present but ALLOCATED missing (RM log truncated?)");
    }
    if (container.has(EventKind::kExecutorFirstTask) &&
        !container.has(EventKind::kExecutorFirstLog)) {
      add(out, AnomalyType::kMissingEvent, app, id.str(),
          "FIRST_TASK present but executor FIRST_LOG missing");
    }
  }

  // --- negative intervals (clock skew) -------------------------------------
  check_negative(out, app, "app", "total scheduling delay", delays.total);
  check_negative(out, app, "app", "AM delay", delays.am);
  check_negative(out, app, "app", "driver delay", delays.driver);
  check_negative(out, app, "app", "executor delay", delays.executor);
  check_negative(out, app, "app", "allocation delay", delays.alloc);
  // cf/cl (submission -> first/last worker RUNNING) and out-app (YARN-
  // caused share) are computed in decompose but were historically never
  // checked — a skewed NM clock surfaces exactly here.
  check_negative(out, app, "app", "cf (first-container) delay", delays.cf);
  check_negative(out, app, "app", "cl (last-container) delay", delays.cl);
  check_negative(out, app, "app", "out-app delay", delays.out_app);
  for (const ContainerDelays& c : delays.containers) {
    const std::string entity = c.id.str();
    check_negative(out, app, entity, "acquisition delay", c.acquisition);
    check_negative(out, app, entity, "localization delay", c.localization);
    check_negative(out, app, entity, "queuing delay", c.queuing);
    check_negative(out, app, entity, "launching delay", c.launching);
    check_negative(out, app, entity, "executor idle time", c.executor_idle);
  }
}

}  // namespace sdc::checker
