#include "sdchecker/parsed_line.hpp"

#include <cstdint>

#include "common/simd.hpp"
#include "logging/timestamp.hpp"

namespace sdc::checker {

namespace {

/// Parses Spark's default log4j pattern `yy/MM/dd HH:mm:ss` (two-digit
/// year, second precision, no milliseconds).  Returns epoch ms.
std::optional<std::int64_t> parse_spark_short_ts(std::string_view text) {
  // Layout: yy/MM/dd HH:mm:ss  (17 chars).  Branchless like
  // logging::parse_epoch_ms: accumulate a bad flag across all positions,
  // exit once.
  if (text.size() < 17) return std::nullopt;
  const char* p = text.data();
  std::uint32_t bad = 0;
  const auto digits = [p, &bad](std::size_t pos) -> std::uint32_t {
    const std::uint32_t a =
        static_cast<std::uint32_t>(static_cast<unsigned char>(p[pos])) - '0';
    const std::uint32_t b =
        static_cast<std::uint32_t>(static_cast<unsigned char>(p[pos + 1])) -
        '0';
    bad |= (a > 9u) | (b > 9u);
    return a * 10 + b;
  };
  bad |= p[2] != '/';
  bad |= p[5] != '/';
  bad |= p[8] != ' ';
  bad |= p[11] != ':';
  bad |= p[14] != ':';
  const std::uint32_t yy = digits(0);
  const std::uint32_t mo = digits(3);
  const std::uint32_t dd = digits(6);
  const std::uint32_t hh = digits(9);
  const std::uint32_t mi = digits(12);
  const std::uint32_t ss = digits(15);
  bad |= hh > 23u;
  bad |= mi > 59u;
  bad |= ss > 59u;
  if (bad != 0) return std::nullopt;
  // Same impossible-date guard as the log4j parser: Feb 31 is corruption,
  // not a date.
  if (!logging::valid_civil_date(2000 + yy, mo, dd)) return std::nullopt;
  // Two-digit years are 2000-based (Spark logs post-date 2000 by far).
  return logging::epoch_ms_from_civil(2000 + yy, mo, dd,
                                      static_cast<int>(hh),
                                      static_cast<int>(mi),
                                      static_cast<int>(ss), 0);
}

}  // namespace

std::optional<ParsedLine> parse_line(std::string_view line) {
  using logging::kTimestampWidth;
  if (line.size() < 19) return std::nullopt;
  std::size_t ts_width = kTimestampWidth;
  auto ts = line.size() >= kTimestampWidth
                ? logging::parse_epoch_ms(line.substr(0, kTimestampWidth))
                : std::nullopt;
  if (!ts) {
    // Spark's default console pattern: second precision, 17-char stamp.
    ts = parse_spark_short_ts(line);
    if (!ts) return std::nullopt;
    ts_width = 17;
  }
  std::string_view rest = line.substr(ts_width);
  if (rest.empty() || rest.front() != ' ') return std::nullopt;
  rest.remove_prefix(1);
  // Level token (letters only), then whitespace.
  std::size_t level_end = 0;
  while (level_end < rest.size() && rest[level_end] >= 'A' &&
         rest[level_end] <= 'Z') {
    ++level_end;
  }
  if (level_end == 0) return std::nullopt;
  const std::string_view level = rest.substr(0, level_end);
  rest.remove_prefix(level_end);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  // Logger class up to ": ".  Hunt colons with the vectorized scanner
  // and confirm the trailing space — identical to rest.find(": "), but
  // the scan runs at SIMD width (logger names contain no ':', so the
  // first confirmed hit is almost always the first colon).
  std::size_t sep = std::string_view::npos;
  for (std::size_t colon = simd::find_byte(rest, ':');
       colon != std::string_view::npos;
       colon = simd::find_byte(rest, ':', colon + 1)) {
    if (colon + 1 < rest.size() && rest[colon + 1] == ' ') {
      sep = colon;
      break;
    }
  }
  if (sep == std::string_view::npos || sep == 0) return std::nullopt;
  ParsedLine out;
  out.epoch_ms = *ts;
  out.level = level;
  out.logger = rest.substr(0, sep);
  out.message = rest.substr(sep + 2);
  return out;
}

std::string_view short_class_name(std::string_view logger) {
  const std::size_t dot = logger.rfind('.');
  if (dot == std::string_view::npos) return logger;
  return logger.substr(dot + 1);
}

namespace {

/// True when `line` is a strict prefix of the log4j stamp layout
/// "YYYY-MM-DD HH:MM:SS,mmm" — the signature of a line cut inside its
/// timestamp.
bool looks_like_stamp_prefix(std::string_view line) {
  if (line.empty() || line.size() >= logging::kTimestampWidth) return false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char sep = i == 4 || i == 7     ? '-'
                     : i == 10            ? ' '
                     : i == 13 || i == 16 ? ':'
                     : i == 19            ? ','
                                          : '\0';
    if (sep != '\0') {
      if (c != sep) return false;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

}  // namespace

UnparsedClass classify_unparsed_line(std::string_view line) {
  std::size_t nonprint = 0;
  for (const char c : line) {
    if (c == '\0') return UnparsedClass::kBinaryGarbage;
    const auto u = static_cast<unsigned char>(c);
    if ((u < 0x20 && c != '\t') || u == 0x7f) ++nonprint;
  }
  if (line.size() >= 4 && nonprint * 10 > line.size() * 3) {
    return UnparsedClass::kBinaryGarbage;
  }
  if (line.size() >= logging::kTimestampWidth &&
      logging::parse_epoch_ms(line.substr(0, logging::kTimestampWidth))) {
    return UnparsedClass::kTruncated;
  }
  if (looks_like_stamp_prefix(line)) return UnparsedClass::kTruncated;
  return UnparsedClass::kPlain;
}

}  // namespace sdc::checker
