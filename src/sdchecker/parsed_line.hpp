// First parsing stage: one raw log4j line -> (timestamp, level, class,
// message).  Tolerant of garbage: anything that does not look like a
// complete log4j line (truncated writes, stack-trace continuations,
// interleaved output) is rejected rather than guessed at, and counted by
// the miner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdc::checker {

struct ParsedLine {
  std::int64_t epoch_ms = 0;
  /// Level token as seen ("INFO", "WARN", ...).
  std::string_view level;
  /// Fully qualified logger class.
  std::string_view logger;
  /// Message text after "class: ".
  std::string_view message;
};

/// Parses one line; the returned views point into `line`, which must
/// outlive the result.  Returns nullopt on malformed input.
std::optional<ParsedLine> parse_line(std::string_view line);

/// The short class name (text after the last '.') — what the paper's
/// Table I refers to ("RMAppImpl", "ContainerImpl", ...).
std::string_view short_class_name(std::string_view logger);

/// Why a line that `parse_line` rejected failed — feeds the typed
/// diagnostics channel.
enum class UnparsedClass {
  /// Does not resemble a log4j line (stack-trace continuation, foreign
  /// text, empty line).
  kPlain,
  /// Binary bytes: a NUL, or mostly non-printable characters.
  kBinaryGarbage,
  /// Cut mid-write: an intact (or clearly cut-short) timestamp with a
  /// malformed remainder.
  kTruncated,
};
UnparsedClass classify_unparsed_line(std::string_view line);

}  // namespace sdc::checker
