#include "sdchecker/corpus_mutator.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <utility>

#include "common/rng.hpp"
#include "logging/timestamp.hpp"
#include "sdchecker/export.hpp"

namespace sdc::checker {
namespace {

using logging::DiagnosticKind;
using logging::LogBundle;

struct ClassName {
  MutationClass cls;
  std::string_view name;
};

constexpr ClassName kClassNames[kMutationClassCount] = {
    {MutationClass::kIdentity, "identity"},
    {MutationClass::kTruncateHead, "truncate-head"},
    {MutationClass::kTruncateTail, "truncate-tail"},
    {MutationClass::kRotateSplit, "rotate-split"},
    {MutationClass::kDuplicateLines, "duplicate-lines"},
    {MutationClass::kGarbageBytes, "garbage-bytes"},
    {MutationClass::kClockSkew, "clock-skew"},
    {MutationClass::kInterleave, "interleave"},
};

void append_all(LogBundle& out, const std::string& stream,
                const std::vector<std::string>& lines) {
  for (const std::string& line : lines) out.append(stream, line);
}

/// Copies every stream except the (up to two) named ones.
LogBundle copy_except(const LogBundle& input, const std::string& skip,
                      const std::string& skip2 = {}) {
  LogBundle out;
  for (const std::string& name : input.stream_names()) {
    if (name == skip) continue;
    if (!skip2.empty() && name == skip2) continue;
    append_all(out, name, input.lines(name));
  }
  return out;
}

/// Seeded choice of the stream a destructive class damages, among
/// streams long enough to damage meaningfully.
std::optional<std::string> pick_target(const LogBundle& input, Rng& rng) {
  std::vector<std::string> candidates;
  for (const std::string& name : input.stream_names()) {
    if (input.lines(name).size() >= 8) candidates.push_back(name);
  }
  if (candidates.empty()) {
    for (const std::string& name : input.stream_names()) {
      if (!input.lines(name).empty()) candidates.push_back(name);
    }
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

std::optional<std::int64_t> line_ts(const std::string& line) {
  if (line.size() < logging::kTimestampWidth) return std::nullopt;
  return logging::parse_epoch_ms(
      std::string_view(line).substr(0, logging::kTimestampWidth));
}

struct TsSpan {
  std::string name;
  std::size_t first_idx = 0;  // first line with a parseable timestamp
  std::size_t last_idx = 0;   // last such line (> first_idx)
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
};

std::optional<TsSpan> stream_span(const LogBundle& input,
                                  const std::string& name) {
  const std::vector<std::string>& lines = input.lines(name);
  TsSpan span;
  span.name = name;
  bool found_first = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (const auto ts = line_ts(lines[i])) {
      if (!found_first) {
        found_first = true;
        span.first_idx = i;
        span.first_ts = *ts;
      }
      span.last_idx = i;
      span.last_ts = *ts;
    }
  }
  if (!found_first || span.last_idx == span.first_idx) return std::nullopt;
  return span;
}

/// The stream whose parseable timestamps cover the widest interval —
/// the pick for classes that need room to make time jump backwards.
std::optional<TsSpan> widest_span_stream(const LogBundle& input) {
  std::optional<TsSpan> best;
  for (const std::string& name : input.stream_names()) {
    const auto span = stream_span(input, name);
    if (!span) continue;
    if (!best ||
        span->last_ts - span->first_ts > best->last_ts - best->first_ts) {
      best = span;
    }
  }
  return best;
}

/// Rewrites the leading timestamp of `line` by `delta_ms`; returns the
/// line unchanged when it has no parseable timestamp.
std::string shift_line_ts(const std::string& line, std::int64_t delta_ms) {
  const auto ts = line_ts(line);
  if (!ts) return line;
  return logging::format_epoch_ms(*ts + delta_ms) +
         line.substr(logging::kTimestampWidth);
}

// --- mutation classes ------------------------------------------------------

LogBundle mutate_truncate_head(const LogBundle& input, Rng& rng) {
  const auto target = pick_target(input, rng);
  if (!target) return input;
  const std::vector<std::string>& lines = input.lines(*target);
  if (lines.size() < 2) return input;
  LogBundle out = copy_except(input, *target);
  std::size_t drop = std::max<std::size_t>(
      1, static_cast<std::size_t>(rng.uniform_int(
             1, static_cast<std::int64_t>(lines.size()) / 4 + 1)));
  drop = std::min(drop, lines.size() - 1);
  std::vector<std::string> kept(lines.begin() +
                                    static_cast<std::ptrdiff_t>(drop),
                                lines.end());
  // Tear the new first line mid-line: only its tail survives, timestamp
  // gone — what a reader sees after the head was rotated away mid-write.
  std::string& first = kept.front();
  if (first.size() > 4) first.erase(0, first.size() * 2 / 3);
  append_all(out, *target, kept);
  return out;
}

LogBundle mutate_truncate_tail(const LogBundle& input, Rng& rng) {
  const auto target = pick_target(input, rng);
  if (!target) return input;
  std::vector<std::string> lines = input.lines(*target);
  if (lines.size() < 2) return input;
  LogBundle out = copy_except(input, *target);
  std::size_t drop = std::max<std::size_t>(
      1, static_cast<std::size_t>(rng.uniform_int(
             1, static_cast<std::int64_t>(lines.size()) / 4 + 1)));
  drop = std::min(drop, lines.size() - 1);
  lines.resize(lines.size() - drop);
  // Cut the surviving last line mid-write: the timestamp reached disk,
  // the rest of the write did not.
  std::string& last = lines.back();
  if (last.size() > logging::kTimestampWidth + 2) {
    last.resize(logging::kTimestampWidth +
                static_cast<std::size_t>(rng.uniform_int(1, 4)));
  } else if (last.size() > 1) {
    last.resize(last.size() / 2);
  }
  append_all(out, *target, lines);
  return out;
}

LogBundle mutate_rotate_split(const LogBundle& input, Rng& rng) {
  const auto target = pick_target(input, rng);
  if (!target) return input;
  const std::vector<std::string>& lines = input.lines(*target);
  if (lines.size() < 2) return input;
  LogBundle out = copy_except(input, *target);
  const std::size_t segments = lines.size() >= 30 ? 3 : 2;
  // Seed-jittered cut points, kept strictly increasing.
  std::vector<std::size_t> bounds{0};
  for (std::size_t s = 1; s < segments; ++s) {
    const auto base =
        static_cast<std::int64_t>(lines.size() * s / segments);
    const auto spread = static_cast<std::int64_t>(lines.size() / 8);
    std::int64_t cut = base + rng.uniform_int(-spread, spread);
    cut = std::clamp(cut, static_cast<std::int64_t>(bounds.back()) + 1,
                     static_cast<std::int64_t>(lines.size()) -
                         static_cast<std::int64_t>(segments - s));
    bounds.push_back(static_cast<std::size_t>(cut));
  }
  bounds.push_back(lines.size());
  // logrotate order: the oldest lines live in the highest suffix, the
  // newest keep the base name.
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t suffix = segments - 1 - s;
    const std::string name =
        suffix == 0 ? *target : *target + "." + std::to_string(suffix);
    for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      out.append(name, lines[i]);
    }
  }
  return out;
}

LogBundle mutate_duplicate_lines(const LogBundle& input, Rng& rng) {
  const auto span = widest_span_stream(input);
  if (!span) return input;
  const std::vector<std::string>& lines = input.lines(span->name);
  LogBundle out = copy_except(input, span->name);
  // Re-flushed buffer: a block reaching to the end of the stream appears
  // twice.  The seam where the copy restarts jumps backwards by (nearly)
  // the stream's whole timestamp span.
  const std::size_t begin = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(span->first_idx)));
  std::vector<std::string> mutated = lines;
  mutated.insert(mutated.end(),
                 lines.begin() + static_cast<std::ptrdiff_t>(begin),
                 lines.end());
  append_all(out, span->name, mutated);
  return out;
}

LogBundle mutate_garbage_bytes(const LogBundle& input, Rng& rng) {
  const auto target = pick_target(input, rng);
  if (!target) return input;
  const std::vector<std::string>& lines = input.lines(*target);
  LogBundle out = copy_except(input, *target);
  const std::size_t at = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(lines.size())));
  constexpr std::size_t kBurst = 6;
  std::vector<std::string> mutated(
      lines.begin(), lines.begin() + static_cast<std::ptrdiff_t>(at));
  for (std::size_t b = 0; b < kBurst; ++b) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(8, 40));
    std::string junk(len, '\0');
    for (char& c : junk) {
      const auto byte = static_cast<int>(rng.uniform_int(0, 255));
      // Keep the corpus line-structured: '\n' would split the line.
      c = byte == '\n' ? '\0' : static_cast<char>(byte);
    }
    // At least one NUL so the line classifies as binary garbage even if
    // the draw happened to be printable.
    junk[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(len) - 1))] = '\0';
    mutated.push_back(std::move(junk));
  }
  mutated.insert(mutated.end(),
                 lines.begin() + static_cast<std::ptrdiff_t>(at),
                 lines.end());
  append_all(out, *target, mutated);
  return out;
}

LogBundle mutate_clock_skew(const LogBundle& input, Rng& rng) {
  const auto span = widest_span_stream(input);
  if (!span) return input;
  const std::vector<std::string>& lines = input.lines(span->name);
  LogBundle out = copy_except(input, span->name);
  // NTP step: the daemon's clock is corrected backwards mid-run, so
  // every later line is stamped several seconds earlier.
  const std::size_t split =
      span->first_idx + std::max<std::size_t>(
                            1, (span->last_idx - span->first_idx) / 2);
  const std::int64_t delta = -(5000 + rng.uniform_int(0, 5000));
  std::vector<std::string> mutated;
  mutated.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    mutated.push_back(i >= split ? shift_line_ts(lines[i], delta)
                                 : lines[i]);
  }
  append_all(out, span->name, mutated);
  return out;
}

LogBundle mutate_interleave(const LogBundle& input, Rng& rng) {
  // Two daemons writing one file.  The host stream keeps its name; the
  // guest's lines are woven in block-wise with its (badly skewed) clock
  // stamping everything before the host's run even started — every
  // host->guest seam jumps backwards in time.
  const auto host = widest_span_stream(input);
  if (!host) return input;
  std::optional<TsSpan> guest;
  for (const std::string& name : input.stream_names()) {
    if (name == host->name) continue;
    const auto span = stream_span(input, name);
    if (!span) continue;
    if (!guest ||
        span->last_ts - span->first_ts > guest->last_ts - guest->first_ts) {
      guest = span;
    }
  }
  if (!guest) return input;
  const std::vector<std::string>& a = input.lines(host->name);
  const std::vector<std::string>& b = input.lines(guest->name);
  LogBundle out = copy_except(input, host->name, guest->name);
  const std::int64_t guest_delta =
      (host->first_ts - guest->last_ts) - 5000 - rng.uniform_int(0, 5000);
  const std::size_t block =
      static_cast<std::size_t>(rng.uniform_int(4, 12));
  std::vector<std::string> mutated;
  mutated.reserve(a.size() + b.size());
  std::size_t ai = 0;
  std::size_t bi = 0;
  // Lead with a host block that includes a parsed timestamp, so the
  // first guest block lands after it and trips the regression check.
  std::size_t take_a = std::max(block, host->first_idx + 1);
  while (ai < a.size() || bi < b.size()) {
    for (std::size_t n = 0; n < take_a && ai < a.size(); ++n) {
      mutated.push_back(a[ai++]);
    }
    take_a = block;
    for (std::size_t n = 0; n < block && bi < b.size(); ++n) {
      mutated.push_back(shift_line_ts(b[bi++], guest_delta));
    }
  }
  append_all(out, host->name, mutated);
  return out;
}

}  // namespace

std::string_view mutation_class_name(MutationClass cls) {
  for (const ClassName& entry : kClassNames) {
    if (entry.cls == cls) return entry.name;
  }
  return "?";
}

std::optional<MutationClass> mutation_class_from_name(std::string_view name) {
  for (const ClassName& entry : kClassNames) {
    if (entry.name == name) return entry.cls;
  }
  return std::nullopt;
}

std::vector<MutationClass> all_mutation_classes() {
  std::vector<MutationClass> out;
  out.reserve(kMutationClassCount);
  for (const ClassName& entry : kClassNames) out.push_back(entry.cls);
  return out;
}

std::optional<DiagnosticKind> expected_diagnostic(MutationClass cls) {
  switch (cls) {
    case MutationClass::kIdentity:
      return std::nullopt;
    case MutationClass::kTruncateHead:
    case MutationClass::kTruncateTail:
      return DiagnosticKind::kTruncatedLine;
    case MutationClass::kRotateSplit:
      return DiagnosticKind::kRotationGap;
    case MutationClass::kDuplicateLines:
    case MutationClass::kClockSkew:
    case MutationClass::kInterleave:
      return DiagnosticKind::kTimestampRegression;
    case MutationClass::kGarbageBytes:
      return DiagnosticKind::kBinaryGarbage;
  }
  return std::nullopt;
}

std::vector<MutationClass> mutation_classes_for(logging::DiagnosticKind kind) {
  std::vector<MutationClass> out;
  for (MutationClass cls : all_mutation_classes()) {
    if (expected_diagnostic(cls) == kind) out.push_back(cls);
  }
  return out;
}

std::optional<std::string_view> runtime_only_reason(
    logging::DiagnosticKind kind) {
  // Kinds here arise from I/O or cross-stream state the byte-level
  // mutator cannot model; each names the mechanism that surfaces it.
  // If a new mutation class starts covering one of these kinds, sdlint's
  // diag.stale-exemption check fires until the row is deleted.
  switch (kind) {
    case logging::DiagnosticKind::kUnreadableFile:
      return "filesystem permission/open failure; mutations rewrite bytes "
             "of readable bundles";
    case logging::DiagnosticKind::kUnparsableBurst:
      return "emitted when the per-stream unparsable-line ratio trips the "
             "analyzer threshold, a derived signal exercised directly by "
             "miner tests";
    case logging::DiagnosticKind::kUnboundStream:
      return "requires a stream whose app binding never resolves; mutator "
             "inputs are generated from bound scenario logs";
    default:
      return std::nullopt;
  }
}

logging::LogBundle apply_mutation(const logging::LogBundle& input,
                                  MutationClass cls, std::uint64_t seed) {
  // Fork per class so every class sees an independent stream for the
  // same seed.
  Rng root(seed);
  Rng rng = root.fork(static_cast<std::uint64_t>(cls) + 1);
  switch (cls) {
    case MutationClass::kIdentity:
      return input;
    case MutationClass::kTruncateHead:
      return mutate_truncate_head(input, rng);
    case MutationClass::kTruncateTail:
      return mutate_truncate_tail(input, rng);
    case MutationClass::kRotateSplit:
      return mutate_rotate_split(input, rng);
    case MutationClass::kDuplicateLines:
      return mutate_duplicate_lines(input, rng);
    case MutationClass::kGarbageBytes:
      return mutate_garbage_bytes(input, rng);
    case MutationClass::kClockSkew:
      return mutate_clock_skew(input, rng);
    case MutationClass::kInterleave:
      return mutate_interleave(input, rng);
  }
  return input;
}

std::vector<FuzzCaseResult> fuzz_corpus(const logging::LogBundle& base,
                                        std::uint64_t seed,
                                        const std::vector<MutationClass>&
                                            classes,
                                        const AnalyzeOptions& options) {
  std::vector<FuzzCaseResult> out;
  out.reserve(classes.size());
  const SdChecker checker(options);
  std::optional<std::string> baseline_events;
  std::optional<std::string> baseline_delays;
  try {
    const AnalysisResult baseline = checker.analyze(base);
    baseline_events = events_csv(baseline);
    baseline_delays = delays_csv(baseline);
  } catch (...) {
    // Identity can never pass without a baseline; each case still runs.
  }
  for (const MutationClass cls : classes) {
    FuzzCaseResult result;
    result.cls = cls;
    try {
      const LogBundle mutated = apply_mutation(base, cls, seed);
      const AnalysisResult analysis = checker.analyze(mutated);
      result.events_total = analysis.events_total;
      result.anomalies = analysis.anomalies.size();
      result.diag_counts = analysis.diag_counts;
      if (const auto kind = expected_diagnostic(cls)) {
        result.expected_kind_count = analysis.diag_counts.of(*kind);
        result.ok = result.expected_kind_count > 0;
      } else {
        result.expected_kind_count = analysis.diag_counts.total();
        result.ok = result.expected_kind_count == 0 &&
                    baseline_events.has_value() &&
                    events_csv(analysis) == *baseline_events &&
                    delays_csv(analysis) == *baseline_delays;
      }
    } catch (const std::exception& e) {
      result.crashed = true;
      result.error = e.what();
    } catch (...) {
      result.crashed = true;
      result.error = "non-standard exception";
    }
    out.push_back(std::move(result));
  }
  return out;
}

std::string render_fuzz_report(const std::vector<FuzzCaseResult>& results) {
  std::string out;
  for (const FuzzCaseResult& result : results) {
    out += result.ok ? "ok   " : "FAIL ";
    std::string name(mutation_class_name(result.cls));
    name.resize(16, ' ');
    out += name;
    if (result.crashed) {
      out += " crashed: " + result.error;
    } else {
      const auto kind = expected_diagnostic(result.cls);
      out += " diag[";
      out += kind ? logging::diagnostic_kind_name(*kind) : "total";
      out += "]=" + std::to_string(result.expected_kind_count);
      out += " diagnostics=" + std::to_string(result.diag_counts.total());
      out += " events=" + std::to_string(result.events_total);
      out += " anomalies=" + std::to_string(result.anomalies);
    }
    out += '\n';
  }
  return out;
}

}  // namespace sdc::checker
