// Deterministic, seeded corpus mutator — the fuzz harness that proves
// the mining pipeline degrades gracefully.
//
// Each mutation class models one way real clusters damage their logs:
// head/tail truncation (rotation tears, full disks), rotated segments,
// duplicated flushes, binary garbage, a daemon clock stepping mid-run,
// and two daemons interleaving one file.  Mutations are pure functions
// of (input bundle, class, seed), so every failure is replayable.  The
// self-check (`fuzz_corpus`) asserts the analyzer never throws, that the
// identity mutation reproduces the baseline analysis event for event,
// and that each destructive class surfaces its expected diagnostic kind.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logging/diagnostics.hpp"
#include "logging/log_bundle.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

enum class MutationClass {
  /// No change — the control: analysis must be event-for-event identical.
  kIdentity = 0,
  /// Drop the head of one stream and tear the new first line mid-line.
  kTruncateHead,
  /// Drop the tail of one stream and cut the new last line mid-write
  /// (timestamp survives, remainder lost).
  kTruncateTail,
  /// Split one stream into rotated segments (`name.N` oldest ... `name`).
  kRotateSplit,
  /// Duplicate a contiguous block of one stream in place (re-flushed
  /// buffer): the seam jumps backwards in time.
  kDuplicateLines,
  /// Inject a burst of binary-garbage lines into one stream.
  kGarbageBytes,
  /// Step one daemon's clock mid-stream (NTP correction): later lines
  /// shift backwards by several seconds.
  kClockSkew,
  /// Interleave a second stream's lines into the first, block-wise (two
  /// daemons writing one file).
  kInterleave,
};

inline constexpr std::size_t kMutationClassCount = 8;

std::string_view mutation_class_name(MutationClass cls);
std::optional<MutationClass> mutation_class_from_name(std::string_view name);
/// All classes, identity first.
std::vector<MutationClass> all_mutation_classes();

/// The diagnostic kind a destructive class is expected to surface
/// (nullopt for kIdentity, which must surface nothing new).
std::optional<logging::DiagnosticKind> expected_diagnostic(MutationClass cls);

/// Inverse of `expected_diagnostic`: the mutation classes expected to
/// surface `kind` (empty when no class models it).  sdlint's `diag.*`
/// checks require every diagnostic kind to be either reachable this way
/// or explicitly declared runtime-only below — a kind in neither set is
/// a vocabulary hole the fuzz harness can never exercise.
std::vector<MutationClass> mutation_classes_for(logging::DiagnosticKind kind);

/// Why a diagnostic kind is runtime-only (no byte-level mutation of a
/// log bundle can surface it), or nullopt when the mutator covers it.
/// Every runtime-only kind must still be exercised by a dedicated test;
/// the reason names the mechanism.
std::optional<std::string_view> runtime_only_reason(
    logging::DiagnosticKind kind);

/// Applies one mutation class.  Deterministic in (input, cls, seed).
[[nodiscard]] logging::LogBundle apply_mutation(
    const logging::LogBundle& input, MutationClass cls, std::uint64_t seed);

/// Outcome of analyzing one mutated corpus.
struct FuzzCaseResult {
  MutationClass cls = MutationClass::kIdentity;
  /// An exception escaped the analyzer (always a failure).
  bool crashed = false;
  std::string error;
  /// Occurrences of the class's expected diagnostic kind (total
  /// diagnostics for kIdentity, where it must stay 0).
  std::size_t expected_kind_count = 0;
  std::size_t events_total = 0;
  std::size_t anomalies = 0;
  logging::DiagnosticCounts diag_counts;
  /// Verdict: no crash, and the class-correct signal is present (for
  /// kIdentity: the analysis matches the baseline event for event).
  bool ok = false;
};

/// Mutates + analyzes `base` once per class; `options` configures the
/// analyzer under test.  Never throws — analyzer exceptions are captured
/// in the per-case result.
std::vector<FuzzCaseResult> fuzz_corpus(
    const logging::LogBundle& base, std::uint64_t seed,
    const std::vector<MutationClass>& classes,
    const AnalyzeOptions& options = {});

/// One fixed-width report line per case ("ok identity ...").
std::string render_fuzz_report(const std::vector<FuzzCaseResult>& results);

}  // namespace sdc::checker
