#include "sdchecker/serve.hpp"

#include <utility>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_export.hpp"
#include "sdchecker/trace_export.hpp"

namespace sdc::checker {
namespace {

/// Severity rollup of a diagnostics count table: totals per
/// `diagnostic_severity` tier (0 = lost input, 1 = damaged, 2 = suspect).
struct SeverityRollup {
  std::size_t lost = 0;
  std::size_t damaged = 0;
  std::size_t suspect = 0;
};

SeverityRollup roll_up(const logging::DiagnosticCounts& counts) {
  SeverityRollup rollup;
  for (std::size_t i = 0; i < logging::kDiagnosticKindCount; ++i) {
    const auto kind = static_cast<logging::DiagnosticKind>(i);
    switch (logging::diagnostic_severity(kind)) {
      case 0:
        rollup.lost += counts.by_kind[i];
        break;
      case 1:
        rollup.damaged += counts.by_kind[i];
        break;
      default:
        rollup.suspect += counts.by_kind[i];
        break;
    }
  }
  return rollup;
}

}  // namespace

FollowPublisher::FollowPublisher() {
  MutexLock lock(mu_);
  last_poll_ = std::chrono::steady_clock::now();
  // A follow session with nothing ingested yet serves the empty-corpus
  // analysis shape, not a 404: scrapers that start before the first poll
  // still get a parseable document.
  current_.analysis_json = "{}";
}

void FollowPublisher::publish(FollowPublication publication) {
  MutexLock lock(mu_);
  current_ = std::move(publication);
  last_poll_ = std::chrono::steady_clock::now();
}

void FollowPublisher::touch(std::uint64_t polls, bool quiescent) {
  MutexLock lock(mu_);
  current_.polls = polls;
  current_.quiescent = quiescent;
  last_poll_ = std::chrono::steady_clock::now();
}

FollowPublication FollowPublisher::current() const {
  MutexLock lock(mu_);
  return current_;
}

std::int64_t FollowPublisher::last_poll_age_ms() const {
  MutexLock lock(mu_);
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - last_poll_)
      .count();
}

std::string render_healthz_json(const FollowPublication& pub,
                                std::int64_t age_ms,
                                std::int64_t stall_threshold_ms,
                                bool* stalled) {
  const bool is_stalled = age_ms > stall_threshold_ms;
  if (stalled != nullptr) *stalled = is_stalled;
  const SeverityRollup rollup = roll_up(pub.diag_counts);
  std::string out = "{\"status\":\"";
  out += is_stalled ? "stalled" : "ok";
  out += "\",\"last_poll_age_ms\":" + std::to_string(age_ms);
  out += ",\"stall_threshold_ms\":" + std::to_string(stall_threshold_ms);
  out += ",\"polls\":" + std::to_string(pub.polls);
  out += ",\"quiescent\":";
  out += pub.quiescent ? "true" : "false";
  out += ",\"diagnostics\":{\"lost\":" + std::to_string(rollup.lost);
  out += ",\"damaged\":" + std::to_string(rollup.damaged);
  out += ",\"suspect\":" + std::to_string(rollup.suspect);
  out += ",\"total\":" + std::to_string(pub.diag_counts.total());
  out += "}}";
  return out;
}

std::unique_ptr<obs::HttpServer> make_follow_server(
    const FollowPublisher& publisher, const FollowServeOptions& options) {
  // A scrape must carry the whole vocabulary, not just instruments the
  // process happened to touch: the plain catalog rows...
  obs::register_catalog_baseline();
  // ...and the delay family, whose member set is the delay-component
  // catalog rather than whatever components have produced samples.
  for (const DelayComponentSpec& spec : delay_component_specs()) {
    obs::MetricsRegistry::global().histogram(std::string(spec.histogram));
  }

  obs::HttpServerOptions http;
  http.host = options.host;
  http.port = options.port;
  auto server = std::make_unique<obs::HttpServer>(http);

  server->handle("/metrics", [] {
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        obs::render_prom_text(obs::MetricsRegistry::global().snapshot());
    return response;
  });

  server->handle("/analysis", [&publisher] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = publisher.current().analysis_json;
    return response;
  });

  const std::int64_t stall_threshold_ms = options.stall_threshold_ms;
  server->handle("/healthz", [&publisher, stall_threshold_ms] {
    const std::int64_t age_ms = publisher.last_poll_age_ms();
    obs::catalog_gauge(obs::metric::kFollowPollLastAgeMs).set(age_ms);
    bool stalled = false;
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = render_healthz_json(publisher.current(), age_ms,
                                        stall_threshold_ms, &stalled);
    if (stalled) {
      obs::catalog_counter(obs::metric::kFollowPollStall).add(1);
      response.status = 503;
    }
    return response;
  });

  server->handle("/varz", [] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = obs::MetricsRegistry::global().snapshot().to_json();
    return response;
  });

  return server;
}

}  // namespace sdc::checker
