#include "sdchecker/decompose.hpp"

namespace sdc::checker {
namespace {

std::optional<std::int64_t> diff(std::optional<std::int64_t> from,
                                 std::optional<std::int64_t> to) {
  if (!from || !to) return std::nullopt;
  return *to - *from;
}

std::vector<std::int64_t> collect(
    const std::vector<ContainerDelays>& containers,
    std::optional<std::int64_t> ContainerDelays::* field) {
  std::vector<std::int64_t> out;
  for (const ContainerDelays& c : containers) {
    if (!c.is_am && c.*field) out.push_back(*(c.*field));
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> Delays::worker_acquisitions() const {
  return collect(containers, &ContainerDelays::acquisition);
}
std::vector<std::int64_t> Delays::worker_localizations() const {
  return collect(containers, &ContainerDelays::localization);
}
std::vector<std::int64_t> Delays::worker_queuings() const {
  return collect(containers, &ContainerDelays::queuing);
}
std::vector<std::int64_t> Delays::worker_launchings() const {
  return collect(containers, &ContainerDelays::launching);
}
std::vector<std::int64_t> Delays::worker_idles() const {
  return collect(containers, &ContainerDelays::executor_idle);
}

Delays decompose(const AppTimeline& timeline) {
  Delays out;
  out.app = timeline.app;

  const auto submitted = timeline.ts(EventKind::kAppSubmitted);
  const auto registered = timeline.ts(EventKind::kAttemptRegistered);
  const auto driver_first = timeline.ts(EventKind::kDriverFirstLog);
  const auto driver_register = timeline.ts(EventKind::kDriverRegister);
  const auto start_allo = timeline.ts(EventKind::kStartAllo);
  const auto end_allo = timeline.ts(EventKind::kEndAllo);

  const auto first_exec_log =
      timeline.min_worker_ts(EventKind::kExecutorFirstLog);
  const auto first_task = timeline.min_worker_ts(EventKind::kExecutorFirstTask);
  const auto first_running = timeline.min_worker_ts(EventKind::kNmRunning);
  const auto last_running = timeline.max_worker_ts(EventKind::kNmRunning);

  out.total = diff(submitted, first_task);
  out.am = diff(submitted, registered);
  out.cf = diff(submitted, first_running);
  out.cl = diff(submitted, last_running);
  out.cl_minus_cf = diff(first_running, last_running);
  out.driver = diff(driver_first, driver_register);
  out.executor = diff(first_exec_log, first_task);
  if (out.driver && out.executor) out.in_app = *out.driver + *out.executor;
  if (out.total && out.in_app) out.out_app = *out.total - *out.in_app;
  out.alloc = diff(start_allo, end_allo);

  for (const auto& [id, container] : timeline.containers) {
    ContainerDelays delays;
    delays.id = id;
    delays.is_am = id.is_am();
    delays.acquisition = diff(container.ts(EventKind::kContainerAllocated),
                              container.ts(EventKind::kContainerAcquired));
    delays.localization = diff(container.ts(EventKind::kNmLocalizing),
                               container.ts(EventKind::kNmScheduled));
    delays.queuing = diff(container.ts(EventKind::kNmScheduled),
                          container.ts(EventKind::kNmRunning));
    // Launching ends at the launched instance's first log line: the
    // driver's for the AM container, the executor's otherwise.  A failed
    // launch never produced a first log (the app-level driver log may
    // belong to a *later attempt's* AM, so it must not be borrowed).
    const bool launch_failed = container.has(EventKind::kNmFailed);
    const auto instance_first_log =
        launch_failed ? std::nullopt
        : delays.is_am ? driver_first
                       : container.ts(EventKind::kExecutorFirstLog);
    delays.launching =
        diff(container.ts(EventKind::kNmRunning), instance_first_log);
    if (!delays.is_am) {
      delays.executor_idle = diff(container.ts(EventKind::kExecutorFirstLog),
                                  container.ts(EventKind::kExecutorFirstTask));
    }
    out.containers.push_back(std::move(delays));
  }
  return out;
}

}  // namespace sdc::checker
