// SDchecker façade — the paper's tool as a library.
//
// Pipeline (paper §III): parse log4j lines -> extract Table-I messages ->
// group by global IDs -> build per-app scheduling graphs -> decompose
// scheduling delay into components -> detect anomalies -> aggregate.
//
//   sdc::checker::SdChecker checker({.threads = 4});
//   auto result = checker.analyze_directory("/var/log/hadoop");
//   std::cout << result.aggregate.render_text();
#pragma once

#include <filesystem>
#include <map>
#include <vector>

#include "logging/log_bundle.hpp"
#include "sdchecker/anomaly.hpp"
#include "sdchecker/decompose.hpp"
#include "sdchecker/graph.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/report.hpp"

namespace sdc::checker {

struct AnalyzeOptions {
  /// Worker threads for the mining stage (1 = serial).
  std::size_t threads = 1;
  /// Minimum lines per intra-stream mining chunk (see MinerOptions);
  /// 0 disables intra-stream sharding.
  std::size_t shard_grain = 8192;
  /// Within-stream backwards timestamp jumps beyond this budget become
  /// kTimestampRegression diagnostics (see MinerOptions).
  std::int64_t skew_budget_ms = 1000;
  /// Shards (and worker threads) for the post-mining analysis stage:
  /// grouping is partitioned by application, decomposition and anomaly
  /// detection run per app on a pool.  1 = the serial stage; 0 = one
  /// shard per hardware thread.  Output is byte-identical either way —
  /// the merge restores the serial app-ID order.
  std::size_t analyze_shards = 1;

  /// `analyze_shards` with 0 resolved to the hardware concurrency.
  [[nodiscard]] std::size_t effective_analyze_shards() const;

  [[nodiscard]] MinerOptions miner_options() const {
    MinerOptions options;
    options.threads = threads;
    options.shard_grain = shard_grain;
    options.skew_budget_ms = skew_budget_ms;
    return options;
  }
};

struct AnalysisResult {
  /// Per-application grouped event timelines.
  std::map<ApplicationId, AppTimeline> timelines;
  /// Per-application delay decompositions.
  std::map<ApplicationId, Delays> delays;
  /// All findings across applications.
  std::vector<Anomaly> anomalies;
  /// Distribution summaries across applications.
  AggregateReport aggregate;
  /// Mining summary counters.
  std::size_t lines_total = 0;
  std::size_t lines_unparsed = 0;
  std::size_t events_total = 0;
  std::size_t events_unattributed = 0;
  /// Typed corpus-health findings accumulated through the whole mining
  /// stack (unreadable files, garbage, truncation, rotation, clock
  /// steps, unparsable bursts) — the analysis *completed*, these say what
  /// it had to tolerate.
  std::vector<logging::Diagnostic> diagnostics;
  /// Per-kind totals over `diagnostics`.
  logging::DiagnosticCounts diag_counts;

  /// Builds the Fig.-3-style scheduling graph for one application.
  [[nodiscard]] SchedulingGraph graph_for(const ApplicationId& app) const;

  /// Anomalies of one type.
  [[nodiscard]] std::vector<const Anomaly*> anomalies_of(
      AnomalyType type) const;

  /// Per-Table-I-message completeness: for each of the 14 identified
  /// messages, how many applications have no occurrence of it.  Non-zero
  /// counts on a real corpus usually mean a daemon's logs were not
  /// collected (the per-message footprint tells which one).
  struct Completeness {
    EventKind kind = EventKind::kAppSubmitted;
    std::size_t apps_missing = 0;
  };
  [[nodiscard]] std::vector<Completeness> completeness() const;

  /// Renders the non-zero completeness rows, followed by the per-stream
  /// diagnostics summary ("" when fully complete and clean).
  [[nodiscard]] std::string render_completeness() const;

  /// Renders one line per diagnostic record ("" when the corpus was
  /// clean).
  [[nodiscard]] std::string render_diagnostics() const;
};

class SdChecker {
 public:
  explicit SdChecker(AnalyzeOptions options = {}) : options_(options) {}

  [[nodiscard]] AnalysisResult analyze(const logging::LogBundle& bundle) const;
  /// Zero-copy path over mmap-backed (or adapted) line views.
  [[nodiscard]] AnalysisResult analyze(const logging::BundleView& view) const;
  [[nodiscard]] AnalysisResult analyze_directory(
      const std::filesystem::path& dir) const;

 private:
  AnalysisResult analyze_mined(MineResult mined) const;

  AnalyzeOptions options_;
};

/// An application whose full timeline was evicted under the streaming
/// bounded-memory policy: only the decomposed delay row and the anomaly
/// findings computed at retirement survive.  Cheap (no per-event state),
/// so a long-running follow service can hold millions of them.
struct RetiredApp {
  Delays delays;
  std::vector<Anomaly> anomalies;
};

/// Retired rows in application-ID order; the finalize merge interleaves
/// them with the live timelines so aggregates, anomalies and the delays
/// map come out exactly as if every timeline were still resident.
using RetiredTable = std::map<ApplicationId, RetiredApp>;

/// Runs the decomposition + anomaly + aggregation stages over already-
/// grouped timelines (shared by SdChecker and the incremental analyzer).
/// `retired` rows (apps disjoint from `timelines`) are folded into the
/// delays/aggregate/anomaly outputs at their app-ID position; only
/// `AnalysisResult::timelines` (and the reports derived from it) is
/// limited to the still-resident applications.
[[nodiscard]] AnalysisResult finalize_analysis(
    std::map<ApplicationId, AppTimeline> timelines,
    const RetiredTable& retired = {});

/// Sharded/parallel variant: folds the per-shard tables into the
/// deterministic app-ID order, decomposes and anomaly-checks each app on
/// `pool`, then merges aggregates/delays/anomalies in that order — the
/// result (including `analysis_json`) is byte-identical to the serial
/// overload on the same grouped state.  Consumes the shard tables.
[[nodiscard]] AnalysisResult finalize_analysis(ShardedGroupResult grouped,
                                               ThreadPool& pool,
                                               const RetiredTable& retired =
                                                   {});

}  // namespace sdc::checker
