// The scheduling graph (paper Fig. 3): per-application DAG of observed
// scheduling states, with intra-entity edges following each state
// machine and cross-entity edges expressing the causal protocol (app
// accepted -> AM container allocated; container running -> process first
// log; driver registered -> executor asks; ...).  Every edge should be
// non-decreasing in timestamp on a well-behaved cluster — `validate`
// returns the violations (clock skew, log loss).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdchecker/grouping.hpp"

namespace sdc::checker {

struct GraphNode {
  /// Entity label: "app", "driver", or a container id string.
  std::string entity;
  EventKind kind = EventKind::kAppSubmitted;
  std::int64_t ts_ms = 0;
};

struct GraphEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  /// True when the edge crosses entities (protocol edge, dashed in DOT).
  bool cross_entity = false;
};

class SchedulingGraph {
 public:
  /// Builds the graph from one application's timeline; absent events
  /// simply have no node.
  static SchedulingGraph build(const AppTimeline& timeline);

  [[nodiscard]] const std::vector<GraphNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const noexcept {
    return edges_;
  }

  /// Returns human-readable descriptions of edges whose target precedes
  /// its source in time (empty = graph is temporally consistent).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Graphviz DOT rendering (rectangles: YARN states, ellipses: Spark
  /// states — mirroring Fig. 3's shapes).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::size_t add_node(std::string entity, EventKind kind, std::int64_t ts);
  void add_edge(std::size_t from, std::size_t to, bool cross);
  /// Adds a chain of nodes for the kinds present in `timeline`, linking
  /// consecutive present states; returns node index per kind (npos if
  /// absent).
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace sdc::checker
