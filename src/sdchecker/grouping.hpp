// Fourth stage: aggregate events by global ID into per-application
// timelines (paper §III-C: "SDchecker binds each log event with its
// corresponding global ID ... aggregates and groups state transformations
// based on the IDs").  For each entity and event kind the *first*
// occurrence wins (an executor logs "Got assigned task" for every task;
// only the first marks the end of the scheduling delay).
//
// Data layout: per-kind state lives in dense arrays indexed by the
// enumerator value with a presence bitset (`KindFirstTs`/`KindCounts`),
// containers in a sorted flat map, and the application table of the
// sharded path in an open-addressing hash map — the hot
// event-application work is bit tests and contiguous probes, never tree
// walks.  Because `record` keeps the minimum timestamp and increments a
// count, applying events is *commutative*: any partition of the event
// stream that routes each application's events to exactly one shard
// (`timeline_shard`) reproduces the serial timelines bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "common/flat_map.hpp"
#include "sdchecker/events.hpp"

namespace sdc {
class ThreadPool;
}  // namespace sdc

namespace sdc::checker {

static_assert(kEventKindSlots <= 32,
              "per-kind presence bitsets are 32 bits wide");

/// First timestamp per event kind: dense slots plus a presence bitset.
/// Keeps the `std::map<EventKind, int64>` interface the timeline
/// consumers use (`operator[]`, ordered iteration yielding (kind, ts)
/// pairs, `erase`), but `has`/`ts` are a bit test and an array read.
class KindFirstTs {
 public:
  /// Keeps the earliest timestamp for `kind` (first occurrence wins;
  /// min, not first-applied, so event application commutes).
  void record(EventKind kind, std::int64_t ts) {
    const std::uint32_t bit = 1u << static_cast<std::uint32_t>(kind);
    const auto slot = static_cast<std::size_t>(kind);
    if ((present_ & bit) == 0 || ts < ts_[slot]) ts_[slot] = ts;
    present_ |= bit;
  }

  /// Map-style get-or-default-insert (also used to overwrite in tests).
  std::int64_t& operator[](EventKind kind) {
    const std::uint32_t bit = 1u << static_cast<std::uint32_t>(kind);
    const auto slot = static_cast<std::size_t>(kind);
    if ((present_ & bit) == 0) ts_[slot] = 0;
    present_ |= bit;
    return ts_[slot];
  }

  [[nodiscard]] bool contains(EventKind kind) const {
    return (present_ & (1u << static_cast<std::uint32_t>(kind))) != 0;
  }

  [[nodiscard]] std::optional<std::int64_t> get(EventKind kind) const {
    if (!contains(kind)) return std::nullopt;
    return ts_[static_cast<std::size_t>(kind)];
  }

  void erase(EventKind kind) {
    present_ &= ~(1u << static_cast<std::uint32_t>(kind));
  }

  [[nodiscard]] bool empty() const { return present_ == 0; }

  /// One presence bit per EventKind (bit index = enumerator value) —
  /// completeness checks OR these instead of walking containers.
  [[nodiscard]] std::uint32_t present_mask() const { return present_; }

  /// Forward iteration over present kinds in enumerator order —
  /// identical visit order to the `std::map` it replaces.
  class const_iterator {
   public:
    const_iterator(const KindFirstTs* table, std::size_t slot)
        : table_(table), slot_(slot) {
      skip_absent();
    }
    std::pair<EventKind, std::int64_t> operator*() const {
      return {static_cast<EventKind>(slot_), table_->ts_[slot_]};
    }
    const_iterator& operator++() {
      ++slot_;
      skip_absent();
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.slot_ == b.slot_;
    }

   private:
    void skip_absent() {
      while (slot_ < kEventKindSlots &&
             (table_->present_ & (1u << slot_)) == 0) {
        ++slot_;
      }
    }

    const KindFirstTs* table_;
    std::size_t slot_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, kEventKindSlots);
  }

 private:
  std::uint32_t present_ = 0;
  std::int64_t ts_[kEventKindSlots] = {};
};

/// Occurrence counts per kind; zero means "never seen" (a recorded kind
/// is always >= 1, so no separate presence state is needed).
class KindCounts {
 public:
  std::int32_t& operator[](EventKind kind) {
    return counts_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] std::int32_t at(EventKind kind) const {
    const std::int32_t count = counts_[static_cast<std::size_t>(kind)];
    if (count == 0) throw std::out_of_range("KindCounts::at: kind never seen");
    return count;
  }

 private:
  std::int32_t counts_[kEventKindSlots] = {};
};

/// Event history of a single container.
struct ContainerTimeline {
  ContainerId id;

  /// First timestamp per event kind (ms).
  KindFirstTs first_ts;
  /// Occurrence counts per kind.
  KindCounts counts;

  [[nodiscard]] std::optional<std::int64_t> ts(EventKind kind) const;
  [[nodiscard]] bool has(EventKind kind) const;
};

/// Event history of one application and all its containers.
struct AppTimeline {
  ApplicationId app;

  KindFirstTs first_ts;
  KindCounts counts;
  /// Sorted by container id — iteration order matches the `std::map` the
  /// exports and the decomposition were written against.
  FlatOrderedMap<ContainerId, ContainerTimeline> containers;

  [[nodiscard]] std::optional<std::int64_t> ts(EventKind kind) const;
  [[nodiscard]] bool has(EventKind kind) const;

  /// Union of every container's presence bits (see
  /// `KindFirstTs::present_mask`) — one pass over containers, reused by
  /// the completeness report.
  [[nodiscard]] std::uint32_t container_present_mask() const;

  /// The AppMaster container (sequence number 1), if seen.
  [[nodiscard]] const ContainerTimeline* am_container() const;

  /// All non-AM containers, ordered by container id.
  [[nodiscard]] std::vector<const ContainerTimeline*> worker_containers() const;

  /// Earliest timestamp of `kind` across worker containers.
  [[nodiscard]] std::optional<std::int64_t> min_worker_ts(EventKind kind) const;
  /// Latest timestamp of `kind` across worker containers.
  [[nodiscard]] std::optional<std::int64_t> max_worker_ts(EventKind kind) const;
};

/// Application hash for shard routing and the flat grouping tables.
/// Self-contained (not `std::hash`) so routing is identical across
/// platforms and runs — shard equivalence tests pin it down.
struct ApplicationIdHash {
  std::size_t operator()(const ApplicationId& app) const noexcept {
    return static_cast<std::size_t>(
        mix_u64(static_cast<std::uint64_t>(app.cluster_ts) * 31 +
                static_cast<std::uint64_t>(app.id)));
  }
};

/// Unordered application table used while grouping; the finalize stage
/// merges tables into the deterministic app-ID order.
using AppTable = FlatHashMap<ApplicationId, AppTimeline, ApplicationIdHash>;

struct GroupResult {
  std::map<ApplicationId, AppTimeline> apps;
  /// Events that could not be attributed to any application.
  std::size_t unattributed = 0;
};

[[nodiscard]] GroupResult group_events(const std::vector<SchedEvent>& events);
/// Columnar variant: reads the batch's kind/ts/id arrays directly — no
/// View materialization, no optional construction on the hot loop.
[[nodiscard]] GroupResult group_events(const EventBatch& events);

/// Applies a single event to the timelines (the incremental counterpart
/// of group_events).  Returns false when the event carries no application
/// id and cannot be attributed.
bool apply_event(std::map<ApplicationId, AppTimeline>& apps,
                 const SchedEvent& event);
bool apply_event(AppTable& apps, const SchedEvent& event);

/// Which analysis shard owns `app` when grouping into `shards` tables.
/// Container events follow their owning application, so one shard sees
/// every event of a given application.
[[nodiscard]] std::size_t timeline_shard(const ApplicationId& app,
                                         std::size_t shards);

/// App-partitioned grouping result: one unordered table per shard, apps
/// disjoint across shards (routed by `timeline_shard`).
struct ShardedGroupResult {
  std::vector<AppTable> shards;
  /// Events that could not be attributed to any application.
  std::size_t unattributed = 0;
};

/// Groups `events` into `shards` per-shard tables on `pool`, one task
/// per shard (each task scans the event vector and applies only its own
/// applications' events — no cross-shard synchronization).  Equivalent
/// to `group_events` state-wise; `finalize_analysis` restores the
/// deterministic ordering.
[[nodiscard]] ShardedGroupResult group_events_sharded(
    const std::vector<SchedEvent>& events, std::size_t shards,
    ThreadPool& pool);
/// Columnar variant; each shard's scan walks the contiguous app-id and
/// flag columns instead of striding over whole event structs.
[[nodiscard]] ShardedGroupResult group_events_sharded(const EventBatch& events,
                                                      std::size_t shards,
                                                      ThreadPool& pool);

/// One shard's pass over one batch: applies every event whose
/// application routes to `shard` (of `shard_count`) into `apps`.
/// Returns how many events carried no application id — counted by shard
/// 0 only, the same single-count convention as `group_events_sharded`,
/// so summing the return values over all shards and batches matches the
/// serial pass.  Fleet mode (fleet.cpp) feeds per-stream batches through
/// this as streams finish stitching, instead of merging the corpus's
/// events first: `KindFirstTs::record` keeps the minimum timestamp, so
/// applying batches in any order reproduces the merged result.
std::size_t apply_batch_to_shard(const EventBatch& events, AppTable& apps,
                                 std::size_t shard, std::size_t shard_count);

}  // namespace sdc::checker
