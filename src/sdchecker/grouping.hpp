// Fourth stage: aggregate events by global ID into per-application
// timelines (paper §III-C: "SDchecker binds each log event with its
// corresponding global ID ... aggregates and groups state transformations
// based on the IDs").  For each entity and event kind the *first*
// occurrence wins (an executor logs "Got assigned task" for every task;
// only the first marks the end of the scheduling delay).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sdchecker/events.hpp"

namespace sdc::checker {

/// Event history of a single container.
struct ContainerTimeline {
  ContainerId id;

  /// First timestamp per event kind (ms).
  std::map<EventKind, std::int64_t> first_ts;
  /// Occurrence counts per kind.
  std::map<EventKind, std::int32_t> counts;

  [[nodiscard]] std::optional<std::int64_t> ts(EventKind kind) const;
  [[nodiscard]] bool has(EventKind kind) const;
};

/// Event history of one application and all its containers.
struct AppTimeline {
  ApplicationId app;

  std::map<EventKind, std::int64_t> first_ts;
  std::map<EventKind, std::int32_t> counts;
  std::map<ContainerId, ContainerTimeline> containers;

  [[nodiscard]] std::optional<std::int64_t> ts(EventKind kind) const;
  [[nodiscard]] bool has(EventKind kind) const;

  /// The AppMaster container (sequence number 1), if seen.
  [[nodiscard]] const ContainerTimeline* am_container() const;

  /// All non-AM containers, ordered by container id.
  [[nodiscard]] std::vector<const ContainerTimeline*> worker_containers() const;

  /// Earliest timestamp of `kind` across worker containers.
  [[nodiscard]] std::optional<std::int64_t> min_worker_ts(EventKind kind) const;
  /// Latest timestamp of `kind` across worker containers.
  [[nodiscard]] std::optional<std::int64_t> max_worker_ts(EventKind kind) const;
};

struct GroupResult {
  std::map<ApplicationId, AppTimeline> apps;
  /// Events that could not be attributed to any application.
  std::size_t unattributed = 0;
};

[[nodiscard]] GroupResult group_events(const std::vector<SchedEvent>& events);

/// Applies a single event to the timelines (the incremental counterpart
/// of group_events).  Returns false when the event carries no application
/// id and cannot be attributed.
bool apply_event(std::map<ApplicationId, AppTimeline>& apps,
                 const SchedEvent& event);

}  // namespace sdc::checker
