#include "sdchecker/report.hpp"

#include <cstdio>
#include <map>

#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"
#include "sdchecker/trace_export.hpp"

namespace sdc::checker {
namespace {

constexpr double kMsToSec = 1e-3;

/// Registry histograms (in ms) mirroring each aggregated sample set,
/// registered once from the shared component catalog so the metric names
/// cannot drift from the trace slice names.
obs::Histogram& delay_histogram(std::string_view metric) {
  static const std::map<std::string, obs::Histogram*, std::less<>> by_metric =
      [] {
        // Register through the sdc.delay.<component> catalog family so
        // the histogram names stay kind-checked against the metric
        // catalog as well as the component catalog (sdlint pins the two
        // together with metrics.delay-unbound).
        const std::string_view prefix =
            obs::metric::kSdcDelay.family_prefix();
        std::map<std::string, obs::Histogram*, std::less<>> map;
        for (const DelayComponentSpec& spec : delay_component_specs()) {
          const std::string_view histogram = spec.histogram;
          map.emplace(std::string(spec.metric),
                      histogram.starts_with(prefix)
                          ? &obs::catalog_histogram(
                                obs::metric::kSdcDelay,
                                histogram.substr(prefix.size()))
                          : &obs::MetricsRegistry::global().histogram(
                                histogram));
        }
        return map;
      }();
  return *by_metric.find(metric)->second;
}

void add_opt(SampleSet& set, std::string_view metric,
             const std::optional<std::int64_t>& value) {
  if (!value) return;
  set.add(static_cast<double>(*value) * kMsToSec);
  delay_histogram(metric).observe(static_cast<double>(*value));
}

void add_each(SampleSet& set, std::string_view metric,
              const std::vector<std::int64_t>& values) {
  obs::Histogram& histogram = delay_histogram(metric);
  for (std::int64_t v : values) {
    set.add(static_cast<double>(v) * kMsToSec);
    histogram.observe(static_cast<double>(v));
  }
}

}  // namespace

void AggregateReport::add(const Delays& delays) {
  ++apps_;
  add_opt(total, "total", delays.total);
  add_opt(am, "am", delays.am);
  add_opt(cf, "cf", delays.cf);
  add_opt(cl, "cl", delays.cl);
  add_opt(cl_minus_cf, "cl-cf", delays.cl_minus_cf);
  add_opt(driver, "driver", delays.driver);
  add_opt(executor, "executor", delays.executor);
  add_opt(in_app, "in-app", delays.in_app);
  add_opt(out_app, "out-app", delays.out_app);
  add_opt(alloc, "alloc", delays.alloc);
  add_each(acquisition, "acquisition", delays.worker_acquisitions());
  add_each(localization, "localization", delays.worker_localizations());
  add_each(queuing, "queuing", delays.worker_queuings());
  add_each(launching, "launching", delays.worker_launchings());
  add_each(exec_idle, "exec-idle", delays.worker_idles());
}

std::vector<std::pair<std::string, const SampleSet*>> AggregateReport::metrics()
    const {
  return {
      {"total", &total},
      {"am", &am},
      {"cf", &cf},
      {"cl", &cl},
      {"cl-cf", &cl_minus_cf},
      {"driver", &driver},
      {"executor", &executor},
      {"in-app", &in_app},
      {"out-app", &out_app},
      {"alloc", &alloc},
      {"acquisition", &acquisition},
      {"localization", &localization},
      {"queuing", &queuing},
      {"launching", &launching},
      {"exec-idle", &exec_idle},
  };
}

std::string AggregateReport::render_text() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %8s %10s %10s %10s %10s\n", "metric",
                "n", "median", "p95", "mean", "stddev");
  out += buf;
  out += std::string(66, '-') + "\n";
  for (const auto& [name, set] : metrics()) {
    if (set->empty()) {
      std::snprintf(buf, sizeof(buf), "%-14s %8zu %10s %10s %10s %10s\n",
                    name.c_str(), set->size(), "-", "-", "-", "-");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-14s %8zu %9.3fs %9.3fs %9.3fs %9.3fs\n", name.c_str(),
                    set->size(), set->median(), set->p95(), set->mean(),
                    set->stddev());
    }
    out += buf;
  }
  return out;
}

std::string AggregateReport::render_csv() const {
  std::string out = "metric,n,median_s,p95_s,mean_s,stddev_s\n";
  char buf[160];
  for (const auto& [name, set] : metrics()) {
    if (set->empty()) {
      std::snprintf(buf, sizeof(buf), "%s,0,,,,\n", name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%s,%zu,%.4f,%.4f,%.4f,%.4f\n",
                    name.c_str(), set->size(), set->median(), set->p95(),
                    set->mean(), set->stddev());
    }
    out += buf;
  }
  return out;
}

}  // namespace sdc::checker
