#include "sdchecker/report.hpp"

#include <cstdio>

namespace sdc::checker {
namespace {

constexpr double kMsToSec = 1e-3;

void add_opt(SampleSet& set, const std::optional<std::int64_t>& value) {
  if (value) set.add(static_cast<double>(*value) * kMsToSec);
}

void add_each(SampleSet& set, const std::vector<std::int64_t>& values) {
  for (std::int64_t v : values) set.add(static_cast<double>(v) * kMsToSec);
}

}  // namespace

void AggregateReport::add(const Delays& delays) {
  ++apps_;
  add_opt(total, delays.total);
  add_opt(am, delays.am);
  add_opt(cf, delays.cf);
  add_opt(cl, delays.cl);
  add_opt(cl_minus_cf, delays.cl_minus_cf);
  add_opt(driver, delays.driver);
  add_opt(executor, delays.executor);
  add_opt(in_app, delays.in_app);
  add_opt(out_app, delays.out_app);
  add_opt(alloc, delays.alloc);
  add_each(acquisition, delays.worker_acquisitions());
  add_each(localization, delays.worker_localizations());
  add_each(queuing, delays.worker_queuings());
  add_each(launching, delays.worker_launchings());
  add_each(exec_idle, delays.worker_idles());
}

std::vector<std::pair<std::string, const SampleSet*>> AggregateReport::metrics()
    const {
  return {
      {"total", &total},
      {"am", &am},
      {"cf", &cf},
      {"cl", &cl},
      {"cl-cf", &cl_minus_cf},
      {"driver", &driver},
      {"executor", &executor},
      {"in-app", &in_app},
      {"out-app", &out_app},
      {"alloc", &alloc},
      {"acquisition", &acquisition},
      {"localization", &localization},
      {"queuing", &queuing},
      {"launching", &launching},
      {"exec-idle", &exec_idle},
  };
}

std::string AggregateReport::render_text() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %8s %10s %10s %10s %10s\n", "metric",
                "n", "median", "p95", "mean", "stddev");
  out += buf;
  out += std::string(66, '-') + "\n";
  for (const auto& [name, set] : metrics()) {
    if (set->empty()) {
      std::snprintf(buf, sizeof(buf), "%-14s %8zu %10s %10s %10s %10s\n",
                    name.c_str(), set->size(), "-", "-", "-", "-");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-14s %8zu %9.3fs %9.3fs %9.3fs %9.3fs\n", name.c_str(),
                    set->size(), set->median(), set->p95(), set->mean(),
                    set->stddev());
    }
    out += buf;
  }
  return out;
}

std::string AggregateReport::render_csv() const {
  std::string out = "metric,n,median_s,p95_s,mean_s,stddev_s\n";
  char buf[160];
  for (const auto& [name, set] : metrics()) {
    if (set->empty()) {
      std::snprintf(buf, sizeof(buf), "%s,0,,,,\n", name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%s,%zu,%.4f,%.4f,%.4f,%.4f\n",
                    name.c_str(), set->size(), set->median(), set->p95(),
                    set->mean(), set->stddev());
    }
    out += buf;
  }
  return out;
}

}  // namespace sdc::checker
