// Scheduling-graph trace export: renders an AnalysisResult as a
// Perfetto-loadable trace (Fig. 3 as slices).
//
// Track model — one process per application:
//
//   pid N   process_name = "application_<ts>_<seq>"
//     tid 0         "milestones": one instant per Table-I event seen
//     tid 1..15     one track per delay component, named after it,
//                   carrying a single slice of that component's span
//     tid 100+k     one track per container ("container_..."), with the
//                   per-container component chain (acquisition ->
//                   localization -> queuing -> launching -> exec-idle)
//
// Timestamps are corpus epoch-ms rebased to the earliest event across
// all applications (raw epoch-ms in microseconds would exceed the 2^53
// double-precision window of JSON numbers).  Components whose anchor
// events are missing, or whose duration is negative (cross-daemon clock
// skew — flagged by the anomaly detector, not silently clamped here),
// emit no slice.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "obs/trace_writer.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

/// One delay component in the observability vocabulary.  This catalog is
/// the single source of truth tying the decomposition (decompose.hpp) to
/// the metrics registry and the trace export; sdlint's obs check walks it
/// against AggregateReport::metrics() so the three can't drift apart.
struct DelayComponentSpec {
  /// AggregateReport::metrics() name ("total", "cl-cf", ...).
  std::string_view metric;
  /// Registered histogram name ("sdc.delay.total", ...).
  std::string_view histogram;
  /// Slice name on the trace tracks (same vocabulary as `metric`).
  std::string_view slice;
  /// True for the per-container components.
  bool per_container = false;
};

/// All 15 components, in AggregateReport::metrics() order.
[[nodiscard]] std::span<const DelayComponentSpec> delay_component_specs();

/// The slice names every application track must carry for the trace to
/// be considered complete (the `sdchecker trace --check` contract):
/// total, am, cf, cl, alloc, driver, executor.
[[nodiscard]] std::span<const std::string_view> required_app_slices();

/// Appends one process per application onto `writer`, pids assigned
/// sequentially from `first_pid`.  Returns the number of processes
/// (applications) appended.
std::size_t append_scheduling_trace(obs::TraceEventWriter& writer,
                                    const AnalysisResult& result,
                                    std::int64_t first_pid = 1);

/// Full trace document for one analysis (scheduling graph only).
[[nodiscard]] std::string scheduling_trace_json(const AnalysisResult& result);

}  // namespace sdc::checker
