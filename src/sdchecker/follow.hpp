// Follow-mode streaming service: live tail ingestion of a log directory.
//
// The batch pipeline collects a finished corpus and mines it once; this
// service watches a directory the cluster is still writing — the
// `tail -F` analogue of `SdChecker::analyze_directory`.  Each poll it
// rescans the directory, reads bytes appended since the previous poll,
// follows rename-based rotation (`app.log` -> `app.log.1` plus a fresh
// `app.log`, tracked by inode so no byte is read twice or skipped), and
// feeds complete lines into an `IncrementalAnalyzer`.  Memory stays
// bounded: applications whose terminal transition has been mined are
// retired after a quiet grace (timeline freed, decomposed row kept) and
// streams that never bind an application id park at most
// `MinerOptions::parked_events_cap` events.
//
// Parity contract: once the writers stop and the service has drained
// (`quiescent()`, then `finish()`), `snapshot()` returns an
// `AnalysisResult` whose `analysis_json` is byte-identical to running
// the batch `SdChecker::analyze_directory` over the same directory —
// including the rotation-reassembly and unreadable-file diagnostics the
// batch reader would emit.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sdchecker/incremental.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {

struct FollowOptions {
  /// Per-line analysis knobs (skew budget, burst threshold, parked-event
  /// cap); threads/shard_grain are ignored — tailing is serial.
  MinerOptions miner = {};
  /// Shards for the snapshot finalize stage (same meaning as
  /// `AnalyzeOptions::analyze_shards`; snapshots are byte-identical
  /// either way).
  std::size_t analyze_shards = 1;
  /// Retire terminal applications (free their timelines) once they have
  /// been quiet for this many polls.  The grace absorbs out-of-order
  /// stragglers across streams; events arriving after retirement are
  /// dropped and counted.
  std::uint64_t retire_quiet_polls = 2;
  /// Master switch for retirement (off = keep every timeline resident,
  /// as the batch pipeline does).
  bool retire = true;
};

/// One poll's delta, for pacing and watch output.
struct PollStats {
  std::size_t bytes_read = 0;
  std::size_t lines_fed = 0;
  std::size_t new_streams = 0;
  std::size_t rotations = 0;
  std::size_t apps_retired = 0;
};

class FollowService {
 public:
  explicit FollowService(std::filesystem::path dir, FollowOptions options = {});

  /// One ingestion cycle: rescan the directory, read appended bytes,
  /// feed complete lines, retire quiet terminal applications.
  PollStats poll_once();

  /// True when the previous poll observed no appended bytes, no new
  /// streams and no rotation handoffs — the corpus is (momentarily)
  /// drained.
  [[nodiscard]] bool quiescent() const noexcept { return quiescent_; }

  /// Flushes buffered final partial lines (a live file's last line
  /// before its newline arrives).  Call once after the final poll;
  /// matches the batch reader's treatment of a file that ends without a
  /// trailing newline.  Idempotent only if no further polls run.
  void finish();

  /// Full analysis of everything ingested so far (see the parity
  /// contract above).  O(apps); safe to call between polls.
  [[nodiscard]] AnalysisResult snapshot() const;

  /// One newline-free ndjson watch record: poll/quiescence counters, the
  /// full `analysis_json` document and a metrics-registry snapshot.
  [[nodiscard]] std::string watch_record() const;

  [[nodiscard]] const IncrementalAnalyzer& analyzer() const noexcept {
    return analyzer_;
  }
  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }
  [[nodiscard]] std::size_t streams_seen() const noexcept {
    return streams_seen_;
  }
  [[nodiscard]] std::uint64_t rotations() const noexcept { return rotations_; }

 private:
  /// One physical file being tailed, keyed by (dev, inode) so the tail
  /// survives the rotation rename.  `logical` is the rotation base name
  /// — the stream the analyzer sees.
  struct Tail {
    std::string physical;
    std::string logical;
    std::uintmax_t offset = 0;
    std::string partial;
    /// False once the file carries a rotation suffix: the segment is
    /// frozen, its final partial line (if any) has been flushed.
    bool is_base = true;
  };

  /// Reads bytes appended to one tail; feeds complete lines.  Returns
  /// false when the file vanished between scan and read (mid-rotation
  /// race) — the caller re-reads it under its new name next poll.
  bool drain_tail(Tail& tail, PollStats& stats);
  void flush_partial(Tail& tail);

  std::filesystem::path dir_;
  FollowOptions options_;
  IncrementalAnalyzer analyzer_;
  /// (dev << 32 ^ ino) -> tail.  Good enough as a key: collisions would
  /// need two filesystems in one log directory.
  std::map<std::uint64_t, Tail> tails_;
  /// Unreadable-file diagnostics, deduped per stream: first error text
  /// wins, `count` accumulates repeats.
  std::map<std::string, logging::Diagnostic> unreadable_;
  std::uint64_t polls_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::size_t streams_seen_ = 0;
  std::uint64_t rotations_ = 0;
  bool quiescent_ = false;
  bool finished_ = false;
};

/// Schema check for one line of the `--watch` ndjson stream.  Verifies
/// the line parses as a JSON object carrying numeric "poll", boolean
/// "quiescent", an "analysis" object with a "summary" object, and a
/// "metrics" object with a "counters" object.  Never throws.
struct WatchCheckResult {
  bool ok = true;
  std::vector<std::string> errors;
  void fail(std::string message);
};
[[nodiscard]] WatchCheckResult check_watch_json(std::string_view line);

}  // namespace sdc::checker
