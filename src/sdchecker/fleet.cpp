#include "sdchecker/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "logging/diagnostics.hpp"
#include "obs/json_parse.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/tracer.hpp"
#include "sdchecker/export.hpp"
#include "sdchecker/grouping.hpp"
#include "sdchecker/miner.hpp"
#include "sdchecker/sdchecker.hpp"

namespace sdc::checker {
namespace {

struct FleetCounters {
  obs::Counter& corpora;
  obs::Counter& failed;
  obs::Counter& streams;
  obs::Counter& events;
  static const FleetCounters& get() {
    static const FleetCounters counters{
        obs::catalog_counter(obs::metric::kFleetCorpora),
        obs::catalog_counter(obs::metric::kFleetCorporaFailed),
        obs::catalog_counter(obs::metric::kMineStreams),
        obs::catalog_counter(obs::metric::kMineEvents)};
    return counters;
  }
};

/// All in-flight state of one corpus.  Lifecycle: an "open" task builds
/// the view and the MinePlan and enqueues one task per chunk; each chunk
/// task that empties its stream's countdown stitches that stream and
/// folds its events into the sharded grouping tables; the task that
/// empties the stream countdown finalizes the corpus — all on the one
/// shared pool, no barriers between the phases.
struct CorpusState {
  std::filesystem::path dir;
  MinerOptions mine_options;
  std::size_t shard_count = 1;

  std::vector<logging::Diagnostic> io_diagnostics;
  std::optional<logging::BundleView> view;
  std::optional<MinePlan> plan;

  /// Countdowns to "stream fully mined" / "corpus fully stitched".  The
  /// acq_rel fetch_sub chains publish every chunk's output to whichever
  /// thread observes the last decrement and proceeds.
  std::unique_ptr<std::atomic<std::size_t>[]> chunks_left;
  std::atomic<std::size_t> streams_left{0};

  struct StreamMeta {
    std::size_t lines_total = 0;
    std::size_t lines_unparsed = 0;
    std::size_t events = 0;
    std::vector<logging::Diagnostic> diagnostics;
    logging::DiagnosticCounts diag_counts;
  };
  /// Slot s is written only by the thread that stitched stream s.
  std::vector<StreamMeta> streams;

  /// One grouping table per shard.  A shard's lock is held for one
  /// batch application at a time, so two streams finishing close
  /// together contend per shard, not per corpus.
  struct Shard {
    Mutex mu;
    AppTable apps SDC_GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<std::size_t> unattributed{0};

  Mutex error_mu;
  std::string error SDC_GUARDED_BY(error_mu);
  std::atomic<bool> failed{false};

  CorpusResult out;

  void fail(const std::string& what) {
    {
      MutexLock lock(error_mu);
      if (error.empty()) error = what;
    }
    failed.store(true, std::memory_order_release);
  }
  [[nodiscard]] std::string take_error() {
    MutexLock lock(error_mu);
    return error;
  }
};

/// Runs on the thread that saw the corpus's last stream complete.
/// Assembles the AnalysisResult exactly as `SdChecker::analyze_directory`
/// does — grouping tables through `finalize_analysis` (whose nested
/// `parallel_for` help-while-waits on the shared pool), I/O diagnostics
/// first, stream diagnostics in stream (= logical name) order, then the
/// severity sort — so `analysis_json` is byte-identical to standalone
/// `analyze --json`.
void finalize_corpus(CorpusState& state, ThreadPool& pool) {
  const FleetCounters& counters = FleetCounters::get();
  if (state.failed.load(std::memory_order_acquire)) {
    state.out.error = state.take_error();
    counters.failed.add(1);
    state.plan.reset();
    state.view.reset();
    return;
  }
  try {
    ShardedGroupResult grouped;
    grouped.shards.reserve(state.shards.size());
    for (const std::unique_ptr<CorpusState::Shard>& shard : state.shards) {
      MutexLock lock(shard->mu);
      grouped.shards.push_back(std::move(shard->apps));
    }
    grouped.unattributed =
        state.unattributed.load(std::memory_order_relaxed);
    const std::size_t unattributed = grouped.unattributed;
    AnalysisResult result = finalize_analysis(std::move(grouped), pool);
    result.events_unattributed = unattributed;

    for (const logging::Diagnostic& diagnostic : state.io_diagnostics) {
      result.diag_counts.add(diagnostic);
    }
    result.diagnostics = std::move(state.io_diagnostics);
    std::size_t events_total = 0;
    for (CorpusState::StreamMeta& meta : state.streams) {
      result.lines_total += meta.lines_total;
      result.lines_unparsed += meta.lines_unparsed;
      events_total += meta.events;
      for (logging::Diagnostic& diagnostic : meta.diagnostics) {
        // The mine.diagnostics counters cover stream findings only (I/O
        // findings are bundle-level), matching the batch miner.
        obs::catalog_counter(obs::metric::kMineDiagnostics,
                             logging::diagnostic_kind_name(diagnostic.kind))
            .add(diagnostic.count);
        result.diagnostics.push_back(std::move(diagnostic));
      }
      result.diag_counts += meta.diag_counts;
    }
    result.events_total = events_total;
    logging::sort_diagnostics(result.diagnostics);

    counters.streams.add(state.streams.size());
    counters.events.add(events_total);

    state.out.apps = result.timelines.size();
    state.out.events = events_total;
    state.out.lines = result.lines_total;
    state.out.diagnostics = result.diagnostics.size();
    state.out.analysis_json = analysis_json(result);
    state.out.components = component_histograms(result);
    counters.corpora.add(1);
  } catch (const std::exception& e) {
    state.fail(e.what());
    state.out.error = state.take_error();
    counters.failed.add(1);
  }
  // Drop the mmapped views and chunk slots as soon as the corpus is
  // rendered — with many corpora in flight this bounds peak memory to
  // the active set, not the fleet.
  state.plan.reset();
  state.view.reset();
}

void run_corpus_chunk(CorpusState& state, ThreadPool& pool,
                      std::size_t chunk) {
  if (!state.failed.load(std::memory_order_relaxed)) {
    try {
      state.plan->run_chunk(chunk);
    } catch (const std::exception& e) {
      state.fail(e.what());
    }
  }
  const std::size_t stream = state.plan->stream_of(chunk);
  if (state.chunks_left[stream].fetch_sub(1, std::memory_order_acq_rel) !=
      1) {
    return;
  }
  // This chunk completed its stream: stitch it and hand its events to
  // grouping now, while other chunks (of this corpus and others) are
  // still mining — the pipelined mine→analyze overlap.
  if (!state.failed.load(std::memory_order_acquire)) {
    try {
      const auto span = obs::Tracer::global().span("mine.stitch");
      MinedStream stitched = state.plan->stitch(stream);
      for (std::size_t s = 0; s < state.shard_count; ++s) {
        std::size_t unattributed = 0;
        {
          MutexLock lock(state.shards[s]->mu);
          unattributed = apply_batch_to_shard(
              stitched.events, state.shards[s]->apps, s, state.shard_count);
        }
        if (s == 0) {
          state.unattributed.fetch_add(unattributed,
                                       std::memory_order_relaxed);
        }
      }
      CorpusState::StreamMeta& meta = state.streams[stream];
      meta.lines_total = stitched.lines_total;
      meta.lines_unparsed = stitched.lines_unparsed;
      meta.events = stitched.events.size();
      meta.diagnostics = std::move(stitched.diagnostics);
      meta.diag_counts = stitched.diag_counts;
    } catch (const std::exception& e) {
      state.fail(e.what());
    }
  }
  if (state.streams_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finalize_corpus(state, pool);
  }
}

void open_corpus(CorpusState& state, ThreadPool& pool) {
  try {
    state.view.emplace(logging::BundleView::read_from_directory(
        state.dir, &state.io_diagnostics));
    state.plan.emplace(*state.view, state.mine_options);
  } catch (const std::exception& e) {
    state.fail(e.what());
    finalize_corpus(state, pool);
    return;
  }
  const std::size_t streams = state.plan->stream_count();
  state.streams.resize(streams);
  state.shards.reserve(state.shard_count);
  for (std::size_t s = 0; s < state.shard_count; ++s) {
    state.shards.push_back(std::make_unique<CorpusState::Shard>());
  }
  if (streams == 0) {
    finalize_corpus(state, pool);
    return;
  }
  state.chunks_left = std::make_unique<std::atomic<std::size_t>[]>(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    state.chunks_left[s].store(state.plan->chunks_of(s),
                               std::memory_order_relaxed);
  }
  state.streams_left.store(streams, std::memory_order_release);
  const std::size_t chunks = state.plan->chunk_count();
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&state, &pool, c] { run_corpus_chunk(state, pool, c); });
  }
}

void write_components_json(json::Writer& w,
                           const std::vector<ComponentHistogram>& components) {
  w.begin_array();
  for (const ComponentHistogram& component : components) {
    w.begin_object();
    w.field("metric", component.metric);
    w.field("count", static_cast<std::int64_t>(component.count));
    w.field("sum_ms", component.sum_ms);
    w.key("buckets").begin_array();
    for (const std::uint64_t bucket : component.buckets) {
      w.value(static_cast<std::int64_t>(bucket));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::vector<std::filesystem::path> discover_corpora(
    const std::filesystem::path& root) {
  if (!std::filesystem::is_directory(root)) {
    throw std::runtime_error("fleet: not a directory: " + root.string());
  }
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.is_directory()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

FleetResult analyze_fleet(const std::vector<std::filesystem::path>& corpora,
                          const FleetOptions& options) {
  const auto total_span = obs::Tracer::global().span("fleet.total");
  std::size_t threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  std::size_t shard_count = options.shards_per_corpus;
  if (shard_count == 0) shard_count = std::min<std::size_t>(threads, 8);

  std::vector<std::unique_ptr<CorpusState>> states;
  states.reserve(corpora.size());
  for (const std::filesystem::path& dir : corpora) {
    auto state = std::make_unique<CorpusState>();
    state->dir = dir;
    state->mine_options = MinerOptions{.threads = threads,
                                       .shard_grain = options.shard_grain,
                                       .skew_budget_ms =
                                           options.skew_budget_ms};
    state->shard_count = shard_count;
    state->out.name = dir.filename().string();
    state->out.dir = dir;
    states.push_back(std::move(state));
  }

  {
    ThreadPool pool(threads);
    for (const std::unique_ptr<CorpusState>& state : states) {
      CorpusState* raw = state.get();
      pool.submit([raw, &pool] { open_corpus(*raw, pool); });
    }
    pool.wait_idle();
  }

  FleetResult result;
  result.threads = threads;
  result.shards_per_corpus = shard_count;
  result.corpora.reserve(states.size());
  for (std::unique_ptr<CorpusState>& state : states) {
    result.corpora.push_back(std::move(state->out));
  }
  // Fleet-wide distributions: per-component sums over every successful
  // corpus (components share one spec order, but match by name so a
  // partially-failed fleet still sums correctly).
  for (const CorpusResult& corpus : result.corpora) {
    if (!corpus.error.empty()) continue;
    if (result.components.empty()) {
      result.components = corpus.components;
      continue;
    }
    for (ComponentHistogram& total : result.components) {
      const auto match = std::find_if(
          corpus.components.begin(), corpus.components.end(),
          [&](const ComponentHistogram& h) { return h.metric == total.metric; });
      if (match == corpus.components.end()) continue;
      total.count += match->count;
      total.sum_ms += match->sum_ms;
      const std::size_t n = std::min(total.buckets.size(),
                                     match->buckets.size());
      for (std::size_t i = 0; i < n; ++i) {
        total.buckets[i] += match->buckets[i];
      }
    }
  }
  return result;
}

FleetResult analyze_fleet(const std::filesystem::path& root,
                          const FleetOptions& options) {
  return analyze_fleet(discover_corpora(root), options);
}

std::size_t FleetResult::failed() const {
  std::size_t count = 0;
  for (const CorpusResult& corpus : corpora) {
    if (!corpus.error.empty()) ++count;
  }
  return count;
}

std::string FleetResult::summary_json() const {
  std::size_t apps = 0;
  std::size_t events = 0;
  std::size_t lines = 0;
  std::size_t diagnostics = 0;
  for (const CorpusResult& corpus : corpora) {
    apps += corpus.apps;
    events += corpus.events;
    lines += corpus.lines;
    diagnostics += corpus.diagnostics;
  }

  json::Writer w;
  w.begin_object();
  w.key("fleet").begin_object();
  w.field("corpora", static_cast<std::int64_t>(corpora.size()));
  w.field("failed", static_cast<std::int64_t>(failed()));
  w.field("threads", static_cast<std::int64_t>(threads));
  w.field("shards_per_corpus", static_cast<std::int64_t>(shards_per_corpus));
  w.field("apps", static_cast<std::int64_t>(apps));
  w.field("events", static_cast<std::int64_t>(events));
  w.field("lines", static_cast<std::int64_t>(lines));
  w.field("diagnostics", static_cast<std::int64_t>(diagnostics));
  w.end_object();
  w.key("bucket_edges_ms").begin_array();
  for (const double edge : component_bucket_edges_ms()) w.value(edge);
  w.end_array();
  w.key("components");
  write_components_json(w, components);
  w.key("corpora").begin_array();
  for (const CorpusResult& corpus : corpora) {
    w.begin_object();
    w.field("name", corpus.name);
    w.field("dir", corpus.dir.string());
    if (!corpus.error.empty()) w.field("error", corpus.error);
    w.field("apps", static_cast<std::int64_t>(corpus.apps));
    w.field("events", static_cast<std::int64_t>(corpus.events));
    w.field("lines", static_cast<std::int64_t>(corpus.lines));
    w.field("diagnostics", static_cast<std::int64_t>(corpus.diagnostics));
    w.key("components");
    write_components_json(w, corpus.components);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<std::vector<ComponentHistogram>> load_fleet_baseline(
    const std::filesystem::path& file, std::string* error) {
  const auto set_error = [error](std::string what) {
    if (error != nullptr) *error = std::move(what);
  };
  std::ifstream in(file);
  if (!in) {
    set_error("cannot read " + file.string());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  obs::JsonValue doc;
  std::string parse_error;
  if (!obs::parse_json(buffer.str(), doc, parse_error)) {
    set_error(file.string() + ": " + parse_error);
    return std::nullopt;
  }
  const obs::JsonObject* root = doc.object();
  const obs::JsonValue* components =
      root != nullptr ? obs::json_find(*root, "components") : nullptr;
  const obs::JsonArray* array =
      components != nullptr ? components->array() : nullptr;
  if (array == nullptr) {
    set_error(file.string() + ": no \"components\" array");
    return std::nullopt;
  }

  std::vector<ComponentHistogram> out;
  for (const obs::JsonValue& entry : *array) {
    const obs::JsonObject* object = entry.object();
    if (object == nullptr) {
      set_error(file.string() + ": component entry is not an object");
      return std::nullopt;
    }
    ComponentHistogram hist;
    const obs::JsonValue* metric = obs::json_find(*object, "metric");
    const obs::JsonValue* count = obs::json_find(*object, "count");
    const obs::JsonValue* sum_ms = obs::json_find(*object, "sum_ms");
    const obs::JsonValue* buckets = obs::json_find(*object, "buckets");
    if (metric == nullptr || metric->string() == nullptr ||
        count == nullptr || count->number() == nullptr ||
        sum_ms == nullptr || sum_ms->number() == nullptr ||
        buckets == nullptr || buckets->array() == nullptr) {
      set_error(file.string() + ": malformed component entry");
      return std::nullopt;
    }
    hist.metric = *metric->string();
    hist.count = static_cast<std::uint64_t>(*count->number());
    hist.sum_ms = *sum_ms->number();
    for (const obs::JsonValue& bucket : *buckets->array()) {
      if (bucket.number() == nullptr) {
        set_error(file.string() + ": non-numeric bucket count");
        return std::nullopt;
      }
      hist.buckets.push_back(static_cast<std::uint64_t>(*bucket.number()));
    }
    out.push_back(std::move(hist));
  }
  return out;
}

}  // namespace sdc::checker
