#include "sdchecker/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/metrics.hpp"

namespace sdc::checker {

ComparisonResult compare(const AnalysisResult& a, const AnalysisResult& b) {
  ComparisonResult result;
  result.apps_a = a.timelines.size();
  result.apps_b = b.timelines.size();
  const auto metrics_a = a.aggregate.metrics();
  const auto metrics_b = b.aggregate.metrics();
  for (std::size_t i = 0; i < metrics_a.size() && i < metrics_b.size(); ++i) {
    MetricDelta delta;
    delta.metric = metrics_a[i].first;
    const SampleSet& set_a = *metrics_a[i].second;
    const SampleSet& set_b = *metrics_b[i].second;
    delta.n_a = set_a.size();
    delta.n_b = set_b.size();
    if (!set_a.empty()) {
      delta.median_a = set_a.median();
      delta.p95_a = set_a.p95();
    }
    if (!set_b.empty()) {
      delta.median_b = set_b.median();
      delta.p95_b = set_b.p95();
    }
    if (delta.median_a && delta.median_b && *delta.median_a > 0) {
      delta.median_ratio = *delta.median_b / *delta.median_a;
    }
    result.metrics.push_back(std::move(delta));
  }
  return result;
}

std::string ComparisonResult::render_text(const std::string& label_a,
                                          const std::string& label_b) const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-14s | %12s %12s | %12s %12s | %8s\n",
                "metric", (label_a + " median").c_str(),
                (label_a + " p95").c_str(), (label_b + " median").c_str(),
                (label_b + " p95").c_str(), "B/A med");
  out += buf;
  out += std::string(84, '-') + "\n";
  const auto cell = [](const std::optional<double>& v) -> std::string {
    if (!v) return "-";
    char c[32];
    std::snprintf(c, sizeof(c), "%.3fs", *v);
    return c;
  };
  for (const MetricDelta& delta : metrics) {
    std::string ratio = "-";
    if (delta.median_ratio) {
      char c[32];
      std::snprintf(c, sizeof(c), "%.2fx", *delta.median_ratio);
      ratio = c;
    }
    std::snprintf(buf, sizeof(buf), "%-14s | %12s %12s | %12s %12s | %8s\n",
                  delta.metric.c_str(), cell(delta.median_a).c_str(),
                  cell(delta.p95_a).c_str(), cell(delta.median_b).c_str(),
                  cell(delta.p95_b).c_str(), ratio.c_str());
    out += buf;
  }
  return out;
}

std::vector<const MetricDelta*> ComparisonResult::significant(
    double threshold) const {
  std::vector<const MetricDelta*> out;
  for (const MetricDelta& delta : metrics) {
    if (delta.median_ratio &&
        std::abs(*delta.median_ratio - 1.0) > threshold) {
      out.push_back(&delta);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricDelta* x, const MetricDelta* y) {
              return std::abs(*x->median_ratio - 1.0) >
                     std::abs(*y->median_ratio - 1.0);
            });
  return out;
}

const std::vector<double>& component_bucket_edges_ms() {
  static const std::vector<double> edges =
      obs::Histogram::default_latency_edges_ms();
  return edges;
}

std::vector<ComponentHistogram> component_histograms(
    const AnalysisResult& analysis) {
  const std::vector<double>& edges = component_bucket_edges_ms();
  std::vector<ComponentHistogram> out;
  for (const auto& [metric, set] : analysis.aggregate.metrics()) {
    ComponentHistogram hist;
    hist.metric = metric;
    hist.buckets.assign(edges.size() + 1, 0);
    for (const double seconds : set->samples()) {
      // Same bucketing as obs::Histogram::observe: first edge >= value
      // (upper edges inclusive), everything past the last edge lands in
      // the overflow bucket.
      const double ms = seconds * 1000.0;
      const auto it = std::lower_bound(edges.begin(), edges.end(), ms);
      ++hist.buckets[static_cast<std::size_t>(it - edges.begin())];
      hist.sum_ms += ms;
      ++hist.count;
    }
    out.push_back(std::move(hist));
  }
  return out;
}

double ks_distance(const std::vector<std::uint64_t>& buckets_a,
                   const std::vector<std::uint64_t>& buckets_b) {
  std::uint64_t total_a = 0;
  std::uint64_t total_b = 0;
  for (const std::uint64_t c : buckets_a) total_a += c;
  for (const std::uint64_t c : buckets_b) total_b += c;
  if (total_a == 0 || total_b == 0) return 0.0;
  const std::size_t n = std::max(buckets_a.size(), buckets_b.size());
  std::uint64_t cum_a = 0;
  std::uint64_t cum_b = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < buckets_a.size()) cum_a += buckets_a[i];
    if (i < buckets_b.size()) cum_b += buckets_b[i];
    const double gap =
        std::abs(static_cast<double>(cum_a) / static_cast<double>(total_a) -
                 static_cast<double>(cum_b) / static_cast<double>(total_b));
    worst = std::max(worst, gap);
  }
  return worst;
}

double ks_threshold(std::uint64_t n, std::uint64_t m, double floor) {
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(m);
  return std::max(floor, 1.36 * std::sqrt((nd + md) / (nd * md)));
}

DriftReport histogram_drift(const std::vector<ComponentHistogram>& a,
                            const std::vector<ComponentHistogram>& b) {
  DriftReport report;
  for (const ComponentHistogram& hist_a : a) {
    const auto match =
        std::find_if(b.begin(), b.end(), [&](const ComponentHistogram& h) {
          return h.metric == hist_a.metric;
        });
    if (match == b.end()) continue;
    ComponentDrift drift;
    drift.metric = hist_a.metric;
    drift.n_a = hist_a.count;
    drift.n_b = match->count;
    if (hist_a.count > 0) {
      drift.mean_a_ms = hist_a.sum_ms / static_cast<double>(hist_a.count);
    }
    if (match->count > 0) {
      drift.mean_b_ms = match->sum_ms / static_cast<double>(match->count);
    }
    drift.distance = ks_distance(hist_a.buckets, match->buckets);
    drift.threshold = ks_threshold(hist_a.count, match->count);
    drift.significant = drift.distance > drift.threshold;
    report.components.push_back(std::move(drift));
  }
  return report;
}

std::vector<const ComponentDrift*> DriftReport::regressions() const {
  std::vector<const ComponentDrift*> out;
  for (const ComponentDrift& drift : components) {
    if (drift.significant) out.push_back(&drift);
  }
  std::sort(out.begin(), out.end(),
            [](const ComponentDrift* x, const ComponentDrift* y) {
              return x->distance / x->threshold > y->distance / y->threshold;
            });
  return out;
}

std::string DriftReport::render_text(const std::string& label_a,
                                     const std::string& label_b) const {
  std::string out;
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                "%-14s | %8s %8s | %10s %10s | %6s %6s | %s\n", "component",
                ("n " + label_a).c_str(), ("n " + label_b).c_str(),
                (label_a + " mean").c_str(), (label_b + " mean").c_str(), "KS",
                "thresh", "verdict");
  out += buf;
  out += std::string(92, '-') + "\n";
  for (const ComponentDrift& drift : components) {
    std::snprintf(buf, sizeof(buf),
                  "%-14s | %8llu %8llu | %8.1fms %8.1fms | %6.3f %6.3f | %s\n",
                  drift.metric.c_str(),
                  static_cast<unsigned long long>(drift.n_a),
                  static_cast<unsigned long long>(drift.n_b), drift.mean_a_ms,
                  drift.mean_b_ms, drift.distance,
                  std::isinf(drift.threshold) ? 0.0 : drift.threshold,
                  drift.significant ? "DRIFT" : "ok");
    out += buf;
  }
  return out;
}

}  // namespace sdc::checker
