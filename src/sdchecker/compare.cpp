#include "sdchecker/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sdc::checker {

ComparisonResult compare(const AnalysisResult& a, const AnalysisResult& b) {
  ComparisonResult result;
  result.apps_a = a.timelines.size();
  result.apps_b = b.timelines.size();
  const auto metrics_a = a.aggregate.metrics();
  const auto metrics_b = b.aggregate.metrics();
  for (std::size_t i = 0; i < metrics_a.size() && i < metrics_b.size(); ++i) {
    MetricDelta delta;
    delta.metric = metrics_a[i].first;
    const SampleSet& set_a = *metrics_a[i].second;
    const SampleSet& set_b = *metrics_b[i].second;
    delta.n_a = set_a.size();
    delta.n_b = set_b.size();
    if (!set_a.empty()) {
      delta.median_a = set_a.median();
      delta.p95_a = set_a.p95();
    }
    if (!set_b.empty()) {
      delta.median_b = set_b.median();
      delta.p95_b = set_b.p95();
    }
    if (delta.median_a && delta.median_b && *delta.median_a > 0) {
      delta.median_ratio = *delta.median_b / *delta.median_a;
    }
    result.metrics.push_back(std::move(delta));
  }
  return result;
}

std::string ComparisonResult::render_text(const std::string& label_a,
                                          const std::string& label_b) const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-14s | %12s %12s | %12s %12s | %8s\n",
                "metric", (label_a + " median").c_str(),
                (label_a + " p95").c_str(), (label_b + " median").c_str(),
                (label_b + " p95").c_str(), "B/A med");
  out += buf;
  out += std::string(84, '-') + "\n";
  const auto cell = [](const std::optional<double>& v) -> std::string {
    if (!v) return "-";
    char c[32];
    std::snprintf(c, sizeof(c), "%.3fs", *v);
    return c;
  };
  for (const MetricDelta& delta : metrics) {
    std::string ratio = "-";
    if (delta.median_ratio) {
      char c[32];
      std::snprintf(c, sizeof(c), "%.2fx", *delta.median_ratio);
      ratio = c;
    }
    std::snprintf(buf, sizeof(buf), "%-14s | %12s %12s | %12s %12s | %8s\n",
                  delta.metric.c_str(), cell(delta.median_a).c_str(),
                  cell(delta.p95_a).c_str(), cell(delta.median_b).c_str(),
                  cell(delta.p95_b).c_str(), ratio.c_str());
    out += buf;
  }
  return out;
}

std::vector<const MetricDelta*> ComparisonResult::significant(
    double threshold) const {
  std::vector<const MetricDelta*> out;
  for (const MetricDelta& delta : metrics) {
    if (delta.median_ratio &&
        std::abs(*delta.median_ratio - 1.0) > threshold) {
      out.push_back(&delta);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricDelta* x, const MetricDelta* y) {
              return std::abs(*x->median_ratio - 1.0) >
                     std::abs(*y->median_ratio - 1.0);
            });
  return out;
}

}  // namespace sdc::checker
