#include "sdchecker/events.hpp"

#include <algorithm>
#include <numeric>

namespace sdc::checker {

std::string_view event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAppSubmitted:
      return "SUBMITTED";
    case EventKind::kAppAccepted:
      return "ACCEPTED";
    case EventKind::kAttemptRegistered:
      return "APT_REGISTERED";
    case EventKind::kContainerAllocated:
      return "ALLOCATED";
    case EventKind::kContainerAcquired:
      return "ACQUIRED";
    case EventKind::kNmLocalizing:
      return "LOCALIZING";
    case EventKind::kNmScheduled:
      return "SCHEDULED";
    case EventKind::kNmRunning:
      return "RUNNING";
    case EventKind::kDriverFirstLog:
      return "DRV_FIRST_LOG";
    case EventKind::kDriverRegister:
      return "DRV_REGISTER";
    case EventKind::kStartAllo:
      return "START_ALLO";
    case EventKind::kEndAllo:
      return "END_ALLO";
    case EventKind::kExecutorFirstLog:
      return "EXE_FIRST_LOG";
    case EventKind::kExecutorFirstTask:
      return "FIRST_TASK";
    case EventKind::kRmContainerRunning:
      return "RM_RUNNING";
    case EventKind::kRmContainerCompleted:
      return "RM_COMPLETED";
    case EventKind::kRmContainerReleased:
      return "RM_RELEASED";
    case EventKind::kNmExited:
      return "NM_EXITED";
    case EventKind::kNmFailed:
      return "NM_FAILED";
    case EventKind::kAppFinished:
      return "APP_FINISHED";
  }
  return "?";
}

std::int32_t table1_number(EventKind kind) {
  const auto raw = static_cast<std::int32_t>(kind);
  return raw >= 1 && raw <= 14 ? raw : 0;
}

namespace {

constexpr EventKind kAllEventKinds[] = {
    EventKind::kAppSubmitted,        EventKind::kAppAccepted,
    EventKind::kAttemptRegistered,   EventKind::kContainerAllocated,
    EventKind::kContainerAcquired,   EventKind::kNmLocalizing,
    EventKind::kNmScheduled,         EventKind::kNmRunning,
    EventKind::kDriverFirstLog,      EventKind::kDriverRegister,
    EventKind::kStartAllo,           EventKind::kEndAllo,
    EventKind::kExecutorFirstLog,    EventKind::kExecutorFirstTask,
    EventKind::kRmContainerRunning,  EventKind::kRmContainerCompleted,
    EventKind::kRmContainerReleased, EventKind::kNmExited,
    EventKind::kAppFinished,         EventKind::kNmFailed,
};

}  // namespace

std::span<const EventKind> all_event_kinds() { return kAllEventKinds; }

std::optional<EventKind> event_from_name(std::string_view name) {
  for (const EventKind kind : kAllEventKinds) {
    if (event_name(kind) == name) return kind;
  }
  return std::nullopt;
}

void EventBatch::push(EventKind kind, std::int64_t ts_ms,
                      std::uint32_t stream_id, std::size_t line_no,
                      const std::optional<ApplicationId>& app,
                      const std::optional<ContainerId>& container) {
  kinds_.push_back(static_cast<std::uint8_t>(kind));
  ts_.push_back(ts_ms);
  streams_.push_back(stream_id);
  lines_.push_back(line_no);
  std::uint8_t flags = 0;
  if (app) flags |= kHasApp;
  if (container) flags |= kHasContainer;
  flags_.push_back(flags);
  apps_.push_back(app.value_or(ApplicationId{}));
  containers_.push_back(container.value_or(ContainerId{}));
}

void EventBatch::append_row(const EventBatch& src, std::size_t i) {
  kinds_.push_back(src.kinds_[i]);
  ts_.push_back(src.ts_[i]);
  streams_.push_back(src.streams_[i]);
  lines_.push_back(src.lines_[i]);
  flags_.push_back(src.flags_[i]);
  apps_.push_back(src.apps_[i]);
  containers_.push_back(src.containers_[i]);
}

void EventBatch::reserve(std::size_t n) {
  kinds_.reserve(n);
  ts_.reserve(n);
  streams_.reserve(n);
  lines_.reserve(n);
  flags_.reserve(n);
  apps_.reserve(n);
  containers_.reserve(n);
}

void EventBatch::clear() {
  kinds_.clear();
  ts_.clear();
  streams_.clear();
  lines_.clear();
  flags_.clear();
  apps_.clear();
  containers_.clear();
}

EventBatch::View EventBatch::operator[](std::size_t i) const {
  View view;
  view.kind = static_cast<EventKind>(kinds_[i]);
  view.ts_ms = ts_[i];
  if ((flags_[i] & kHasApp) != 0) view.app = apps_[i];
  if ((flags_[i] & kHasContainer) != 0) view.container = containers_[i];
  view.stream = pool_->name(streams_[i]);
  view.line_no = lines_[i];
  return view;
}

bool EventBatch::row_less(const EventBatch& a, std::size_t i,
                          const EventBatch& b, std::size_t j) {
  if (a.ts_[i] != b.ts_[j]) return a.ts_[i] < b.ts_[j];
  if (a.streams_[i] != b.streams_[j] || a.pool_ != b.pool_) {
    const std::string_view an = a.pool_->name(a.streams_[i]);
    const std::string_view bn = b.pool_->name(b.streams_[j]);
    if (an != bn) return an < bn;
  }
  if (a.lines_[i] != b.lines_[j]) return a.lines_[i] < b.lines_[j];
  return a.kinds_[i] < b.kinds_[j];
}

void EventBatch::sort() {
  const std::size_t n = size();
  if (n < 2) return;
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t i, std::uint32_t j) {
              return row_less(*this, i, *this, j);
            });
  const auto gather = [&order, n](auto& column) {
    std::remove_reference_t<decltype(column)> out;
    out.reserve(n);
    for (const std::uint32_t i : order) out.push_back(column[i]);
    column = std::move(out);
  };
  gather(kinds_);
  gather(ts_);
  gather(streams_);
  gather(lines_);
  gather(flags_);
  gather(apps_);
  gather(containers_);
}

EventBatch merge_event_batches(std::vector<EventBatch> runs) {
  std::erase_if(runs, [](const EventBatch& run) { return run.empty(); });
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs.front());

  struct Cursor {
    const EventBatch* run;
    std::size_t pos;
  };
  // Min-heap on the cursor's current row.
  const auto heap_greater = [](const Cursor& a, const Cursor& b) {
    return EventBatch::row_less(*b.run, b.pos, *a.run, a.pos);
  };
  std::size_t total = 0;
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (const EventBatch& run : runs) {
    total += run.size();
    heap.push_back(Cursor{&run, 0});
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  EventBatch out(runs.front().pool());
  out.reserve(total);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    Cursor& top = heap.back();
    out.append_row(*top.run, top.pos);
    if (++top.pos < top.run->size()) {
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    } else {
      heap.pop_back();
    }
  }
  return out;
}

bool is_container_event(EventKind kind) {
  switch (kind) {
    case EventKind::kContainerAllocated:
    case EventKind::kContainerAcquired:
    case EventKind::kNmLocalizing:
    case EventKind::kNmScheduled:
    case EventKind::kNmRunning:
    case EventKind::kExecutorFirstLog:
    case EventKind::kExecutorFirstTask:
    case EventKind::kRmContainerRunning:
    case EventKind::kRmContainerCompleted:
    case EventKind::kRmContainerReleased:
    case EventKind::kNmExited:
    case EventKind::kNmFailed:
      return true;
    case EventKind::kAppSubmitted:
    case EventKind::kAppAccepted:
    case EventKind::kAttemptRegistered:
    case EventKind::kDriverFirstLog:
    case EventKind::kDriverRegister:
    case EventKind::kStartAllo:
    case EventKind::kEndAllo:
    case EventKind::kAppFinished:
      return false;
  }
  return false;
}

}  // namespace sdc::checker
